//! Umbrella crate for the EASIA reproduction workspace.
//!
//! This crate exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`. The actual library surface
//! lives in the `easia-*` crates; `easia-core` is the main entry point.

pub use easia_core as core;
