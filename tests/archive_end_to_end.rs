//! Cross-crate integration: the full EASIA lifecycle through the public
//! APIs of every layer at once.

use easia_core::{turbulence, Archive, WebApp};
use easia_datalink::DatalinkUrl;
use easia_web::auth::Role;
use easia_web::http::Request;
use std::collections::BTreeMap;

fn demo() -> Archive {
    let mut a = Archive::builder()
        .file_server("fs1.example", easia_core::paper_link_spec())
        .file_server("fs2.example", easia_core::lan_link_spec())
        .build();
    turbulence::install_schema(&mut a).unwrap();
    turbulence::seed_demo_data(&mut a, 2, 16).unwrap();
    a
}

#[test]
fn full_lifecycle_ingest_search_download_operate() {
    let mut a = demo();

    // Search across tables (QBE-shaped SQL with joins + aggregates).
    let rs =
        a.db.execute(
            "SELECT s.simulation_key, COUNT(*) FROM simulation s \
             JOIN result_file r ON r.simulation_key = s.simulation_key \
             GROUP BY s.simulation_key ORDER BY s.simulation_key",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][1], easia_db::Value::Int(3));

    // DATALINK SELECT → tokenized URL → authorised download.
    let rs =
        a.db.execute("SELECT download_result FROM result_file ORDER BY file_name LIMIT 1")
            .unwrap();
    let easia_db::Value::Datalink(url) = rs.rows[0][0].clone() else {
        panic!("expected DATALINK");
    };
    let (parsed, token) = DatalinkUrl::parse_tokenized(&url).unwrap();
    assert!(token.is_some(), "READ PERMISSION DB column yields a token");
    let (bytes, secs) = a.download(&url, Role::Researcher).unwrap();
    assert!(!bytes.is_empty());
    assert!(secs > 0.0);
    // The downloaded bytes are a valid EDF timestep.
    let edf = easia_sci::edf::EdfReader::open(&bytes).unwrap();
    assert_eq!(edf.datasets.len(), 4);

    // Operation next to the data instead of downloading.
    let stored = parsed.to_linked();
    let mut params = BTreeMap::new();
    params.insert("slice".to_string(), "x0".to_string());
    params.insert("type".to_string(), "p".to_string());
    let out = a
        .run_operation(
            "RESULT_FILE",
            "GetImage",
            &stored,
            &params,
            Role::Guest,
            "it",
        )
        .unwrap();
    assert!(out.shipped_bytes < bytes.len() as f64 / 10.0);
    assert!(easia_sci::render::ppm_header(&out.outputs[0].1).is_some());
}

#[test]
fn wal_recovery_of_metadata_while_files_stay_external() {
    // The database journals metadata; the big files never enter it.
    let dir = std::env::temp_dir().join(format!("easia-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut db = easia_db::Database::open(&dir).unwrap();
        db.execute(
            "CREATE TABLE rf (f VARCHAR(50) PRIMARY KEY,
             d DATALINK LINKTYPE URL NO FILE LINK CONTROL)",
        )
        .unwrap();
        db.execute("INSERT INTO rf VALUES ('a', 'http://fs1/data/a.edf')")
            .unwrap();
    }
    {
        let mut db = easia_db::Database::open(&dir).unwrap();
        let rs = db.execute("SELECT d FROM rf").unwrap();
        assert_eq!(
            rs.rows[0][0],
            easia_db::Value::Datalink("http://fs1/data/a.edf".into())
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn xuis_round_trip_through_xml_preserves_everything() {
    let a = demo();
    let xml = easia_xuis::to_xml(&a.xuis);
    let back = easia_xuis::from_xml(&xml).unwrap();
    assert_eq!(back, a.xuis);
    let dom = easia_xuis::xml::to_element(&a.xuis);
    assert!(easia_xuis::dtd::validate(&dom).is_empty());
    // The document carries the paper's markup: operations + upload.
    assert!(xml.contains("<operation name=\"GetImage\""));
    assert!(xml.contains("<upload type=\"EPC\""));
    assert!(xml.contains("substcolumn=\"AUTHOR.NAME\""));
}

#[test]
fn guest_and_researcher_journeys_through_http() {
    let mut app = WebApp::new(demo());
    // Guest journey.
    let r = app.handle(Request::post(
        "/login",
        &[("username", "guest"), ("password", "guest")],
    ));
    let guest = r.set_session.unwrap();
    let r = app
        .handle(Request::post("/query/RESULT_FILE", &[("all", "All data")]).with_session(&guest));
    let body = r.body_text();
    assert!(body.contains("download restricted"));
    assert!(body.contains("GetImage"), "guest ops offered");

    // Researcher journey: add account via admin, then download links.
    let r = app.handle(Request::post(
        "/login",
        &[("username", "admin"), ("password", "hpcc-admin")],
    ));
    let admin = r.set_session.unwrap();
    app.handle(
        Request::post(
            "/users",
            &[
                ("username", "jasmin"),
                ("password", "pw"),
                ("role", "Researcher"),
            ],
        )
        .with_session(&admin),
    );
    let r = app.handle(Request::post(
        "/login",
        &[("username", "jasmin"), ("password", "pw")],
    ));
    let res = r.set_session.unwrap();
    let r =
        app.handle(Request::post("/query/RESULT_FILE", &[("all", "All data")]).with_session(&res));
    assert!(r.body_text().contains("href=\"http://fs"), "download links");
}

#[test]
fn operation_code_archived_as_datalink_and_fetched_for_execution() {
    // The paper's CODE_FILE flow: archive an EPC bundle as a DATALINK,
    // declare an operation whose location is a database.result lookup,
    // and run it.
    let mut a = demo();
    let bundle = easia_pack::format::pack_tar_ez(&[(
        "main.epc".to_string(),
        easia_ops::asm::EXAMPLE_COUNT.as_bytes().to_vec(),
    )])
    .unwrap();
    let url = a
        .archive_file_local(
            "fs2.example",
            "/codes/count.tar.ez",
            easia_fs::FileContent::Bytes(bundle),
        )
        .unwrap();
    a.db.execute_with_params(
        "INSERT INTO code_file VALUES ('count.tar.ez', 'EPC', 'byte counter', ?)",
        &[easia_db::Value::Str(url)],
    )
    .unwrap();
    let mut doc = a.xuis.clone();
    easia_xuis::customize::Customizer::new(&mut doc)
        .add_operation(
            "RESULT_FILE",
            "DOWNLOAD_RESULT",
            easia_xuis::Operation {
                name: "CountBytes".into(),
                op_type: "EPC".into(),
                filename: "main.epc".into(),
                format: "tar.ez".into(),
                guest_access: true,
                conditions: vec![],
                location: easia_xuis::Location::DatabaseResult {
                    colid: "CODE_FILE.DOWNLOAD_CODE_FILE".into(),
                    conditions: vec![easia_xuis::Condition {
                        colid: "CODE_FILE.CODE_NAME".into(),
                        eq: "count.tar.ez".into(),
                    }],
                },
                description: None,
                parameters: vec![],
            },
        )
        .unwrap();
    a.set_xuis(doc);
    let rs =
        a.db.execute("SELECT DLURLCOMPLETE(download_result) FROM result_file LIMIT 1")
            .unwrap();
    let dataset = rs.rows[0][0].to_string();
    let out = a
        .run_operation(
            "RESULT_FILE",
            "CountBytes",
            &dataset,
            &BTreeMap::new(),
            Role::Guest,
            "it",
        )
        .unwrap();
    let size = a.file_size_of(&dataset).unwrap();
    assert_eq!(out.stdout.trim(), size.to_string());
    assert!(out.instructions > 0, "ran in the sandbox");
}

#[test]
fn token_lifetime_follows_simulated_time() {
    let mut a = Archive::builder()
        .file_server("fs1.example", easia_core::paper_link_spec())
        .token_ttl(100)
        .build();
    turbulence::install_schema(&mut a).unwrap();
    turbulence::seed_demo_data(&mut a, 1, 8).unwrap();
    let rs =
        a.db.execute("SELECT download_result FROM result_file LIMIT 1")
            .unwrap();
    let url = rs.rows[0][0].to_string();
    let t = a.net.now() + 200.0;
    a.advance_to(t);
    assert!(a.download(&url, Role::Researcher).is_err(), "token expired");
    // A fresh SELECT issues a fresh token.
    let rs =
        a.db.execute("SELECT download_result FROM result_file LIMIT 1")
            .unwrap();
    let fresh = rs.rows[0][0].to_string();
    assert!(a.download(&fresh, Role::Researcher).is_ok());
}

#[test]
fn unlink_restores_files_and_invalidates_cache_key_space() {
    let mut a = demo();
    let rs =
        a.db.execute(
            "SELECT DLURLCOMPLETE(download_result), DLURLPATH(download_result),
                    DLURLSERVER(download_result) FROM result_file LIMIT 1",
        )
        .unwrap();
    let stored = rs.rows[0][0].to_string();
    let path = rs.rows[0][1].to_string();
    let host = rs.rows[0][2].to_string();
    // Run + cache an operation, then delete the row.
    let out = a
        .run_operation(
            "RESULT_FILE",
            "FieldStats",
            &stored,
            &BTreeMap::new(),
            Role::Guest,
            "it",
        )
        .unwrap();
    assert!(!out.from_cache);
    a.db.execute_with_params(
        "DELETE FROM result_file WHERE DLURLCOMPLETE(download_result) = ?",
        &[easia_db::Value::Str(stored.clone())],
    )
    .unwrap();
    if let Some(cache) = &mut a.cache {
        assert!(cache.invalidate_dataset(&stored) >= 1);
    }
    // ON UNLINK RESTORE: the file still exists, now unlinked.
    let server = a.server(&host).unwrap().1.clone();
    assert!(server.borrow().exists(&path));
    assert!(server.borrow().link_state(&path).is_none());
}
