//! Oracle-differential aggregate suite: every federated aggregate —
//! partial-pushdown or ship-rows fallback, healthy or faulted — must
//! return exactly what a single database holding every partition's
//! rows would return. The oracle is that single database; answers are
//! compared bit-for-bit (`Vec<Value>` equality), not approximately.

use easia_core::Archive;
use easia_db::{Database, Value};
use easia_med::{BreakerState, Federation, PartialPolicy, Partition, SiteSource};
use easia_net::{FaultSchedule, SimNet};
use proptest::prelude::*;

/// The shared catalog table: an INTEGER and a DOUBLE column that both
/// carry NULLs, plus a DATALINK column with NULL links (so COUNT(col)
/// vs COUNT(*) differ on every site).
const DDL: &str = "CREATE TABLE SIMULATION (\
     SIMULATION_KEY VARCHAR(40) PRIMARY KEY, \
     SITE VARCHAR(20), \
     TOPIC VARCHAR(20), \
     GRID_SIZE INTEGER, \
     VISCOSITY DOUBLE, \
     RESULT_FILE DATALINK LINKTYPE URL NO FILE LINK CONTROL)";

/// `Sheared` exists only at the hub, so remote sites ship no partial
/// state for that group and the merge must cope with absent groups.
const TOPICS: [&str; 4] = ["Decaying", "Forced", "Rotating", "Sheared"];

/// Deterministic row `i` of `site` (position `site_no` in the site
/// list). GRID_SIZE is NULL every 5th row, VISCOSITY every 7th,
/// RESULT_FILE every 3rd; VISCOSITY is a dyadic rational (k/64) so
/// SUM/AVG are exact in f64 regardless of addition order.
fn sim_row(site: &str, site_no: usize, i: usize) -> Vec<Value> {
    let topic = if site_no == 0 && i.is_multiple_of(8) {
        "Sheared"
    } else {
        TOPICS[(i + site_no) % 3]
    };
    let grid = if i % 5 == 4 {
        Value::Null
    } else {
        Value::Int(64 + ((i * 37 + site_no * 11) % 100) as i64)
    };
    let visc = if i % 7 == 6 {
        Value::Null
    } else {
        Value::Double(((i * 53 + site_no * 29) % 64) as f64 / 64.0)
    };
    let link = if i % 3 == 2 {
        Value::Null
    } else {
        Value::Datalink(format!("http://fs1.example/{site}/run{i:04}.dat"))
    };
    vec![
        Value::Str(format!("{site}-{i:04}")),
        Value::Str(site.to_string()),
        Value::Str(topic.to_string()),
        grid,
        visc,
        link,
    ]
}

/// A single database holding the listed partitions' rows, inserted
/// site-grouped (hub partition first) to match the gather order.
fn oracle_db(parts: &[(&str, usize)], rows_per_site: usize) -> Database {
    let mut db = Database::new_in_memory();
    db.execute(DDL).unwrap();
    for (site, site_no) in parts {
        for i in 0..rows_per_site {
            db.insert_row("SIMULATION", sim_row(site, *site_no, i))
                .unwrap();
        }
    }
    db
}

/// A hub (`soton`) plus the given foreign sites, each holding
/// `rows_per_site` rows of SIMULATION partitioned on SITE — and the
/// matching single-database oracle.
fn agg_archive(foreign: &[&str], rows_per_site: usize) -> (Archive, Database) {
    let mut b = Archive::builder();
    for site in foreign {
        b = b.federated_site(site, easia_core::paper_link_spec());
    }
    let mut a = b.build();
    a.db.execute(DDL).unwrap();
    for i in 0..rows_per_site {
        a.db.insert_row("SIMULATION", sim_row("soton", 0, i))
            .unwrap();
    }
    let mut partitions = vec![Partition::new(None, &["soton"])];
    let mut parts = vec![("soton", 0usize)];
    for (idx, site) in foreign.iter().enumerate() {
        let s = a.federation.site(site).unwrap();
        let mut db = s.db.borrow_mut();
        db.execute(DDL).unwrap();
        for i in 0..rows_per_site {
            db.insert_row("SIMULATION", sim_row(site, idx + 1, i))
                .unwrap();
        }
        drop(db);
        partitions.push(Partition::new(Some(site), &[site]));
        parts.push((site, idx + 1));
    }
    a.federation
        .catalog
        .import_foreign_table(&a.db, "SIMULATION", Some("SITE"), partitions)
        .unwrap();
    a.federation.analyze(&mut a.db).unwrap();
    (a, oracle_db(&parts, rows_per_site))
}

/// Run `sql` both ways and require bit-identical columns and rows,
/// plus the expected pushdown mode in the EXPLAIN agg section.
/// Returns the explain report for further inspection.
fn assert_matches_oracle(
    a: &mut Archive,
    oracle: &mut Database,
    sql: &str,
    partial: bool,
) -> easia_med::FedExplain {
    let out = a.federated_query(sql, &[]).unwrap();
    let want = oracle.execute(sql).unwrap();
    assert_eq!(out.rs.columns, want.columns, "columns for {sql}");
    assert_eq!(out.rs.rows, want.rows, "rows for {sql}");
    let agg = out
        .explain
        .agg
        .as_ref()
        .unwrap_or_else(|| panic!("no agg section for {sql}"));
    assert_eq!(agg.partial, partial, "pushdown mode for {sql}");
    if partial {
        assert_eq!(agg.fallback, None, "unexpected fallback for {sql}");
    }
    out.explain
}

/// Every aggregate function crossed with every statement shape the
/// planner decomposes: global and grouped, NULL-bearing columns,
/// HAVING cuts (including aggregates absent from the select list),
/// ORDER BY an aggregate with a LIMIT, empty groups, all-NULL inputs,
/// and the hub-only `Sheared` group no remote site has.
const MATRIX: [&str; 14] = [
    "SELECT COUNT(*) FROM SIMULATION",
    "SELECT COUNT(GRID_SIZE), COUNT(VISCOSITY), COUNT(RESULT_FILE) FROM SIMULATION",
    "SELECT SUM(GRID_SIZE), MIN(GRID_SIZE), MAX(GRID_SIZE), AVG(GRID_SIZE) FROM SIMULATION",
    "SELECT SUM(VISCOSITY), MIN(VISCOSITY), MAX(VISCOSITY), AVG(VISCOSITY) FROM SIMULATION",
    "SELECT TOPIC, COUNT(*), COUNT(GRID_SIZE), SUM(GRID_SIZE), MIN(GRID_SIZE), \
     MAX(GRID_SIZE), AVG(GRID_SIZE) FROM SIMULATION GROUP BY TOPIC ORDER BY TOPIC",
    "SELECT TOPIC, SUM(VISCOSITY), AVG(VISCOSITY), MIN(VISCOSITY), MAX(VISCOSITY) \
     FROM SIMULATION GROUP BY TOPIC ORDER BY TOPIC",
    "SELECT SITE, COUNT(*), SUM(GRID_SIZE) FROM SIMULATION \
     WHERE GRID_SIZE >= 80 GROUP BY SITE ORDER BY SITE",
    "SELECT TOPIC, COUNT(*) FROM SIMULATION GROUP BY TOPIC \
     HAVING COUNT(*) > 5 ORDER BY TOPIC",
    "SELECT TOPIC, MAX(GRID_SIZE) FROM SIMULATION GROUP BY TOPIC \
     HAVING AVG(GRID_SIZE) > 100 ORDER BY TOPIC",
    "SELECT TOPIC, SUM(GRID_SIZE) FROM SIMULATION GROUP BY TOPIC \
     ORDER BY SUM(GRID_SIZE) DESC, TOPIC LIMIT 2",
    "SELECT TOPIC, COUNT(*) FROM SIMULATION WHERE GRID_SIZE > 100000 \
     GROUP BY TOPIC ORDER BY TOPIC",
    "SELECT COUNT(*), COUNT(GRID_SIZE), SUM(GRID_SIZE), MIN(GRID_SIZE), AVG(VISCOSITY) \
     FROM SIMULATION WHERE GRID_SIZE > 100000",
    "SELECT COUNT(*), COUNT(GRID_SIZE), SUM(GRID_SIZE), AVG(GRID_SIZE) \
     FROM SIMULATION WHERE GRID_SIZE IS NULL",
    "SELECT SITE, COUNT(RESULT_FILE), COUNT(*) FROM SIMULATION GROUP BY SITE ORDER BY SITE",
];

#[test]
fn every_aggregate_shape_matches_the_oracle_on_three_sites() {
    let (mut a, mut oracle) = agg_archive(&["cam", "edin"], 30);
    for sql in MATRIX {
        assert_matches_oracle(&mut a, &mut oracle, sql, true);
    }
    // Every statement went through the pushdown, and both remotes
    // shipped partial states — visible on /metrics.
    assert_eq!(
        a.obs.metrics.value(
            "easia_med_partial_agg_queries_total",
            &[("table", "SIMULATION")]
        ),
        Some(MATRIX.len() as f64)
    );
    for site in ["cam", "edin"] {
        let shipped = a
            .obs
            .metrics
            .value(
                "easia_med_partial_agg_groups_shipped_total",
                &[("site", site)],
            )
            .unwrap();
        assert!(shipped > 0.0, "{site} shipped partial states");
    }
}

#[test]
fn every_aggregate_shape_matches_the_oracle_on_one_remote_site() {
    let (mut a, mut oracle) = agg_archive(&["cam"], 30);
    for sql in MATRIX {
        assert_matches_oracle(&mut a, &mut oracle, sql, true);
    }
}

#[test]
fn grouped_aggregate_without_order_by_matches_as_a_multiset() {
    let (mut a, mut oracle) = agg_archive(&["cam", "edin"], 24);
    let sql = "SELECT TOPIC, COUNT(*), SUM(GRID_SIZE) FROM SIMULATION GROUP BY TOPIC";
    let out = a.federated_query(sql, &[]).unwrap();
    let want = oracle.execute(sql).unwrap();
    assert!(out.explain.agg.as_ref().unwrap().partial);
    assert_eq!(canon(&out.rs.rows), canon(&want.rows));
}

#[test]
fn pruned_aggregate_only_ships_states_from_the_named_partition() {
    let (mut a, mut oracle) = agg_archive(&["cam", "edin"], 20);
    let sql = "SELECT COUNT(*), SUM(GRID_SIZE) FROM SIMULATION WHERE SITE = 'edin'";
    let explain = assert_matches_oracle(&mut a, &mut oracle, sql, true);
    let cam = explain.sites.iter().find(|s| s.site == "cam").unwrap();
    assert!(cam.pruned, "cam's partition is pruned by the SITE filter");
    assert_eq!(cam.rows_shipped, 0);
    let edin = explain.sites.iter().find(|s| s.site == "edin").unwrap();
    assert_eq!(edin.rows_shipped, 1, "one global partial state row");
}

#[test]
fn aggregate_with_parameter_matches_the_oracle() {
    let (mut a, mut oracle) = agg_archive(&["cam", "edin"], 25);
    let sql = "SELECT TOPIC, COUNT(*), AVG(GRID_SIZE) FROM SIMULATION \
               WHERE GRID_SIZE >= ? GROUP BY TOPIC ORDER BY TOPIC";
    let params = vec![Value::Int(90)];
    let out = a.federated_query(sql, &params).unwrap();
    let want = oracle.execute_with_params(sql, &params).unwrap();
    assert_eq!(out.rs.rows, want.rows);
    assert!(out.explain.agg.unwrap().partial);
}

/// The planner's documented bail-outs: each pinned case must ship raw
/// rows (annotated with its reason) and still match the oracle.
#[test]
fn fallback_cases_ship_rows_and_still_match_the_oracle() {
    let (mut a, mut oracle) = agg_archive(&["cam", "edin"], 24);

    // SELECT DISTINCT with aggregates.
    let sql = "SELECT DISTINCT TOPIC, COUNT(*) FROM SIMULATION GROUP BY TOPIC ORDER BY TOPIC";
    let ex = assert_matches_oracle(&mut a, &mut oracle, sql, false);
    assert_eq!(ex.agg.unwrap().fallback.as_deref(), Some("distinct"));

    // An expression (not a bare column) inside the aggregate call.
    let sql = "SELECT SUM(GRID_SIZE + 0) FROM SIMULATION";
    let ex = assert_matches_oracle(&mut a, &mut oracle, sql, false);
    assert_eq!(ex.agg.unwrap().fallback.as_deref(), Some("expr-arg"));

    // A conjunct only the hub can evaluate (scalar functions are not
    // part of the wire grammar): aggregating site-side would aggregate
    // the wrong row set.
    let sql = "SELECT COUNT(*), MAX(GRID_SIZE) FROM SIMULATION WHERE UPPER(TOPIC) = 'FORCED'";
    let ex = assert_matches_oracle(&mut a, &mut oracle, sql, false);
    assert_eq!(ex.agg.unwrap().fallback.as_deref(), Some("hub-conjunct"));

    // A computed GROUP BY key (group order is first-seen, so compare
    // as a multiset).
    let sql = "SELECT COUNT(*) FROM SIMULATION GROUP BY LENGTH(TOPIC)";
    let out = a.federated_query(sql, &[]).unwrap();
    let want = oracle.execute(sql).unwrap();
    assert_eq!(canon(&out.rs.rows), canon(&want.rows));
    assert_eq!(
        out.explain.agg.unwrap().fallback.as_deref(),
        Some("group-expr")
    );

    // A select-list column outside both GROUP BY and any aggregate
    // reads per-row state partial states no longer carry. (Its value
    // is first-row-of-group, which depends on scan order — assert the
    // reason and shape, not bitwise equality.)
    let sql = "SELECT TOPIC, SITE, COUNT(*) FROM SIMULATION GROUP BY TOPIC ORDER BY TOPIC";
    let out = a.federated_query(sql, &[]).unwrap();
    let want = oracle.execute(sql).unwrap();
    assert_eq!(out.rs.rows.len(), want.rows.len());
    assert_eq!(
        out.explain.agg.unwrap().fallback.as_deref(),
        Some("non-group-column")
    );

    // Every bail-out is visible on /metrics under its reason label.
    for reason in [
        "distinct",
        "expr-arg",
        "hub-conjunct",
        "group-expr",
        "non-group-column",
    ] {
        assert_eq!(
            a.obs.metrics.value(
                "easia_med_partial_agg_fallbacks_total",
                &[("reason", reason)]
            ),
            Some(1.0),
            "fallback counter for {reason}"
        );
    }
}

#[test]
fn disabling_pushdown_falls_back_with_identical_answers() {
    let (mut a, mut oracle) = agg_archive(&["cam", "edin"], 24);
    a.federation.partial_agg = false;
    for sql in MATRIX {
        let ex = assert_matches_oracle(&mut a, &mut oracle, sql, false);
        assert_eq!(ex.agg.unwrap().fallback.as_deref(), Some("disabled"));
    }
    // No statement took the pushdown path, so the per-table pushdown
    // counter was never touched.
    let pushed = a
        .obs
        .metrics
        .value(
            "easia_med_partial_agg_queries_total",
            &[("table", "SIMULATION")],
        )
        .unwrap_or(0.0);
    assert_eq!(pushed, 0.0, "no statement took the pushdown path");
}

#[test]
fn wildcard_with_group_by_errors_on_both_paths() {
    let (mut a, mut oracle) = agg_archive(&["cam"], 6);
    let sql = "SELECT * FROM SIMULATION GROUP BY TOPIC";
    assert!(oracle.execute(sql).is_err());
    assert!(a.federated_query(sql, &[]).is_err());
}

/// COUNT(link_col) vs COUNT(*): DATALINK values survive every path —
/// pushed partial states, and the ship-rows fallback that stages
/// remote DATALINKs as CLOBs at the hub — with NULL links still NULL,
/// so the counts differ by exactly the NULL links.
#[test]
fn count_of_datalink_column_is_exact_on_partial_and_staged_paths() {
    let rows = 30; // links NULL every 3rd row: 20 linked per site
    let (mut a, mut oracle) = agg_archive(&["cam", "edin"], rows);
    let sql = "SELECT SITE, COUNT(RESULT_FILE), COUNT(*) FROM SIMULATION \
               GROUP BY SITE ORDER BY SITE";
    assert_matches_oracle(&mut a, &mut oracle, sql, true);
    let out = a.federated_query(sql, &[]).unwrap();
    for row in &out.rs.rows {
        assert_eq!(row[1], Value::Int(20), "non-NULL links for {:?}", row[0]);
        assert_eq!(row[2], Value::Int(rows as i64));
    }
    // Same census through the staged-CLOB fallback path.
    a.federation.partial_agg = false;
    assert_matches_oracle(&mut a, &mut oracle, sql, false);
}

/// Replica-cache paths: a cache-filling scan ships raw rows (and the
/// hub re-derives the partial states from them), a fresh hit ships
/// nothing, and a stale Degraded serve after an outage still answers —
/// all three bit-identical to the oracle.
#[test]
fn aggregates_over_replica_cache_paths_match_the_oracle() {
    let (mut a, mut oracle) = agg_archive(&["cam", "edin"], 12);
    a.federation.enable_replica_cache(600.0, 10_000);
    let sql = "SELECT SITE, COUNT(*), COUNT(RESULT_FILE), SUM(GRID_SIZE) FROM SIMULATION \
               GROUP BY SITE ORDER BY SITE";

    let out = a.federated_query(sql, &[]).unwrap();
    assert_eq!(out.rs.rows, oracle.execute(sql).unwrap().rows);
    assert!(out.explain.agg.as_ref().unwrap().partial);
    assert!(out
        .explain
        .sites
        .iter()
        .any(|s| s.source == SiteSource::CacheFill));

    let out = a.federated_query(sql, &[]).unwrap();
    assert_eq!(out.rs.rows, oracle.execute(sql).unwrap().rows);
    let cam = out.explain.sites.iter().find(|s| s.site == "cam").unwrap();
    assert_eq!(cam.source, SiteSource::CacheFresh);
    assert_eq!(cam.rows_shipped, 0, "fresh hits ship nothing");

    // Kill cam: under DEGRADED the stale replica keeps the census
    // whole, partial states re-derived from the cached raw rows.
    a.federation.policy = PartialPolicy::Degraded;
    a.federation.site("cam").unwrap().crash();
    let out = a.federated_query(sql, &[]).unwrap();
    assert_eq!(out.rs.rows, oracle.execute(sql).unwrap().rows);
    assert!(out.explain.stale.iter().any(|s| s.site == "cam"));
}

// --- fault paths ---

/// Many-group statement whose per-site partial stream spans several
/// wire batches, so a crash can land mid-stream.
const STREAM_SQL: &str = "SELECT SIMULATION_KEY, COUNT(*), SUM(GRID_SIZE) FROM SIMULATION \
     GROUP BY SIMULATION_KEY ORDER BY SIMULATION_KEY";

#[test]
fn mid_stream_crash_during_partial_gather_resumes_and_matches_the_oracle() {
    let rows_per_site = 150;

    // Baseline: the undisturbed run's rows and duration.
    let (mut probe, mut oracle) = agg_archive(&["cam", "edin"], rows_per_site);
    probe.federation.batch_rows = 32;
    let baseline = probe.federated_query(STREAM_SQL, &[]).unwrap();
    let elapsed = probe.net.now();
    assert_eq!(baseline.rs.rows, oracle.execute(STREAM_SQL).unwrap().rows);
    assert!(elapsed > 0.05, "partial stream is long enough to interrupt");

    // Same archive, but cam's host dies halfway through the partial
    // stream and recovers 90 s later — inside the query deadline. The
    // retry ladder resumes the grouped scan from its batch cursor
    // (site streams are ORDER BY group key, so the cursor is stable)
    // and the merged answer is still exact.
    let (mut a, _) = agg_archive(&["cam", "edin"], rows_per_site);
    a.federation.batch_rows = 32;
    let cam_host = a.federation.site("cam").unwrap().host;
    let down_at = elapsed * 0.5;
    let mut faults = FaultSchedule::new();
    faults.host_crash(cam_host, down_at, down_at + 90.0);
    a.net.set_fault_schedule(faults);

    let out = a.federated_query(STREAM_SQL, &[]).unwrap();
    assert_eq!(out.rs.rows, baseline.rs.rows);
    assert!(out.explain.skipped.is_empty());
    assert!(out.explain.stale.is_empty());
    assert!(out.explain.agg.as_ref().unwrap().partial);
    let cam = out.explain.sites.iter().find(|s| s.site == "cam").unwrap();
    assert!(cam.retries >= 1, "cam was retried: {}", cam.retries);
    assert!(
        a.net.now() >= down_at + 90.0,
        "the retry waited out the crash"
    );
}

#[test]
fn partial_policy_merges_survivor_states_against_the_survivor_oracle() {
    let rows_per_site = 20;
    let (mut a, _) = agg_archive(&["cam", "edin"], rows_per_site);
    a.federation.policy = PartialPolicy::Partial;
    a.federation.site("cam").unwrap().crash();

    // The oracle for a PARTIAL answer is the single database holding
    // only the surviving partitions.
    let mut survivors = oracle_db(&[("soton", 0), ("edin", 2)], rows_per_site);
    let sql = "SELECT TOPIC, COUNT(*), SUM(GRID_SIZE), AVG(VISCOSITY) FROM SIMULATION \
               GROUP BY TOPIC ORDER BY TOPIC";
    let out = a.federated_query(sql, &[]).unwrap();
    assert_eq!(out.explain.skipped, vec!["cam".to_string()]);
    assert_eq!(out.rs.rows, survivors.execute(sql).unwrap().rows);
    assert!(out.explain.agg.unwrap().partial);
}

#[test]
fn mid_stream_crash_under_partial_policy_drops_the_dead_sites_states_whole() {
    let rows_per_site = 150;

    let (mut probe, _) = agg_archive(&["cam", "edin"], rows_per_site);
    probe.federation.batch_rows = 32;
    probe.federated_query(STREAM_SQL, &[]).unwrap();
    let elapsed = probe.net.now();

    // cam dies mid-stream and never recovers: whatever partial states
    // it shipped before dying must be discarded whole — a half-merged
    // group would silently undercount.
    let (mut a, _) = agg_archive(&["cam", "edin"], rows_per_site);
    a.federation.batch_rows = 32;
    a.federation.policy = PartialPolicy::Partial;
    let cam_host = a.federation.site("cam").unwrap().host;
    let mut faults = FaultSchedule::new();
    faults.host_crash(cam_host, elapsed * 0.5, elapsed * 0.5 + 7_200.0);
    a.net.set_fault_schedule(faults);

    let out = a.federated_query(STREAM_SQL, &[]).unwrap();
    assert_eq!(out.explain.skipped, vec!["cam".to_string()]);
    let mut survivors = oracle_db(&[("soton", 0), ("edin", 2)], rows_per_site);
    assert_eq!(out.rs.rows, survivors.execute(STREAM_SQL).unwrap().rows);
}

#[test]
fn deadline_expiry_cancels_partial_agg_streams_without_breaker_penalty() {
    let rows_per_site = 150;

    let (mut probe, _) = agg_archive(&["cam", "edin"], rows_per_site);
    probe.federation.batch_rows = 32;
    let t0 = probe.net.now();
    probe.federated_query(STREAM_SQL, &[]).unwrap();
    let full_stream = probe.net.now() - t0;

    // The deadline expires at 40% of the stream: both remote partial
    // streams are cancelled, the hub's own states still answer.
    let (mut a, _) = agg_archive(&["cam", "edin"], rows_per_site);
    a.federation.batch_rows = 32;
    a.federation.policy = PartialPolicy::Partial;
    a.federation.deadline_secs = full_stream * 0.4;
    let out = a.federated_query(STREAM_SQL, &[]).unwrap();
    assert_eq!(
        out.explain.skipped,
        vec!["cam".to_string(), "edin".to_string()]
    );
    let mut local = oracle_db(&[("soton", 0)], rows_per_site);
    assert_eq!(out.rs.rows, local.execute(STREAM_SQL).unwrap().rows);

    // Client-side cancellation is not the sites' fault: breakers stay
    // closed, and the cancellations are visible on /metrics.
    for site in ["cam", "edin"] {
        assert_eq!(
            a.federation.site(site).unwrap().breaker_state(),
            BreakerState::Closed,
            "{site} breaker must not trip on a client-side deadline"
        );
        assert_eq!(
            a.obs
                .metrics
                .value("easia_med_deadline_cancelled_total", &[("site", site)]),
            Some(1.0)
        );
    }
}

// --- property tests ---

/// Rows sorted into a canonical multiset representation.
fn canon(rows: &[Vec<Value>]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

const SITES: [&str; 3] = ["soton", "cam", "edin"];

const T_DDL: &str = "CREATE TABLE T (\
     K VARCHAR(10) PRIMARY KEY, \
     SITE VARCHAR(10), \
     N INTEGER, \
     X DOUBLE)";

/// Build a hub + two foreign sites holding `inserts`, and the
/// single-database oracle, inserting site-grouped (hub first) so the
/// oracle's accumulation order matches the gather order.
#[allow(clippy::type_complexity)]
fn prop_rig(
    inserts: &[(usize, String)],
) -> (SimNet, easia_net::HostId, Database, Federation, Database) {
    let mut net = SimNet::new();
    let hub = net.add_host("hub", 4);
    let mut hub_db = Database::new_in_memory();
    hub_db.execute(T_DDL).unwrap();
    let mut fed = Federation::default();
    for site in &SITES[1..] {
        let h = net.add_host(site, 4);
        net.connect(h, hub, easia_core::paper_link_spec());
        let mut db = Database::new_in_memory();
        db.execute(T_DDL).unwrap();
        fed.add_site(site, h, db);
    }
    let mut oracle = Database::new_in_memory();
    oracle.execute(T_DDL).unwrap();
    for (want, site) in SITES.iter().enumerate() {
        for (site_idx, insert) in inserts {
            if *site_idx != want {
                continue;
            }
            oracle.execute(insert).unwrap();
            if *site == "soton" {
                hub_db.execute(insert).unwrap();
            } else {
                fed.site(site)
                    .unwrap()
                    .db
                    .borrow_mut()
                    .execute(insert)
                    .unwrap();
            }
        }
    }
    fed.catalog
        .import_foreign_table(
            &hub_db,
            "T",
            Some("SITE"),
            vec![
                Partition::new(None, &["soton"]),
                Partition::new(Some("cam"), &["cam"]),
                Partition::new(Some("edin"), &["edin"]),
            ],
        )
        .unwrap();
    (net, hub, hub_db, fed, oracle)
}

proptest! {
    /// Whatever rows land on whatever partitions — NULLs included —
    /// every aggregate shape merges to exactly the oracle's answer.
    /// X is a dyadic rational (k/256) so SUM/AVG are exact in f64 and
    /// the comparison can be bitwise.
    #[test]
    fn random_partitions_aggregate_like_the_oracle(
        rows in proptest::collection::vec(
            (0usize..3, (any::<bool>(), -50i64..50), (any::<bool>(), 0u16..256)),
            0..30,
        ),
        threshold in -50i64..50,
    ) {
        let inserts: Vec<(usize, String)> = rows
            .iter()
            .enumerate()
            .map(|(idx, (site_idx, n, x))| {
                let nlit = if n.0 {
                    n.1.to_string()
                } else {
                    "NULL".to_string()
                };
                let xlit = if x.0 {
                    format!("{:.8}", x.1 as f64 / 256.0)
                } else {
                    "NULL".to_string()
                };
                let site = SITES[*site_idx];
                (
                    *site_idx,
                    format!("INSERT INTO T VALUES ('k{idx:04}', '{site}', {nlit}, {xlit})"),
                )
            })
            .collect();
        let (mut net, hub, mut hub_db, fed, mut oracle) = prop_rig(&inserts);

        let queries: [(&str, Vec<Value>); 5] = [
            ("SELECT COUNT(*), COUNT(N), COUNT(X) FROM T", vec![]),
            ("SELECT SUM(N), MIN(N), MAX(N), AVG(N) FROM T", vec![]),
            (
                "SELECT SITE, COUNT(*), SUM(N), AVG(X) FROM T GROUP BY SITE ORDER BY SITE",
                vec![],
            ),
            (
                "SELECT SITE, MIN(X), MAX(X) FROM T GROUP BY SITE \
                 HAVING COUNT(*) >= 2 ORDER BY SITE",
                vec![],
            ),
            ("SELECT COUNT(*), SUM(N) FROM T WHERE N >= ?", vec![Value::Int(threshold)]),
        ];
        for (sql, params) in &queries {
            let out = fed.query(&mut net, hub, &mut hub_db, None, sql, params).unwrap();
            let want = oracle.execute_with_params(sql, params).unwrap();
            prop_assert_eq!(&out.rs.columns, &want.columns);
            prop_assert_eq!(&out.rs.rows, &want.rows);
            prop_assert!(out.explain.agg.unwrap().partial);
        }
    }

    /// i64 boundary sums: every addend is `m * 2^12` with `m` up to
    /// 2^50 (so each value, every per-site subtotal, and the grand
    /// total are exactly representable in f64), all sharing one sign
    /// (so overflow is monotone: a per-site or merge-time subtotal
    /// overflows i64 exactly when the oracle's running sum does). The
    /// merge must promote Int → Double at exactly the oracle's
    /// boundary and land on the identical Value.
    #[test]
    fn merge_time_overflow_promotes_exactly_like_the_oracle(
        rows in proptest::collection::vec(
            (0usize..3, (1i64 << 48)..(1i64 << 50)),
            1..8,
        ),
        negative in any::<bool>(),
    ) {
        let sign = if negative { -1 } else { 1 };
        let inserts: Vec<(usize, String)> = rows
            .iter()
            .enumerate()
            .map(|(idx, (site_idx, m))| {
                let n = sign * (m << 12);
                let site = SITES[*site_idx];
                (
                    *site_idx,
                    format!("INSERT INTO T VALUES ('k{idx:04}', '{site}', {n}, NULL)"),
                )
            })
            .collect();
        let (mut net, hub, mut hub_db, fed, mut oracle) = prop_rig(&inserts);

        for sql in [
            "SELECT SUM(N), AVG(N), COUNT(*) FROM T",
            "SELECT SITE, SUM(N), AVG(N) FROM T GROUP BY SITE ORDER BY SITE",
        ] {
            let out = fed.query(&mut net, hub, &mut hub_db, None, sql, &[]).unwrap();
            let want = oracle.execute(sql).unwrap();
            prop_assert_eq!(&out.rs.rows, &want.rows);
            prop_assert!(out.explain.agg.unwrap().partial);
        }
    }
}

/// Deterministic pin of the promotion boundary: four addends of 2^62
/// across three partitions sum past i64::MAX, so the merged SUM must
/// come back as the exactly-representable Double 2^64 — bit-identical
/// to the oracle's own demotion.
#[test]
fn sum_overflowing_i64_promotes_to_the_exact_double() {
    let v = 1i64 << 62;
    let inserts: Vec<(usize, String)> = [(0usize, v), (1, v), (1, v), (2, v)]
        .iter()
        .enumerate()
        .map(|(idx, (site_idx, n))| {
            let site = SITES[*site_idx];
            (
                *site_idx,
                format!("INSERT INTO T VALUES ('k{idx:04}', '{site}', {n}, NULL)"),
            )
        })
        .collect();
    let (mut net, hub, mut hub_db, fed, mut oracle) = prop_rig(&inserts);
    let sql = "SELECT SUM(N), COUNT(*) FROM T";
    let out = fed
        .query(&mut net, hub, &mut hub_db, None, sql, &[])
        .unwrap();
    let want = oracle.execute(sql).unwrap();
    assert_eq!(out.rs.rows, want.rows);
    let expect = (1u128 << 64) as f64;
    assert_eq!(out.rs.rows[0], vec![Value::Double(expect), Value::Int(4)]);
}
