//! Every webapp browse-screen JOIN — the QBE result pages and the
//! FK/PK hyperlink browse pages, all of which now carry FK-substitute
//! LEFT JOIN legs — executed twice: through a federated archive whose
//! SIMULATION and RESULT_FILE tables are partitioned over three sites,
//! and against a single-database oracle holding every partition's
//! rows. The rendered result tables must be byte-identical: same rows,
//! same ordering, same substituted display values.

use easia_core::{Archive, WebApp};
use easia_med::Partition;
use easia_web::http::Request;
use easia_web::qbe::{build_join_query, fk_substitutes};
use std::collections::BTreeMap;

const AUTHOR_DDL: &str = "CREATE TABLE AUTHOR (\
     AUTHOR_KEY VARCHAR(30) PRIMARY KEY, \
     NAME VARCHAR(100), \
     INSTITUTION VARCHAR(100))";

// No REFERENCES clauses: a partitioned federation cannot enforce
// referential integrity per-site (a cam file may reference an edin
// simulation), so the FK links live in the XUIS alone — the paper's
// "hypertext links … even if there are no referential integrity
// constraints defined for the database".
const SIM_DDL: &str = "CREATE TABLE SIMULATION (\
     SIMULATION_KEY VARCHAR(30) PRIMARY KEY, \
     TITLE VARCHAR(100), \
     AUTHOR_KEY VARCHAR(30), \
     SITE VARCHAR(10), \
     GRID_SIZE INTEGER)";

const RF_DDL: &str = "CREATE TABLE RESULT_FILE (\
     FILE_NAME VARCHAR(50) PRIMARY KEY, \
     SIMULATION_KEY VARCHAR(30), \
     SITE VARCHAR(10), \
     TIMESTEP INTEGER, \
     FILE_SIZE INTEGER)";

/// AUTHOR lives at the hub only — its join leg must be read in place.
const AUTHORS: &[(&str, &str, &str)] = &[
    ("A1", "Mark Papiani", "University of Southampton"),
    ("A2", "Jasmin Wason", "University of Southampton"),
    ("A3", "Denis Nicole", "University of Southampton"),
];

/// SIMULATION partitions, listed in catalog partition order (hub
/// first) so the oracle's insertion order matches the federation's
/// gather order. S06 has a NULL author: LEFT JOIN must keep it.
const SIMS: &[(&str, &str, Option<&str>, &str, i64)] = &[
    ("S01", "Channel flow 1", Some("A1"), "soton", 64),
    ("S02", "Channel flow 2", Some("A2"), "soton", 128),
    ("S03", "Channel flow 3", Some("A3"), "cam", 64),
    ("S04", "Channel flow 4", Some("A1"), "cam", 256),
    ("S05", "Channel flow 5", Some("A2"), "edin", 128),
    ("S06", "Decay run 6", None, "edin", 96),
];

/// RESULT_FILE partitions: files deliberately reference simulations
/// held at *other* sites, so the substitute TITLE can only come from a
/// cross-site join. f08 has a NULL key: LEFT JOIN must keep it.
const FILES: &[(&str, Option<&str>, &str, i64, i64)] = &[
    ("f01", Some("S03"), "soton", 0, 1000),
    ("f02", Some("S05"), "soton", 1, 2000),
    ("f03", Some("S01"), "cam", 0, 1500),
    ("f04", Some("S01"), "cam", 1, 1600),
    ("f05", Some("S06"), "cam", 0, 800),
    ("f06", Some("S02"), "edin", 0, 2400),
    ("f07", Some("S04"), "edin", 1, 3200),
    ("f08", None, "edin", 2, 500),
];

fn opt(v: Option<&str>) -> String {
    match v {
        Some(s) => format!("'{s}'"),
        None => "NULL".to_string(),
    }
}

fn install_data(db: &mut easia_db::Database, site: Option<&str>) {
    for (k, t, a, s, g) in SIMS {
        if site.is_none_or(|want| want == *s) {
            db.execute(&format!(
                "INSERT INTO SIMULATION VALUES ('{k}', '{t}', {}, '{s}', {g})",
                opt(*a)
            ))
            .unwrap();
        }
    }
    for (f, k, s, t, b) in FILES {
        if site.is_none_or(|want| want == *s) {
            db.execute(&format!(
                "INSERT INTO RESULT_FILE VALUES ('{f}', {}, '{s}', {t}, {b})",
                opt(*k)
            ))
            .unwrap();
        }
    }
}

fn customize(a: &mut Archive) {
    let mut doc = a.xuis.clone();
    let fk = |table: &str, tablecolumn: &str, subst: &str| easia_xuis::FkSpec {
        tablecolumn: format!("{table}.{tablecolumn}"),
        substcolumn: Some(format!("{table}.{subst}")),
    };
    doc.table_mut("SIMULATION")
        .unwrap()
        .column_mut("AUTHOR_KEY")
        .unwrap()
        .fk = Some(fk("AUTHOR", "AUTHOR_KEY", "NAME"));
    doc.table_mut("RESULT_FILE")
        .unwrap()
        .column_mut("SIMULATION_KEY")
        .unwrap()
        .fk = Some(fk("SIMULATION", "SIMULATION_KEY", "TITLE"));
    a.set_xuis(doc);
}

/// The federation: hub (soton) plus cam and edin, SIMULATION and
/// RESULT_FILE partitioned on SITE, AUTHOR hub-local.
fn federated_archive() -> Archive {
    let mut a = Archive::builder()
        .federated_site("cam", easia_core::paper_link_spec())
        .federated_site("edin", easia_core::paper_link_spec())
        .build();
    a.db.execute(AUTHOR_DDL).unwrap();
    a.db.execute(SIM_DDL).unwrap();
    a.db.execute(RF_DDL).unwrap();
    for (k, n, i) in AUTHORS {
        a.db.execute(&format!("INSERT INTO AUTHOR VALUES ('{k}', '{n}', '{i}')"))
            .unwrap();
    }
    install_data(&mut a.db, Some("soton"));
    for site in ["cam", "edin"] {
        let s = a.federation.site(site).unwrap();
        let mut db = s.db.borrow_mut();
        db.execute(AUTHOR_DDL).unwrap();
        db.execute(SIM_DDL).unwrap();
        db.execute(RF_DDL).unwrap();
        install_data(&mut db, Some(site));
    }
    for table in ["SIMULATION", "RESULT_FILE"] {
        a.federation
            .catalog
            .import_foreign_table(
                &a.db,
                table,
                Some("SITE"),
                vec![
                    Partition::new(None, &["soton"]),
                    Partition::new(Some("cam"), &["cam"]),
                    Partition::new(Some("edin"), &["edin"]),
                ],
            )
            .unwrap();
    }
    a.generate_xuis_federated(6);
    customize(&mut a);
    a
}

/// The oracle: one database holding every partition's rows, same XUIS.
fn oracle_archive() -> Archive {
    let mut a = Archive::builder().build();
    a.db.execute(AUTHOR_DDL).unwrap();
    a.db.execute(SIM_DDL).unwrap();
    a.db.execute(RF_DDL).unwrap();
    for (k, n, i) in AUTHORS {
        a.db.execute(&format!("INSERT INTO AUTHOR VALUES ('{k}', '{n}', '{i}')"))
            .unwrap();
    }
    install_data(&mut a.db, None);
    a.generate_xuis_federated(6);
    customize(&mut a);
    a
}

fn rigs() -> (WebApp, WebApp) {
    (
        WebApp::new(federated_archive()),
        WebApp::new(oracle_archive()),
    )
}

fn login(app: &mut WebApp) -> String {
    let r = app.handle(Request::post(
        "/login",
        &[("username", "admin"), ("password", "hpcc-admin")],
    ));
    assert_eq!(r.status, 302, "{}", r.body_text());
    r.set_session.expect("session cookie")
}

/// The result table portion of a page body: everything from the first
/// `<table` on. Comparing this across the two rigs asserts identical
/// rows, identical ordering and identical substituted values, while
/// ignoring the federation notice that only the federated page carries.
fn result_table(body: &str) -> String {
    let start = body
        .find("<table")
        .unwrap_or_else(|| panic!("no result table in: {body}"));
    body[start..].to_string()
}

/// Drive the same request through both rigs; the result tables must be
/// byte-identical and the row count must agree.
fn both(fed: &mut WebApp, ora: &mut WebApp, req: impl Fn() -> Request) -> (String, String) {
    let fs = login(fed);
    let os = login(ora);
    let f = fed.handle(req().with_session(&fs));
    let o = ora.handle(req().with_session(&os));
    assert_eq!(f.status, 200, "federated: {}", f.body_text());
    assert_eq!(o.status, 200, "oracle: {}", o.body_text());
    let (fb, ob) = (f.body_text(), o.body_text());
    assert_eq!(
        result_table(&fb),
        result_table(&ob),
        "federated and oracle result tables differ"
    );
    (fb, ob)
}

#[test]
fn qbe_all_data_screens_match_the_oracle() {
    let (mut fed, mut ora) = rigs();
    for table in ["SIMULATION", "RESULT_FILE", "AUTHOR"] {
        let (fb, _) = both(&mut fed, &mut ora, || {
            Request::post(&format!("/query/{table}"), &[("all", "All data")])
        });
        if table == "AUTHOR" {
            assert!(
                !fb.contains("federated over"),
                "hub-local table must not federate: {fb}"
            );
        } else {
            assert!(fb.contains("federated over"), "no federation notice: {fb}");
        }
    }
}

#[test]
fn qbe_screens_show_cross_site_substitutes() {
    let (mut fed, mut ora) = rigs();
    // SIMULATION joins hub-local AUTHOR: every author name substituted.
    let (fb, _) = both(&mut fed, &mut ora, || {
        Request::post("/query/SIMULATION", &[("all", "All data")])
    });
    for name in ["Mark Papiani", "Jasmin Wason", "Denis Nicole"] {
        assert!(fb.contains(name), "missing substitute {name}: {fb}");
    }
    // RESULT_FILE joins federated SIMULATION: the hub-held f01 row
    // references cam-held S03, so its title can only come from the
    // cross-site semi-join.
    let (fb, _) = both(&mut fed, &mut ora, || {
        Request::post("/query/RESULT_FILE", &[("all", "All data")])
    });
    for title in ["Channel flow 3", "Channel flow 5", "Decay run 6"] {
        assert!(fb.contains(title), "missing substitute {title}: {fb}");
    }
    // The NULL-keyed file survives the LEFT JOIN.
    assert!(
        fb.contains("f08"),
        "LEFT JOIN dropped the NULL-key row: {fb}"
    );
}

#[test]
fn qbe_filtered_screens_match_the_oracle() {
    let (mut fed, mut ora) = rigs();
    // Pattern filter with a projected subset of columns.
    both(&mut fed, &mut ora, || {
        Request::post(
            "/query/SIMULATION",
            &[
                ("ret_TITLE", "on"),
                ("ret_AUTHOR_KEY", "on"),
                ("val_TITLE", "Channel%"),
            ],
        )
    });
    // Typed (integer) equality filter on a federated anchor.
    both(&mut fed, &mut ora, || {
        Request::post("/query/RESULT_FILE", &[("val_TIMESTEP", "1")])
    });
    // Comparison operator pushed down across sites.
    both(&mut fed, &mut ora, || {
        Request::post(
            "/query/SIMULATION",
            &[("val_GRID_SIZE", "100"), ("op_GRID_SIZE", "GE")],
        )
    });
}

#[test]
fn fk_browse_screens_match_the_oracle() {
    let (mut fed, mut ora) = rigs();
    // Follow a RESULT_FILE row's FK link to its (federated) simulation.
    let (fb, _) = both(&mut fed, &mut ora, || {
        Request::get("/browse/fk/SIMULATION.SIMULATION_KEY?value=S03")
    });
    assert!(fb.contains("Channel flow 3"), "{fb}");
    assert!(fb.contains("Denis Nicole"), "substituted author: {fb}");
    // Follow a SIMULATION row's FK link to its (hub-local) author.
    let (fb, _) = both(&mut fed, &mut ora, || {
        Request::get("/browse/fk/AUTHOR.AUTHOR_KEY?value=A1")
    });
    assert!(fb.contains("Mark Papiani"), "{fb}");
}

#[test]
fn pk_browse_screens_match_the_oracle() {
    let (mut fed, mut ora) = rigs();
    // Children of S01: two files, both held at cam.
    let (fb, _) = both(&mut fed, &mut ora, || {
        Request::get("/browse/pk/RESULT_FILE.SIMULATION_KEY?value=S01")
    });
    assert!(fb.contains("f03") && fb.contains("f04"), "{fb}");
    // Simulations by A1: one hub row (S01) and one cam row (S04).
    let (fb, _) = both(&mut fed, &mut ora, || {
        Request::get("/browse/pk/SIMULATION.AUTHOR_KEY?value=A1")
    });
    assert!(fb.contains("S01") && fb.contains("S04"), "{fb}");
    assert!(fb.contains("federated over"), "{fb}");
}

#[test]
fn every_substituted_browse_screen_plans_a_federated_join() {
    let a = federated_archive();
    let mut form = BTreeMap::new();
    form.insert("all".to_string(), "All data".to_string());
    let mut joined = 0;
    for xt in &a.xuis.tables {
        if fk_substitutes(xt).is_empty() {
            continue;
        }
        joined += 1;
        let (sql, params) = build_join_query(xt, &form).unwrap();
        let report = a
            .federated_explain(&sql, &params)
            .unwrap_or_else(|e| panic!("{}: {e}", xt.name));
        assert!(
            report.contains("(anchor)"),
            "{}: no anchor leg in:\n{report}",
            xt.name
        );
        assert!(
            report.contains("join leg"),
            "{}: no join legs in:\n{report}",
            xt.name
        );
    }
    assert_eq!(joined, 2, "both substituted tables planned");
    // RESULT_FILE's SIMULATION leg is keyed: both tables are federated,
    // so the join must ship bound keys rather than whole partitions.
    let xt = a.xuis.table("RESULT_FILE").unwrap();
    let (sql, params) = build_join_query(xt, &form).unwrap();
    let report = a.federated_explain(&sql, &params).unwrap();
    assert!(report.contains("semi-join keyed on"), "{report}");
}

#[test]
fn explain_federated_route_reports_join_legs() {
    let mut fed = WebApp::new(federated_archive());
    let sess = login(&mut fed);
    let r = fed.handle(
        Request::post("/federated/explain/RESULT_FILE", &[("all", "All data")]).with_session(&sess),
    );
    assert_eq!(r.status, 200, "{}", r.body_text());
    let body = r.body_text();
    assert!(body.contains("join leg"), "{body}");
    assert!(body.contains("semi-join keyed on"), "{body}");
}
