//! Federation under failure: foreign-site outages before the scan,
//! mid-stream during the gather phase, the opt-in PARTIAL policy, and
//! recovery-then-retry — plus the portal's 503/Retry-After surface.

use easia_core::{Archive, ArchiveError, WebApp};
use easia_db::Value;
use easia_med::{BreakerState, PartialPolicy, Partition, DEFAULT_RETRY_AFTER_SECS};
use easia_net::FaultSchedule;
use easia_web::http::Request;

const DDL: &str = "CREATE TABLE SIMULATION (\
     SIMULATION_KEY VARCHAR(40) PRIMARY KEY, \
     SITE VARCHAR(20), \
     TITLE VARCHAR(80), \
     GRID_SIZE INTEGER)";

/// A hub plus two foreign sites, each holding `rows_per_site` rows of
/// the shared SIMULATION table, partitioned on SITE.
fn fed_archive(rows_per_site: usize) -> Archive {
    let mut a = Archive::builder()
        .federated_site("cam", easia_core::paper_link_spec())
        .federated_site("edin", easia_core::paper_link_spec())
        .build();
    a.db.execute(DDL).unwrap();
    for i in 0..rows_per_site {
        a.db.execute(&format!(
            "INSERT INTO SIMULATION VALUES \
             ('soton-{i:04}', 'soton', 'Decaying turbulence run {i}', {})",
            64 + i
        ))
        .unwrap();
    }
    for site in ["cam", "edin"] {
        let s = a.federation.site(site).unwrap();
        let mut db = s.db.borrow_mut();
        db.execute(DDL).unwrap();
        for i in 0..rows_per_site {
            db.execute(&format!(
                "INSERT INTO SIMULATION VALUES \
                 ('{site}-{i:04}', '{site}', 'Forced turbulence run {i}', {})",
                128 + i
            ))
            .unwrap();
        }
    }
    a.federation
        .catalog
        .import_foreign_table(
            &a.db,
            "SIMULATION",
            Some("SITE"),
            vec![
                Partition::new(None, &["soton"]),
                Partition::new(Some("cam"), &["cam"]),
                Partition::new(Some("edin"), &["edin"]),
            ],
        )
        .unwrap();
    a.federation.analyze(&mut a.db).unwrap();
    a.generate_xuis_federated(4);
    a
}

fn unavailable_parts(e: &ArchiveError) -> (String, u64) {
    match e {
        ArchiveError::Fs(easia_fs::FsError::Unavailable {
            host,
            retry_after_secs,
        }) => (host.clone(), *retry_after_secs),
        other => panic!("expected typed Unavailable, got {other:?}"),
    }
}

#[test]
fn outage_before_scan_fails_closed_with_retry_hint() {
    let mut a = fed_archive(6);
    a.federation.site("cam").unwrap().crash();

    let err = a
        .federated_query("SELECT * FROM SIMULATION", &[])
        .unwrap_err();
    let (host, retry) = unavailable_parts(&err);
    assert_eq!(host, "cam");
    assert_eq!(retry, DEFAULT_RETRY_AFTER_SECS);

    // Pruning still beats the outage: a query pinned to a live site's
    // partition never talks to the dead one.
    let out = a
        .federated_query(
            "SELECT SIMULATION_KEY FROM SIMULATION WHERE SITE = 'edin'",
            &[],
        )
        .unwrap();
    assert_eq!(out.rs.rows.len(), 6);
}

#[test]
fn outage_surfaces_as_503_with_retry_after_on_the_portal() {
    let a = fed_archive(4);
    a.federation.site("edin").unwrap().crash();
    let mut app = WebApp::new(a);

    let r = app.handle(Request::post(
        "/login",
        &[("username", "admin"), ("password", "hpcc-admin")],
    ));
    let token = r.set_session.unwrap();

    let resp =
        app.handle(Request::post("/query/SIMULATION", &[("all", "All data")]).with_session(&token));
    assert_eq!(resp.status, 503);
    assert_eq!(resp.retry_after, Some(DEFAULT_RETRY_AFTER_SECS));
    assert!(
        resp.body_text().contains("edin"),
        "error names the dead site: {}",
        resp.body_text()
    );

    // The degraded response is recorded on the shared registry like any
    // other HTTP outcome.
    let metrics = app
        .handle(Request::get("/metrics").with_session(&token))
        .body_text();
    assert!(
        metrics.contains("route=\"query\",status=\"503\"")
            || metrics.contains("status=\"503\",route=\"query\""),
        "503 shows up in http metrics: {metrics}"
    );
}

#[test]
fn partial_policy_returns_survivors_and_annotates_the_skip() {
    let mut a = fed_archive(5);
    a.federation.policy = PartialPolicy::Partial;
    a.federation.site("cam").unwrap().crash();

    let out = a
        .federated_query(
            "SELECT SIMULATION_KEY, SITE FROM SIMULATION ORDER BY SIMULATION_KEY",
            &[],
        )
        .unwrap();
    assert_eq!(out.explain.skipped, vec!["cam".to_string()]);
    // soton (local) + edin survive; cam's partition is absent.
    assert_eq!(out.rs.rows.len(), 10);
    assert!(out.rs.rows.iter().all(|r| r[1] != Value::Str("cam".into())));

    let report = out.explain.render();
    assert!(
        report.contains("SKIPPED"),
        "render flags the skip: {report}"
    );
    let notice = easia_web::fed::federation_notice(&out.explain);
    assert!(notice.contains("PARTIAL"));
    assert!(notice.contains("cam"));
}

#[test]
fn outage_mid_stream_and_recovery_then_retry() {
    let sql = "SELECT * FROM SIMULATION ORDER BY SIMULATION_KEY";
    let rows_per_site = 150;

    // Baseline: the undisturbed run tells us (deterministically) how
    // long the scatter-gather takes, so we can aim a host-crash window
    // at the middle of the batch stream.
    let mut probe = fed_archive(rows_per_site);
    probe.federation.batch_rows = 32;
    let baseline = probe.federated_query(sql, &[]).unwrap();
    let elapsed = probe.net.now();
    assert_eq!(baseline.rs.rows.len(), 3 * rows_per_site);
    assert!(elapsed > 0.1, "gather phase is long enough to interrupt");

    // Same archive, same query, but cam's host dies halfway through.
    let mut a = fed_archive(rows_per_site);
    a.federation.batch_rows = 32;
    let cam_host = a.federation.site("cam").unwrap().host;
    let down_at = elapsed * 0.5;
    let up_at = down_at + 7_200.0;
    let mut faults = FaultSchedule::new();
    faults.host_crash(cam_host, down_at, up_at);
    a.net.set_fault_schedule(faults);

    let err = a.federated_query(sql, &[]).unwrap_err();
    let (host, retry) = unavailable_parts(&err);
    assert_eq!(host, "cam");
    // The hint is derived from the fault schedule (end of the crash
    // window), not the blanket default.
    assert!(
        retry > DEFAULT_RETRY_AFTER_SECS && retry as f64 <= up_at + 1.0,
        "retry-after {retry} should point at the crash window end"
    );

    // Recovery: wait out the crash window, retry, get the full answer.
    a.advance_to(up_at + 1.0);
    let out = a.federated_query(sql, &[]).unwrap();
    assert_eq!(out.rs.rows, baseline.rs.rows);

    // The same dance for a software outage: crash the service, fail
    // closed; restart it, the retry succeeds.
    let mut b = fed_archive(3);
    b.federation.site("edin").unwrap().crash();
    assert!(b.federated_query(sql, &[]).is_err());
    b.federation.site("edin").unwrap().restart();
    let out = b.federated_query(sql, &[]).unwrap();
    assert_eq!(out.rs.rows.len(), 9);
}

#[test]
fn mid_stream_outage_with_recovery_inside_deadline_resumes_to_completion() {
    let sql = "SELECT * FROM SIMULATION ORDER BY SIMULATION_KEY";
    let rows_per_site = 150;

    // Baseline: the undisturbed run's rows and duration.
    let mut probe = fed_archive(rows_per_site);
    probe.federation.batch_rows = 32;
    let baseline = probe.federated_query(sql, &[]).unwrap();
    let elapsed = probe.net.now();

    // Same archive, but cam's host dies halfway through the batch
    // stream and recovers 90 s later — well inside the 600 s query
    // deadline. The retry ladder waits out the crash, re-issues the
    // scan with a resume_from cursor, and the answer comes back
    // complete: no error, no skip, no stale rows.
    let mut a = fed_archive(rows_per_site);
    a.federation.batch_rows = 32;
    let cam_host = a.federation.site("cam").unwrap().host;
    let down_at = elapsed * 0.5;
    let mut faults = FaultSchedule::new();
    faults.host_crash(cam_host, down_at, down_at + 90.0);
    a.net.set_fault_schedule(faults);

    let out = a.federated_query(sql, &[]).unwrap();
    assert_eq!(out.rs.rows, baseline.rs.rows);
    assert!(out.explain.skipped.is_empty());
    assert!(out.explain.stale.is_empty());
    let cam = out.explain.sites.iter().find(|s| s.site == "cam").unwrap();
    assert!(cam.retries >= 1, "cam was retried: {}", cam.retries);
    assert!(
        out.explain.render().contains("retries:"),
        "EXPLAIN FEDERATED reports the retry count"
    );
    // The retry waited for the recovery, so the query took at least
    // until the end of the crash window.
    assert!(a.net.now() >= down_at + 90.0);
}

const RF_DDL: &str = "CREATE TABLE RESULT_FILE (\
     FILE_NAME VARCHAR(40) PRIMARY KEY, \
     SIMULATION_KEY VARCHAR(40), \
     SITE VARCHAR(20), \
     FILE_SIZE INTEGER)";

const JOIN_SQL: &str = "SELECT R.FILE_NAME, S.TITLE \
     FROM RESULT_FILE R JOIN SIMULATION S \
     ON R.SIMULATION_KEY = S.SIMULATION_KEY \
     ORDER BY R.FILE_NAME";

/// [`fed_archive`] plus a federated RESULT_FILE table whose rows
/// deliberately reference simulations held at *other* sites, so the
/// join's keyed leg has real cross-site traffic on every partition.
fn join_archive(rows_per_site: usize, cache: bool) -> Archive {
    let sites = ["soton", "cam", "edin"];
    let mut a = Archive::builder()
        .federated_site("cam", easia_core::paper_link_spec())
        .federated_site("edin", easia_core::paper_link_spec())
        .build();
    if cache {
        a.federation.enable_replica_cache(600.0, 10_000);
    }
    a.db.execute(DDL).unwrap();
    a.db.execute(RF_DDL).unwrap();
    for site in ["cam", "edin"] {
        let s = a.federation.site(site).unwrap();
        let mut db = s.db.borrow_mut();
        db.execute(DDL).unwrap();
        db.execute(RF_DDL).unwrap();
    }
    for (si, site) in sites.iter().enumerate() {
        for i in 0..rows_per_site {
            let sim = format!(
                "INSERT INTO SIMULATION VALUES \
                 ('{site}-{i:04}', '{site}', 'Turbulence run {i}', {})",
                64 + i
            );
            // Each file references the same-index simulation one site
            // over, so following the key always crosses a partition.
            let ref_site = sites[(si + 1) % 3];
            let file = format!(
                "INSERT INTO RESULT_FILE VALUES \
                 ('{site}-f{i:04}', '{ref_site}-{i:04}', '{site}', {})",
                1000 + i
            );
            if *site == "soton" {
                a.db.execute(&sim).unwrap();
                a.db.execute(&file).unwrap();
            } else {
                let s = a.federation.site(site).unwrap();
                let mut db = s.db.borrow_mut();
                db.execute(&sim).unwrap();
                db.execute(&file).unwrap();
            }
        }
    }
    for table in ["SIMULATION", "RESULT_FILE"] {
        a.federation
            .catalog
            .import_foreign_table(
                &a.db,
                table,
                Some("SITE"),
                vec![
                    Partition::new(None, &["soton"]),
                    Partition::new(Some("cam"), &["cam"]),
                    Partition::new(Some("edin"), &["edin"]),
                ],
            )
            .unwrap();
    }
    a.federation.analyze(&mut a.db).unwrap();
    a
}

#[test]
fn outage_mid_keyed_scan_resumes_the_join_via_batch_cursor() {
    let rows_per_site = 150;

    // With any fault schedule installed the gather clock advances in
    // stall-timeout quanta rather than event-exact times, so the
    // baseline must be measured under the same regime: a benign
    // far-future crash of the client host (never involved in a
    // federated scan) switches the probe to quantised timing without
    // disturbing the query.
    let mut probe = join_archive(rows_per_site, false);
    probe.federation.batch_rows = 32;
    let mut benign = FaultSchedule::new();
    benign.host_crash(probe.client_host, 1.0e9, 1.0e9 + 1.0);
    probe.net.set_fault_schedule(benign);
    let baseline = probe.federated_query(JOIN_SQL, &[]).unwrap();
    let elapsed = probe.net.now();
    assert_eq!(baseline.rs.rows.len(), 3 * rows_per_site);

    // Same archive, but cam's host dies inside the keyed-scan phase
    // (the anchor and keyed legs stream the same number of batch
    // quanta, so 3/4 of the run is mid-keyed-stream) and recovers 90 s
    // later — within the query deadline. The retry ladder waits out
    // the crash, re-issues the keyed scan with a resume_from cursor,
    // and the join completes identically.
    let mut a = join_archive(rows_per_site, false);
    a.federation.batch_rows = 32;
    let cam_host = a.federation.site("cam").unwrap().host;
    let down_at = elapsed * 0.75;
    let mut faults = FaultSchedule::new();
    faults.host_crash(cam_host, down_at, down_at + 90.0);
    a.net.set_fault_schedule(faults);

    let out = a.federated_query(JOIN_SQL, &[]).unwrap();
    assert_eq!(out.rs.rows, baseline.rs.rows);
    assert!(out.explain.skipped.is_empty());
    assert!(out.explain.stale.is_empty());
    assert!(
        out.explain
            .sites
            .iter()
            .any(|s| s.site == "cam" && s.table == "SIMULATION" && s.retries >= 1),
        "cam's keyed SIMULATION leg was retried: {}",
        out.explain.render()
    );
    assert!(
        out.explain.render().contains("semi-join keyed on"),
        "the retried run still shipped keys: {}",
        out.explain.render()
    );
    assert!(
        a.net.now() >= down_at + 90.0,
        "the retry waited out the crash"
    );
}

#[test]
fn open_breaker_under_degraded_policy_serves_stale_join_side_with_banner() {
    let rows_per_site = 5;
    let mut a = join_archive(rows_per_site, true);
    a.federation.policy = PartialPolicy::Degraded;

    // Warm run: every foreign partition ships whole and lands in the
    // hub's replica cache.
    let baseline = a.federated_query(JOIN_SQL, &[]).unwrap();
    assert_eq!(baseline.rs.rows.len(), 3 * rows_per_site);

    // Kill cam and keep querying: each failure feeds the breaker until
    // it opens.
    a.federation.site("cam").unwrap().crash();
    for _ in 0..a.federation.breaker_threshold {
        let out = a.federated_query(JOIN_SQL, &[]).unwrap();
        assert_eq!(
            out.rs.rows, baseline.rs.rows,
            "stale replica keeps the join whole"
        );
        if a.federation.site("cam").unwrap().breaker_state() == BreakerState::Open {
            break;
        }
    }
    assert_eq!(
        a.federation.site("cam").unwrap().breaker_state(),
        BreakerState::Open,
        "repeated failures opened cam's breaker"
    );

    // With the breaker open the next join never touches cam's WAN link:
    // both of cam's join legs are served from the stale replica, the
    // answer still matches, and the degradation is announced.
    let out = a.federated_query(JOIN_SQL, &[]).unwrap();
    assert_eq!(out.rs.rows, baseline.rs.rows);
    assert!(out.explain.skipped.is_empty());
    assert!(
        out.explain.stale.iter().any(|s| s.site == "cam"),
        "stale serve annotated: {}",
        out.explain.render()
    );
    assert!(out.explain.render().contains("STALE replica served"));
    let banner = easia_web::fed::federation_banner(&out.explain);
    assert!(banner.contains("banner warning"), "{banner}");
    assert!(banner.contains("STALE"), "{banner}");
    assert!(banner.contains("cam"), "{banner}");
}

#[test]
fn deadline_expiry_mid_stream_cancels_wan_work_without_breaker_penalty() {
    let sql = "SELECT * FROM SIMULATION ORDER BY SIMULATION_KEY";
    let rows_per_site = 150;

    // Baseline: how long the undisturbed scatter-gather takes.
    let mut probe = fed_archive(rows_per_site);
    probe.federation.batch_rows = 32;
    let t0 = probe.net.now();
    probe.federated_query(sql, &[]).unwrap();
    let full_stream = probe.net.now() - t0;

    // Same workload, but the query's deadline budget expires at 40% of
    // the stream. The gather must stop issuing EMB1 batch requests at
    // the first wave boundary past the deadline — an abandoned query
    // may not keep burning WAN capacity nobody will consume.
    let mut a = fed_archive(rows_per_site);
    a.federation.batch_rows = 32;
    a.federation.policy = PartialPolicy::Partial;
    a.federation.deadline_secs = full_stream * 0.4;
    let t0 = a.net.now();
    let out = a.federated_query(sql, &[]).unwrap();
    let elapsed = a.net.now() - t0;
    assert!(
        elapsed < full_stream * 0.7,
        "gather kept streaming past the deadline: {elapsed:.1}s of {full_stream:.1}s"
    );
    // Both remote streams were cancelled mid-flight; under PARTIAL the
    // hub's own partition still answers.
    assert_eq!(
        out.explain.skipped,
        vec!["cam".to_string(), "edin".to_string()]
    );
    assert_eq!(out.rs.rows.len(), rows_per_site);
    // Deadline expiry is client-side cancellation: the sites did
    // nothing wrong, so their breakers stay closed and later queries
    // go straight back to the WAN.
    for site in ["cam", "edin"] {
        assert_eq!(
            a.federation.site(site).unwrap().breaker_state(),
            BreakerState::Closed,
            "{site} breaker must not trip on a client-side deadline"
        );
        assert_eq!(
            a.obs
                .metrics
                .value("easia_med_deadline_cancelled_total", &[("site", site)]),
            Some(1.0),
            "{site} cancellation is visible on /metrics"
        );
    }
    // With a sane budget the very next query completes whole.
    a.federation.deadline_secs = easia_med::DEFAULT_DEADLINE_SECS;
    let out = a.federated_query(sql, &[]).unwrap();
    assert_eq!(out.rs.rows.len(), 3 * rows_per_site);
    assert!(out.explain.skipped.is_empty());
}

#[test]
fn mid_stream_outage_under_partial_policy_keeps_survivors() {
    let sql = "SELECT SIMULATION_KEY, SITE FROM SIMULATION ORDER BY SIMULATION_KEY";
    let rows_per_site = 150;

    let mut probe = fed_archive(rows_per_site);
    probe.federation.batch_rows = 32;
    probe.federated_query(sql, &[]).unwrap();
    let elapsed = probe.net.now();

    let mut a = fed_archive(rows_per_site);
    a.federation.batch_rows = 32;
    a.federation.policy = PartialPolicy::Partial;
    let cam_host = a.federation.site("cam").unwrap().host;
    let mut faults = FaultSchedule::new();
    faults.host_crash(cam_host, elapsed * 0.5, elapsed * 0.5 + 7_200.0);
    a.net.set_fault_schedule(faults);

    let out = a.federated_query(sql, &[]).unwrap();
    assert_eq!(out.explain.skipped, vec!["cam".to_string()]);
    // Whatever cam managed to ship before dying is discarded whole —
    // partial results are per-site, never per-batch.
    assert_eq!(out.rs.rows.len(), 2 * rows_per_site);
    assert!(out.rs.rows.iter().all(|r| r[1] != Value::Str("cam".into())));
}
