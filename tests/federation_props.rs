//! Federation properties: the row-batch wire codec round-trips every
//! value shape, damaged frames never decode, and — the big one — a
//! federated scatter-gather query always returns exactly what a single
//! database holding every partition's rows would return.

use easia_db::{Database, Value};
use easia_med::{
    decode_batch, encode_batch, AggCall, Federation, PartialAggSpec, Partition, ScanRequest,
};
use easia_net::{FaultSchedule, SimNet};
use proptest::prelude::*;

/// Map a generated `(tag, int, float, text)` tuple onto one [`Value`].
fn value_of(tag: u8, i: i64, f: f64, s: &str) -> Value {
    match tag % 9 {
        0 => Value::Null,
        1 => Value::Int(i),
        2 => Value::Double(f),
        3 => Value::Str(s.to_string()),
        4 => Value::Bool(i & 1 == 1),
        5 => Value::Timestamp(i),
        6 => Value::Blob(s.as_bytes().to_vec()),
        7 => Value::Clob(s.repeat(64)),
        _ => Value::Datalink(format!("http://fs1.example/data/{s}.dat")),
    }
}

const SITES: [&str; 3] = ["soton", "cam", "edin"];

const DDL: &str = "CREATE TABLE T (\
     K VARCHAR(10) PRIMARY KEY, \
     SITE VARCHAR(10), \
     N INTEGER, \
     X DOUBLE, \
     S VARCHAR(10))";

/// Rows sorted into a canonical multiset representation.
fn canon(rows: &[Vec<Value>]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

proptest! {
    // --- wire codec ---

    #[test]
    fn row_batches_round_trip_on_the_wire(
        shape in proptest::collection::vec(
            proptest::collection::vec(
                (any::<u8>(), any::<i64>(), -1.0e12..1.0e12, "[ -~]{0,60}"),
                0..6,
            ),
            0..5,
        ),
    ) {
        let mut rows: Vec<Vec<Value>> = shape
            .iter()
            .map(|r| r.iter().map(|(t, i, f, s)| value_of(*t, *i, *f, s)).collect())
            .collect();
        // Every case also carries the boundary row: extreme integers, a
        // NULL, and a string far larger than one batch's typical size.
        rows.push(vec![
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Double(0.0),
            Value::Str("x".repeat(5_000)),
            Value::Null,
        ]);
        let buf = encode_batch(&rows, 5, 99);
        let batch = decode_batch(&buf).unwrap();
        prop_assert_eq!(batch.seq, 5);
        prop_assert_eq!(batch.write_counter, 99);
        prop_assert_eq!(batch.rows, rows);
    }

    #[test]
    fn damaged_batch_frames_never_decode(
        shape in proptest::collection::vec(
            (any::<u8>(), any::<i64>(), -1.0e6..1.0e6, "[a-z]{0,20}"),
            0..8,
        ),
        cut in any::<usize>(),
        flip in any::<u8>(),
        seq in any::<u32>(),
        wc in any::<u64>(),
    ) {
        let rows: Vec<Vec<Value>> = shape
            .iter()
            .map(|(t, i, f, s)| vec![value_of(*t, *i, *f, s)])
            .collect();
        let buf = encode_batch(&rows, seq, wc);
        // Any proper prefix fails: either truncated mid-row or short of
        // the declared row count — never a silent wrong answer.
        let cut = cut % buf.len();
        prop_assert!(decode_batch(&buf[..cut]).is_err());
        // Magic damage is always detected.
        let mut bad = buf.clone();
        bad[0] ^= flip | 1;
        prop_assert!(decode_batch(&bad).is_err());
        // Trailing garbage is always detected.
        let mut long = buf.clone();
        long.push(flip);
        prop_assert!(decode_batch(&long).is_err());
    }

    #[test]
    fn scan_requests_round_trip_on_the_wire(
        table in "[A-Z]{1,10}",
        columns in proptest::collection::vec("[A-Z]{1,8}", 1..5),
        predicate in "[A-Z >=?()0-9]{0,30}",
        params in proptest::collection::vec(
            (any::<u8>(), any::<i64>(), -1.0e6..1.0e6, "[a-z]{0,12}"),
            0..4,
        ),
        order_by in proptest::collection::vec(("[A-Z]{1,8}", any::<bool>()), 0..3),
        limit in (any::<bool>(), 0usize..10_000),
        resume_from in any::<u64>(),
        key_filter in (
            any::<bool>(),
            "[A-Z]{1,8}",
            proptest::collection::vec(
                (any::<u8>(), any::<i64>(), -1.0e6..1.0e6, "[a-z]{0,12}"),
                0..4,
            ),
        ),
        partial_agg in (
            any::<bool>(),
            proptest::collection::vec("[A-Z]{1,8}", 0..3),
            proptest::collection::vec((0u8..5, "[A-Z]{1,8}"), 0..4),
        ),
    ) {
        let req = ScanRequest {
            table,
            columns,
            predicate,
            params: params.iter().map(|(t, i, f, s)| value_of(*t, *i, *f, s)).collect(),
            order_by,
            limit: limit.0.then_some(limit.1),
            resume_from,
            key_filter: key_filter.0.then(|| {
                (
                    key_filter.1.clone(),
                    key_filter.2.iter().map(|(t, i, f, s)| value_of(*t, *i, *f, s)).collect(),
                )
            }),
            partial_agg: partial_agg.0.then(|| PartialAggSpec {
                group_by: partial_agg.1.clone(),
                calls: partial_agg
                    .2
                    .iter()
                    .map(|(tag, col)| match tag {
                        0 => AggCall::CountStar,
                        1 => AggCall::Count(col.clone()),
                        2 => AggCall::Sum(col.clone()),
                        3 => AggCall::Min(col.clone()),
                        _ => AggCall::Max(col.clone()),
                    })
                    .collect(),
            }),
        };
        prop_assert_eq!(ScanRequest::decode(&req.encode()).unwrap(), req);
    }

    // --- federated == single-hub oracle ---

    #[test]
    fn federated_results_match_the_single_database_oracle(
        rows in proptest::collection::vec(
            (0u8..3, -50i64..50, -10.0..10.0, "[ab]{0,4}"),
            0..40,
        ),
        kind in 0u8..6,
        threshold in -50i64..50,
        site_pick in 0u8..3,
        limit in 1usize..8,
    ) {
        // The federation: a hub plus two foreign sites, each holding the
        // partition of T whose SITE column names it.
        let mut net = SimNet::new();
        let hub = net.add_host("hub", 4);
        let mut hub_db = Database::new_in_memory();
        hub_db.execute(DDL).unwrap();
        let mut fed = Federation::default();
        for site in &SITES[1..] {
            let h = net.add_host(site, 4);
            net.connect(h, hub, easia_core::paper_link_spec());
            let mut db = Database::new_in_memory();
            db.execute(DDL).unwrap();
            fed.add_site(site, h, db);
        }

        // The oracle: one database holding every partition's rows.
        let mut oracle = Database::new_in_memory();
        oracle.execute(DDL).unwrap();

        for (idx, (site_idx, n, x, s)) in rows.iter().enumerate() {
            let site = SITES[(*site_idx as usize) % 3];
            let insert = format!(
                "INSERT INTO T VALUES ('k{idx:04}', '{site}', {n}, {x:.4}, '{s}')"
            );
            oracle.execute(&insert).unwrap();
            if site == "soton" {
                hub_db.execute(&insert).unwrap();
            } else {
                fed.site(site).unwrap().db.borrow_mut().execute(&insert).unwrap();
            }
        }

        fed.catalog
            .import_foreign_table(
                &hub_db,
                "T",
                Some("SITE"),
                vec![
                    Partition::new(None, &["soton"]),
                    Partition::new(Some("cam"), &["cam"]),
                    Partition::new(Some("edin"), &["edin"]),
                ],
            )
            .unwrap();

        let (sql, params): (String, Vec<Value>) = match kind {
            0 => ("SELECT * FROM T".into(), vec![]),
            1 => ("SELECT K, N FROM T WHERE N >= ?".into(), vec![Value::Int(threshold)]),
            2 => {
                let site = SITES[(site_pick as usize) % 3];
                (format!("SELECT K, SITE FROM T WHERE SITE = '{site}'"), vec![])
            }
            3 => (
                "SELECT K, S, N FROM T WHERE N >= ? AND S LIKE 'a%'".into(),
                vec![Value::Int(threshold)],
            ),
            4 => ("SELECT SITE, COUNT(*) FROM T GROUP BY SITE ORDER BY SITE".into(), vec![]),
            _ => (format!("SELECT K, N FROM T ORDER BY K DESC LIMIT {limit}"), vec![]),
        };

        let out = fed
            .query(&mut net, hub, &mut hub_db, None, &sql, &params)
            .unwrap();
        let want = oracle.execute_with_params(&sql, &params).unwrap();

        prop_assert_eq!(&out.rs.columns, &want.columns);
        prop_assert_eq!(canon(&out.rs.rows), canon(&want.rows));
        // With an explicit ORDER BY the sequence (not just the multiset)
        // must agree — the ordering key K is unique.
        if kind >= 4 {
            prop_assert_eq!(&out.rs.rows, &want.rows);
        }
    }

    // --- federated semi-join == single-hub oracle ---

    #[test]
    fn federated_semi_joins_match_the_single_database_oracle(
        anchor_rows in proptest::collection::vec(
            (0u8..3, (any::<bool>(), "[ab]{1,2}"), -5i64..5),
            0..20,
        ),
        child_rows in proptest::collection::vec(
            (0u8..3, (any::<bool>(), "[ab]{1,2}"), -5i64..5),
            0..20,
        ),
        max_keys in 1usize..12,
        kind in 0u8..4,
        threshold in -5i64..5,
    ) {
        // Two federated tables partitioned over a hub and two foreign
        // sites. Join keys are drawn from a tiny domain (so matches,
        // duplicates and fan-out are common) and are nullable (so the
        // NULL-key exclusion of 3-valued `=` is exercised); the key
        // ship bound is tiny (so the overflow fallback to full-ship
        // fires on many cases); anchors can be empty outright or
        // emptied by the WHERE filter (so the skip-every-partition
        // path is exercised). Whatever the combination, the federated
        // answer must equal the single-database oracle's.
        const A_DDL: &str = "CREATE TABLE A (\
             K VARCHAR(10) PRIMARY KEY, SITE VARCHAR(10), J VARCHAR(4), N INTEGER)";
        const B_DDL: &str = "CREATE TABLE B (\
             K VARCHAR(10) PRIMARY KEY, SITE VARCHAR(10), J VARCHAR(4), M INTEGER)";

        let mut net = SimNet::new();
        let hub = net.add_host("hub", 4);
        let mut hub_db = Database::new_in_memory();
        hub_db.execute(A_DDL).unwrap();
        hub_db.execute(B_DDL).unwrap();
        let mut fed = Federation::default();
        fed.semijoin_max_keys = max_keys;
        for site in &SITES[1..] {
            let h = net.add_host(site, 4);
            net.connect(h, hub, easia_core::paper_link_spec());
            let mut db = Database::new_in_memory();
            db.execute(A_DDL).unwrap();
            db.execute(B_DDL).unwrap();
            fed.add_site(site, h, db);
        }
        let mut oracle = Database::new_in_memory();
        oracle.execute(A_DDL).unwrap();
        oracle.execute(B_DDL).unwrap();

        // Insert site-grouped (hub partition first) so the oracle's row
        // order matches the federation's gather order.
        for (table, rows) in [("A", &anchor_rows), ("B", &child_rows)] {
            for want in SITES {
                for (idx, (site_idx, j, n)) in rows.iter().enumerate() {
                    let site = SITES[(*site_idx as usize) % 3];
                    if site != want {
                        continue;
                    }
                    let jlit = if j.0 { format!("'{}'", j.1) } else { "NULL".into() };
                    let insert = format!(
                        "INSERT INTO {table} VALUES ('{table}{idx:03}', '{site}', {jlit}, {n})"
                    );
                    oracle.execute(&insert).unwrap();
                    if site == "soton" {
                        hub_db.execute(&insert).unwrap();
                    } else {
                        fed.site(site).unwrap().db.borrow_mut().execute(&insert).unwrap();
                    }
                }
            }
        }

        for table in ["A", "B"] {
            fed.catalog
                .import_foreign_table(
                    &hub_db,
                    table,
                    Some("SITE"),
                    vec![
                        Partition::new(None, &["soton"]),
                        Partition::new(Some("cam"), &["cam"]),
                        Partition::new(Some("edin"), &["edin"]),
                    ],
                )
                .unwrap();
        }

        let (sql, params): (String, Vec<Value>) = match kind {
            0 => (
                "SELECT A.K, B.K FROM A JOIN B ON A.J = B.J".into(),
                vec![],
            ),
            1 => (
                "SELECT A.K, B.K, B.M FROM A LEFT JOIN B ON A.J = B.J".into(),
                vec![],
            ),
            2 => (
                "SELECT A.K, B.K FROM A JOIN B ON A.J = B.J WHERE A.N >= ?".into(),
                vec![Value::Int(threshold)],
            ),
            _ => (
                "SELECT A.J, COUNT(*) FROM A JOIN B ON A.J = B.J GROUP BY A.J ORDER BY A.J"
                    .into(),
                vec![],
            ),
        };

        let out = fed
            .query(&mut net, hub, &mut hub_db, None, &sql, &params)
            .unwrap();
        let want = oracle.execute_with_params(&sql, &params).unwrap();

        prop_assert_eq!(&out.rs.columns, &want.columns);
        prop_assert_eq!(canon(&out.rs.rows), canon(&want.rows));
        // With an explicit total ORDER BY the sequence must agree too.
        if kind == 3 {
            prop_assert_eq!(&out.rs.rows, &want.rows);
        }
    }

    // --- interrupted + resumed == uninterrupted ---

    #[test]
    fn interrupted_then_resumed_scan_matches_uninterrupted(
        rows in proptest::collection::vec((-50i64..50, -10.0..10.0), 0..30),
        outage_start in 0.0f64..5.0,
        outage_len in 1.0f64..300.0,
        seed in any::<u64>(),
    ) {
        // Two identical rigs: one fault-free, one whose single remote
        // site crashes at an arbitrary instant (possibly mid-stream)
        // and recovers inside the query deadline. Whatever the seed
        // and outage point, retry + batch-level resume must make the
        // answers row-for-row identical — no skips, no stale serves.
        let build = |fault: Option<(f64, f64)>| {
            let mut net = SimNet::new();
            let hub = net.add_host("hub", 4);
            let cam = net.add_host("cam", 4);
            net.connect(cam, hub, easia_core::paper_link_spec());
            let mut hub_db = Database::new_in_memory();
            hub_db.execute(DDL).unwrap();
            let mut fed = Federation::default();
            fed.batch_rows = 3; // several frames even for small partitions
            fed.retry.jitter_seed = seed;
            let mut db = Database::new_in_memory();
            db.execute(DDL).unwrap();
            for (idx, (n, x)) in rows.iter().enumerate() {
                db.execute(&format!(
                    "INSERT INTO T VALUES ('k{idx:04}', 'cam', {n}, {x:.4}, 'a')"
                ))
                .unwrap();
            }
            fed.add_site("cam", cam, db);
            fed.catalog
                .import_foreign_table(
                    &hub_db,
                    "T",
                    Some("SITE"),
                    vec![
                        Partition::new(None, &["soton"]),
                        Partition::new(Some("cam"), &["cam"]),
                    ],
                )
                .unwrap();
            if let Some((from, until)) = fault {
                let mut fs = FaultSchedule::new();
                fs.host_crash(cam, from, until);
                net.set_fault_schedule(fs);
            }
            (net, hub, hub_db, fed)
        };

        let sql = "SELECT K, N FROM T";
        let (mut net, hub, mut hub_db, fed) = build(None);
        let baseline = fed.query(&mut net, hub, &mut hub_db, None, sql, &[]).unwrap();

        let (mut net2, hub2, mut hub_db2, fed2) =
            build(Some((outage_start, outage_start + outage_len)));
        let out = fed2
            .query(&mut net2, hub2, &mut hub_db2, None, sql, &[])
            .unwrap();

        prop_assert_eq!(&out.rs.rows, &baseline.rs.rows);
        prop_assert!(out.explain.skipped.is_empty());
        prop_assert!(out.explain.stale.is_empty());
    }
}
