//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

proptest! {
    // --- crypto ---

    #[test]
    fn base64_round_trips(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let enc = easia_crypto::base64_encode(&data);
        prop_assert_eq!(easia_crypto::base64_decode(&enc).unwrap(), data);
    }

    #[test]
    fn sha256_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in 0usize..2048,
    ) {
        let split = split.min(data.len());
        let mut h = easia_crypto::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finish(), easia_crypto::sha256(&data));
    }

    #[test]
    fn tokens_never_verify_for_other_files(
        path_a in "[a-z]{1,12}", path_b in "[a-z]{1,12}", now in 0u64..100_000,
    ) {
        use easia_crypto::token::{TokenIssuer, TokenScope};
        prop_assume!(path_a != path_b);
        let iss = TokenIssuer::new(b"k", 1000);
        let pa = format!("/{path_a}");
        let pb = format!("/{path_b}");
        let tok = iss.issue(TokenScope::Read, "h", &pa, now);
        let ok_a = iss.verify(&tok, TokenScope::Read, "h", &pa, now).is_ok();
        let ok_b = iss.verify(&tok, TokenScope::Read, "h", &pb, now).is_ok();
        prop_assert!(ok_a);
        prop_assert!(!ok_b);
    }

    #[test]
    fn tokens_never_verify_after_expiry(
        ttl in 1u64..5_000,
        issue_at in 0u64..50_000,
        wait in 0u64..20_000,
        skew in 0u64..100,
        crash_mid in any::<bool>(),
    ) {
        use easia_crypto::token::{TokenIssuer, TokenScope};
        use easia_datalink::ArchiveClock;
        use easia_fs::{FileContent, FileServer, LinkOptions};

        let clock = ArchiveClock::new();
        clock.set(issue_at);
        let issuer = TokenIssuer::new(b"prop-secret", ttl);
        let mut server = FileServer::new("fs1", issuer.clone());
        server.ingest("/d/f.dat", FileContent::Bytes(vec![1, 2, 3]));
        server
            .recover_link("/d/f.dat", LinkOptions::default(), ("T".into(), "C".into()))
            .unwrap();
        let token = issuer.issue(TokenScope::Read, "fs1", "/d/f.dat", clock.now());

        // Time passes; the server may crash and restart in between.
        // Neither changes token arithmetic: expiry rides in the token,
        // the committed link survives the crash.
        clock.advance(wait);
        if crash_mid {
            server.crash();
            server.restart();
        }
        // The verifying clock may run ahead of the issuing one (skew).
        let now = clock.now() + skew;
        let expired = now > issue_at + ttl;
        let direct = issuer.verify(&token, TokenScope::Read, "fs1", "/d/f.dat", now);
        prop_assert_eq!(direct.is_ok(), !expired);
        let served = server.read_file(&format!("/d/{token};f.dat"), now);
        prop_assert_eq!(served.is_ok(), !expired);
    }

    // --- packaging ---

    #[test]
    fn lzss_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = easia_pack::lzss::compress(&data);
        prop_assert_eq!(easia_pack::lzss::decompress(&c).unwrap(), data);
    }

    #[test]
    fn tar_round_trips(
        files in proptest::collection::vec(
            ("[a-z][a-z0-9_/]{0,30}[a-z0-9]", proptest::collection::vec(any::<u8>(), 0..600)),
            0..6,
        )
    ) {
        // Deduplicate names (tar allows dupes but our comparison doesn't).
        let mut seen = std::collections::BTreeSet::new();
        let entries: Vec<easia_pack::TarEntry> = files
            .into_iter()
            .filter(|(n, _)| seen.insert(n.clone()) && !n.contains("//"))
            .map(|(n, d)| easia_pack::TarEntry::file(n, d))
            .collect();
        let tarball = easia_pack::tar::write(&entries).unwrap();
        prop_assert_eq!(easia_pack::tar::read(&tarball).unwrap(), entries);
    }

    // --- XML ---

    #[test]
    fn xml_escaping_round_trips(text in "[ -~]{0,120}") {
        let doc = format!("<a v=\"{}\">{}</a>",
            easia_xml::escape_attr(&text), easia_xml::escape_text(&text));
        let tree = easia_xml::parse_document(&doc).unwrap();
        prop_assert_eq!(tree.attr("v").unwrap(), text.as_str());
        prop_assert_eq!(tree.text(), text);
    }

    // --- database ---

    #[test]
    fn row_codec_round_trips(
        ints in proptest::collection::vec(any::<i64>(), 0..8),
        text in "[a-zA-Z0-9 ]{0,40}",
    ) {
        use easia_db::Value;
        let mut row: Vec<Value> = ints.into_iter().map(Value::Int).collect();
        row.push(Value::Str(text));
        row.push(Value::Null);
        let mut buf = Vec::new();
        easia_db::value::encode_row(&row, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(easia_db::value::decode_row(&buf, &mut pos).unwrap(), row);
    }

    #[test]
    fn btree_agrees_with_btreemap(ops in proptest::collection::vec(
        (any::<bool>(), 0i64..200, 0u64..50), 1..300,
    )) {
        use easia_db::index::BPlusTree;
        use easia_db::storage::RowId;
        use easia_db::Value;
        let mut tree = BPlusTree::new();
        let mut model: std::collections::BTreeMap<i64, std::collections::BTreeSet<u64>> =
            Default::default();
        for (insert, key, rid) in ops {
            if insert {
                tree.insert(vec![Value::Int(key)], RowId(rid));
                model.entry(key).or_default().insert(rid);
            } else {
                let removed = tree.remove(&[Value::Int(key)], RowId(rid));
                let model_removed = model.get_mut(&key).is_some_and(|s| s.remove(&rid));
                if let Some(s) = model.get(&key) {
                    if s.is_empty() {
                        model.remove(&key);
                    }
                }
                prop_assert_eq!(removed, model_removed);
            }
        }
        // Full agreement on every key.
        for (key, rids) in &model {
            let mut got = tree.get(&[Value::Int(*key)]);
            got.sort();
            let want: Vec<RowId> = rids.iter().map(|r| RowId(*r)).collect();
            prop_assert_eq!(got, want);
        }
        let total: usize = model.values().map(|s| s.len()).sum();
        prop_assert_eq!(tree.len(), total);
    }

    #[test]
    fn sql_like_matches_reference(s in "[ab%_]{0,8}", p in "[ab%_]{0,6}") {
        // Reference implementation: regex-free recursive matcher built
        // independently via dynamic programming.
        fn reference(s: &[u8], p: &[u8]) -> bool {
            let (n, m) = (s.len(), p.len());
            let mut dp = vec![vec![false; m + 1]; n + 1];
            dp[0][0] = true;
            for j in 1..=m {
                dp[0][j] = p[j - 1] == b'%' && dp[0][j - 1];
            }
            for i in 1..=n {
                for j in 1..=m {
                    dp[i][j] = match p[j - 1] {
                        b'%' => dp[i][j - 1] || dp[i - 1][j],
                        b'_' => dp[i - 1][j - 1],
                        c => s[i - 1] == c && dp[i - 1][j - 1],
                    };
                }
            }
            dp[n][m]
        }
        prop_assert_eq!(
            easia_db::expr::like_match(&s, &p),
            reference(s.as_bytes(), p.as_bytes())
        );
    }

    // --- EDF / slicing ---

    #[test]
    fn edf_round_trips(
        dims in (1u64..6, 1u64..6, 1u64..6),
        seed in any::<u64>(),
    ) {
        use easia_sci::edf::EdfFile;
        let (nx, ny, nz) = dims;
        let n = (nx * ny * nz) as usize;
        let data: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 + seed as f64 % 7.0).collect();
        let f = EdfFile::new()
            .with_attr("t", "1")
            .with_dataset("d", &[nx, ny, nz], data);
        let bytes = f.encode();
        prop_assert_eq!(EdfFile::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn slices_agree_with_full_read(
        nx in 2usize..6, ny in 2usize..6, nz in 2usize..6,
        xi in 0usize..6, yi in 0usize..6, zi in 0usize..6,
    ) {
        use easia_sci::edf::EdfFile;
        use easia_sci::slice::{extract_plane, Axis};
        let n = nx * ny * nz;
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let bytes = EdfFile::new()
            .with_dataset("d", &[nx as u64, ny as u64, nz as u64], data.clone())
            .encode();
        let at = |x: usize, y: usize, z: usize| data[x + nx * (y + ny * z)];
        if zi < nz {
            let p = extract_plane(&bytes, "d", Axis::Z, zi).unwrap();
            for y in 0..ny {
                for x in 0..nx {
                    prop_assert_eq!(p.values[y * nx + x], at(x, y, zi));
                }
            }
        }
        if yi < ny {
            let p = extract_plane(&bytes, "d", Axis::Y, yi).unwrap();
            for z in 0..nz {
                for x in 0..nx {
                    prop_assert_eq!(p.values[z * nx + x], at(x, yi, z));
                }
            }
        }
        if xi < nx {
            let p = extract_plane(&bytes, "d", Axis::X, xi).unwrap();
            for z in 0..nz {
                for y in 0..ny {
                    prop_assert_eq!(p.values[z * ny + y], at(xi, y, z));
                }
            }
        }
    }

    // --- WAN conservation ---

    #[test]
    fn transfers_conserve_time(bw_mbit in 1u32..100, mb in 1u32..200) {
        use easia_net::{LinkSpec, Mbit, SimNet};
        let mut net = SimNet::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        net.connect(a, b, LinkSpec::symmetric(Mbit(f64::from(bw_mbit)), 0.0));
        let bytes = f64::from(mb) * 1e6;
        let id = net.transfer(a, b, bytes);
        net.run_until_idle();
        let rec = net.transfer_record(id).unwrap();
        let expect = bytes * 8.0 / Mbit(f64::from(bw_mbit));
        prop_assert!((rec.duration() - expect).abs() < 1e-6);
    }

    // --- EPC sandbox never panics, always terminates ---

    #[test]
    fn vm_terminates_on_arbitrary_programs(src in "[A-Z0-9 \n]{0,200}") {
        use easia_ops::vm::{Limits, Vm};
        // Most inputs fail to assemble; those that do must terminate
        // within the budget without panicking.
        if let Ok(program) = easia_ops::assemble(&src) {
            let mut vm = Vm::new(Limits {
                max_instructions: 100_000,
                max_memory: 1 << 16,
                max_output: 1 << 16,
                max_stack: 1024,
            });
            let _ = vm.run(&program, b"input", &["p".to_string()]);
        }
    }
}
