//! Admission-control properties: for *any* arrival/service sequence the
//! bounded virtual-time queue is deterministic (same inputs, same
//! admit/shed decisions, bit for bit), FIFO (virtual starts never
//! reorder), and bounded (the waiting queue never exceeds the
//! configured depth, and every shed carries a usable `Retry-After`).

use easia_core::{Admission, AdmissionConfig, AdmissionController, ClassLimits, RouteClass};
use easia_obs::Registry;
use proptest::prelude::*;

/// Replay one generated workload through a fresh controller, returning
/// the decision log plus the invariant trail (starts and max depth).
fn replay(
    limits: ClassLimits,
    enabled: bool,
    steps: &[(u8, u16, u16)],
) -> (String, Vec<f64>, usize) {
    let r = Registry::default();
    let cfg = AdmissionConfig {
        enabled,
        ..AdmissionConfig::default()
    }
    .with_class(RouteClass::Scan, limits);
    let mut c = AdmissionController::new(cfg, &r);
    let mut log = String::new();
    let mut starts = Vec::new();
    let mut max_depth = 0;
    let mut t = 0.0;
    for (class_draw, gap_ms, service_ms) in steps {
        t += f64::from(*gap_ms) / 1000.0;
        let class = RouteClass::ALL[usize::from(*class_draw) % 3];
        match c.admit(class, t) {
            Admission::Admitted(tk) => {
                log.push_str(&format!("A{}:{:.6};", class.label(), tk.queue_delay()));
                if class == RouteClass::Scan {
                    starts.push(tk.start);
                }
                c.complete(tk, f64::from(*service_ms) / 1000.0);
            }
            Admission::Shed { retry_after_secs } => {
                log.push_str(&format!("S{}:{retry_after_secs};", class.label()));
                assert!(retry_after_secs >= 1, "Retry-After floors at one second");
            }
        }
        max_depth = max_depth.max(c.depth(class));
    }
    (log, starts, max_depth)
}

proptest! {
    #[test]
    fn admission_decisions_are_deterministic_fifo_and_bounded(
        concurrency in 1usize..4,
        depth in 0usize..6,
        enabled in any::<bool>(),
        steps in proptest::collection::vec(
            (any::<u8>(), 0u16..4000, 0u16..8000),
            1..120,
        ),
    ) {
        let limits = ClassLimits::new(concurrency, depth).with_floor(0.002);
        let (log_a, starts, max_depth) = replay(limits, enabled, &steps);
        let (log_b, _, _) = replay(limits, enabled, &steps);
        // Same inputs, same decisions — the load harness's digest rests
        // on this holding for every workload, not just the seeded ones.
        prop_assert_eq!(log_a, log_b);
        // FIFO: virtual service starts never reorder behind arrivals.
        for w in starts.windows(2) {
            prop_assert!(w[0] <= w[1], "starts reorder: {} then {}", w[0], w[1]);
        }
        // Bounded: with shedding on, the scan queue never exceeds its
        // configured depth (the whole point of admission control).
        if enabled {
            prop_assert!(
                max_depth <= depth,
                "queue depth {max_depth} exceeds configured bound {depth}"
            );
        }
    }

    #[test]
    fn disabled_controller_admits_everything(
        steps in proptest::collection::vec(
            (any::<u8>(), 0u16..500, 0u16..8000),
            1..80,
        ),
    ) {
        let limits = ClassLimits::new(1, 0).with_floor(1.0);
        let (log, _, _) = replay(limits, false, &steps);
        prop_assert!(!log.contains('S'), "ablation must never shed: {log}");
        prop_assert_eq!(log.matches('A').count(), steps.len());
    }
}
