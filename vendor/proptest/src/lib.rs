//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of proptest it actually uses: the
//! `proptest!` macro, `prop_assert*` / `prop_assume!`, `any::<T>()`,
//! integer/float range strategies, a small character-class regex string
//! strategy, tuple strategies, and `proptest::collection::vec`.
//!
//! Differences from upstream, by design:
//! - Cases are generated from a seed derived from the test name, so a
//!   failure reproduces on every run (no `PROPTEST_CASES` env, no
//!   persisted regressions file).
//! - No shrinking: a failing case reports its values but is not
//!   minimised.
//! - The string strategy accepts only character classes (`[a-z0-9_]`,
//!   ranges, `\n`/`\t`/`\\` escapes), literal characters, and `{m}` /
//!   `{m,n}` counted repetition — exactly the grammar the tests use.

pub mod test_runner {
    /// Cases generated per property.
    pub const CASES: u64 = 128;

    /// Failure raised by `prop_assert*`, carried out of the test closure.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 generator driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed directly.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seed from a test name (FNV-1a), so each property gets a
        /// distinct but stable stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for one property argument.
    pub trait Strategy {
        /// The value type produced.
        type Value;
        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end - self.start) as u64;
                    self.start + rng.below(width) as $t
                }
            }
        )*};
    }

    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + u * (self.end - self.start)
        }
    }

    /// Character-class "regex" string strategy (see crate docs for the
    /// supported grammar).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (chars, lo, hi) in &atoms {
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(chars[rng.below(chars.len() as u64) as usize]);
                }
            }
            out
        }
    }

    /// One pattern atom: candidate chars plus a repetition range.
    type Atom = (Vec<char>, usize, usize);

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_pattern(pat: &str) -> Vec<Atom> {
        let chars: Vec<char> = pat.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = if chars[i] == '[' {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    // Range `x-y` when '-' sits between two class chars.
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = if chars[i + 2] == '\\' {
                            i += 1;
                            unescape(chars[i + 2])
                        } else {
                            chars[i + 2]
                        };
                        assert!(c <= hi, "inverted class range in {pat:?}");
                        for v in (c as u32)..=(hi as u32) {
                            set.push(char::from_u32(v).unwrap());
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pat:?}");
                i += 1; // consume ']'
                set
            } else {
                let c = if chars[i] == '\\' {
                    i += 1;
                    unescape(chars[i])
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };
            assert!(!set.is_empty(), "empty character class in {pat:?}");
            // Optional counted repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
                    None => {
                        let n: usize = body.trim().parse().unwrap();
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "inverted quantifier in {pat:?}");
            atoms.push((set, lo, hi));
        }
        atoms
    }

    macro_rules! impl_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A);
    impl_tuple!(A, B);
    impl_tuple!(A, B, C);
    impl_tuple!(A, B, C, D);
    impl_tuple!(A, B, C, D, E);
    impl_tuple!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Produce one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy wrapper returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Canonical strategy for `T` (`any::<u8>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a `Vec` with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(elem, min..max)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(width) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define deterministic property tests. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running [`test_runner::CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..$crate::test_runner::CASES {
                    let ($($arg,)+) =
                        ($($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+);
                    let __run = || -> Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if let Err(e) = __run() {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            $crate::test_runner::CASES,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {x}")`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __l, __r
            )));
        }
    }};
}

/// `prop_assert_ne!(left, right)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                __l
            )));
        }
    }};
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn string_strategy_honours_classes() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let s = "[a-z]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn string_strategy_concatenates_atoms() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_/]{0,30}[a-z0-9]".generate(&mut rng);
            assert!(s.len() >= 2);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn string_strategy_handles_escapes_and_space_ranges() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..200 {
            let s = "[A-Z0-9 \\n]{0,200}".generate(&mut rng);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == ' ' || c == '\n'));
            let t = "[ -~]{0,120}".generate(&mut rng);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = TestRng::from_seed(6);
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 0..512).generate(&mut rng);
            assert!(v.len() < 512);
        }
    }

    proptest! {
        #[test]
        fn selfcheck_ranges(a in 0usize..10, b in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn selfcheck_assume(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
