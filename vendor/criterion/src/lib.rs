//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the criterion 0.5 API its benches use:
//! `Criterion::benchmark_group`, `bench_function`, `throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple calibrated
//! fixed-duration loop printing mean wall-clock time per iteration —
//! no statistics, outlier analysis, or HTML reports.

use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation; stored for the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("name", param)`.
    pub fn new<P: std::fmt::Display>(name: &str, param: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Identifier consisting of the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(param: P) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly for a short calibrated window and record the
    /// mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count that takes ~50 ms.
        let mut n = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(50) || n >= 1 << 24 {
                self.iters = n;
                self.elapsed = dt;
                return;
            }
            n = if dt.is_zero() {
                n * 16
            } else {
                let scale = 0.06 / dt.as_secs_f64().max(1e-9);
                ((n as f64 * scale).ceil() as u64).clamp(n + 1, n * 32)
            };
        }
    }
}

/// Benchmark registry; prints one line per benchmark.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&id.into().id, None, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.throughput, f);
        self
    }

    /// Run one benchmark receiving an explicit input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no iterations recorded)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => format!("  {:>10.1} elem/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!(
        "{name:<40} {:>12} / iter  ({} iters){rate}",
        format_duration(per_iter),
        b.iters
    );
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        g.bench_function(BenchmarkId::new("add", "id"), |b| b.iter(|| 1u64 + 1));
        g.finish();
    }
}
