//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the rand 0.8 API it actually
//! uses: `StdRng::seed_from_u64` plus `Rng::gen_range` / `Rng::gen`.
//! The generator is SplitMix64 — statistically fine for synthetic data
//! and, crucially, deterministic in the seed, which the experiments
//! depend on. It makes no attempt to match upstream rand's streams.

use std::ops::Range;

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods on any RNG (subset of rand's `Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0..1.0).to_bits(),
                b.gen_range(0.0..1.0).to_bits()
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(3u64..9);
            assert!((3..9).contains(&i));
            let s = r.gen_range(0usize..5);
            assert!(s < 5);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
