//! Code upload: write EPC assembly, upload it, and have it executed in
//! the sandbox against an archived dataset — the paper's "post-
//! processing via uploaded Java code" flow, including what happens when
//! the code misbehaves.
//!
//! Run with: `cargo run --example code_upload`

use easia_core::{turbulence, Archive};
use easia_web::auth::Role;
use std::collections::BTreeMap;

/// Uploaded analysis: report the dataset size and write a small marker
/// file. The contract from the paper: the code receives the dataset
/// filename as its first parameter and writes outputs to relative names.
const ANALYSIS: &str = r#"
; my-analysis.epc: report size and leave a marker
    INPUTSIZE
    PRINTNUM
    DATA 0 "marker.txt"
    PUSH 0
    PUSH 10
    OUTOPEN
    DATA 64 "analysed!"
    PUSH 64
    PUSH 9
    OUTWRITE
    HALT
"#;

fn main() {
    let mut archive = Archive::builder()
        .file_server("fs1.soton.example", easia_core::paper_link_spec())
        .build();
    turbulence::install_schema(&mut archive).expect("schema");
    turbulence::seed_demo_data(&mut archive, 1, 16).expect("demo data");

    let rs = archive
        .db
        .execute("SELECT DLURLCOMPLETE(download_result) FROM result_file LIMIT 1")
        .expect("dataset");
    let dataset = rs.rows[0][0].to_string();
    println!("Target dataset: {dataset}\n");

    // Guests are refused before any code runs.
    let denied = archive.upload_and_run(
        "RESULT_FILE",
        "DOWNLOAD_RESULT",
        &dataset,
        ANALYSIS.as_bytes().to_vec(),
        "main.epc",
        &BTreeMap::new(),
        Role::Guest,
        "sess-guest",
    );
    println!("As guest:      {}", denied.unwrap_err());

    // Researchers may upload.
    let out = archive
        .upload_and_run(
            "RESULT_FILE",
            "DOWNLOAD_RESULT",
            &dataset,
            ANALYSIS.as_bytes().to_vec(),
            "main.epc",
            &BTreeMap::new(),
            Role::Researcher,
            "sess-mark",
        )
        .expect("upload runs");
    println!(
        "As researcher: ran {} instructions in the sandbox",
        out.instructions
    );
    println!("  stdout: {}", out.stdout.trim());
    for (name, data) in &out.outputs {
        println!("  output {name}: {:?}", String::from_utf8_lossy(data));
    }

    // Hostile code: an infinite loop. The instruction budget kills it.
    archive.op_limits = easia_ops::vm::Limits {
        max_instructions: 100_000,
        ..Default::default()
    };
    let err = archive
        .upload_and_run(
            "RESULT_FILE",
            "DOWNLOAD_RESULT",
            &dataset,
            b"spin: JMP spin".to_vec(),
            "main.epc",
            &BTreeMap::new(),
            Role::Researcher,
            "sess-mark",
        )
        .unwrap_err();
    println!("\nHostile upload (infinite loop): {err}");

    // Escaping code: absolute output paths are rejected by the sandbox.
    let escape = "DATA 0 \"/etc/passwd\"\nPUSH 0\nPUSH 11\nOUTOPEN\nHALT";
    let err = archive
        .upload_and_run(
            "RESULT_FILE",
            "DOWNLOAD_RESULT",
            &dataset,
            escape.as_bytes().to_vec(),
            "main.epc",
            &BTreeMap::new(),
            Role::Researcher,
            "sess-mark",
        )
        .unwrap_err();
    println!("Escaping upload (absolute path): {err}");
}
