//! Graceful degradation over real HTTP: one of the two file servers is
//! crashed before the portal starts, so downloads from it answer
//! `503 Service Unavailable` with a `Retry-After` hint while the other
//! server keeps serving. Restart the daemon (here: after the first 503)
//! and the same URL serves again.
//!
//! Run with: `cargo run --example fault_tolerance` and try the printed
//! download URLs, e.g.:
//!   curl -i -b EASIASESSION=... 'http://127.0.0.1:8809/download?url=...'

use easia_core::{turbulence, Archive, WebApp};
use easia_web::server::serve;

fn main() {
    let max_requests: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50);
    let mut archive = Archive::builder()
        .file_server("fs1.soton.example", easia_core::paper_link_spec())
        .file_server("fs2.soton.example", easia_core::paper_link_spec())
        .build();
    turbulence::install_schema(&mut archive).expect("schema");
    turbulence::seed_demo_data(&mut archive, 2, 8).expect("demo data");

    // Kill the first file server's daemon: its datasets become
    // unavailable (503 + Retry-After) until it restarts.
    let fs1 = archive.server("fs1.soton.example").expect("fs1").1.clone();
    fs1.borrow_mut().crash();
    println!("fs1.soton.example is DOWN — its downloads degrade to 503.");

    let mut app = WebApp::new(archive);
    let addr = "127.0.0.1:8809";
    println!("EASIA portal on http://{addr}/  (guest/guest or admin/hpcc-admin)");
    println!("Serving at most {max_requests} requests, then exiting.");
    let mut handler = move |req| app.handle(req);
    serve(addr, &mut handler, Some(max_requests)).expect("server runs");
}
