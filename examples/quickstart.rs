//! Quickstart: build an archive, ingest a simulation, search it, follow
//! a DATALINK, and run a server-side operation.
//!
//! Run with: `cargo run --example quickstart`

use easia_core::{turbulence, Archive};
use easia_web::auth::Role;
use std::collections::BTreeMap;

fn main() {
    // 1. An archive with one file server behind the paper's WAN profile.
    let mut archive = Archive::builder()
        .file_server("fs1.soton.example", easia_core::paper_link_spec())
        .build();
    turbulence::install_schema(&mut archive).expect("schema");
    turbulence::seed_demo_data(&mut archive, 2, 16).expect("demo data");

    // 2. Search the metadata with plain SQL (the QBE form generates
    //    exactly this kind of statement).
    let rs = archive
        .db
        .execute(
            "SELECT s.title, a.name, COUNT(*) AS files \
             FROM simulation s \
             JOIN author a ON s.author_key = a.author_key \
             JOIN result_file r ON r.simulation_key = s.simulation_key \
             GROUP BY s.title, a.name ORDER BY s.title",
        )
        .expect("query");
    println!("Simulations in the archive:");
    for row in &rs.rows {
        println!("  {} by {} — {} result file(s)", row[0], row[1], row[2]);
    }

    // 3. SELECT a DATALINK: the value comes back with an access token.
    let rs = archive
        .db
        .execute("SELECT download_result, DLURLCOMPLETE(download_result) FROM result_file LIMIT 1")
        .expect("datalink select");
    let tokenized = rs.rows[0][0].to_string();
    let stored = rs.rows[0][1].to_string();
    println!("\nDATALINK (stored):    {stored}");
    println!("DATALINK (tokenized): {tokenized}");

    // 4. Download it over the simulated WAN.
    let (bytes, secs) = archive
        .download(&tokenized, Role::Researcher)
        .expect("download");
    println!(
        "Downloaded {} bytes in {:.0} simulated seconds.",
        bytes.len(),
        secs
    );

    // 5. Or don't: run the GetImage operation next to the data instead.
    let mut params = BTreeMap::new();
    params.insert("slice".to_string(), "z0".to_string());
    params.insert("type".to_string(), "u".to_string());
    let out = archive
        .run_operation(
            "RESULT_FILE",
            "GetImage",
            &stored,
            &params,
            Role::Guest,
            "quickstart",
        )
        .expect("operation");
    println!(
        "\nGetImage shipped {} bytes in {:.1} simulated seconds ({}x less than the download):",
        out.shipped_bytes,
        out.elapsed_secs,
        (bytes.len() as f64 / out.shipped_bytes) as u64
    );
    for (name, data) in &out.outputs {
        println!(
            "  {name}: {} bytes ({})",
            data.len(),
            &String::from_utf8_lossy(&data[..2])
        );
    }
    println!("\n{}", out.stdout.trim());
}
