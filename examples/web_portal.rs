//! The generated web interface, served over real HTTP.
//!
//! Run with: `cargo run --example web_portal` and open
//! http://127.0.0.1:8808/ — log in as `guest`/`guest` (restricted) or
//! `admin`/`hpcc-admin`. By default the server exits after 200 requests;
//! pass a request budget as the first argument to change that.

use easia_core::{turbulence, Archive, WebApp};
use easia_web::server::serve;

fn main() {
    let max_requests: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    let mut archive = Archive::builder()
        .file_server("fs1.soton.example", easia_core::paper_link_spec())
        .file_server("fs2.soton.example", easia_core::paper_link_spec())
        // A foreign archive hub on the federation page; its circuit
        // breaker and replica-cache metrics render on /metrics.
        .federated_site("hub.cam.example", easia_core::paper_link_spec())
        .replica_cache(300.0, 10_000)
        .build();
    turbulence::install_schema(&mut archive).expect("schema");
    turbulence::seed_demo_data(&mut archive, 3, 16).expect("demo data");
    let mut app = WebApp::new(archive);
    let addr = "127.0.0.1:8808";
    println!("EASIA portal on http://{addr}/  (guest/guest or admin/hpcc-admin)");
    println!("Serving at most {max_requests} requests, then exiting.");
    let mut handler = move |req| app.handle(req);
    serve(addr, &mut handler, Some(max_requests)).expect("server runs");
}
