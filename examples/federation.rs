//! Federation: several file servers at different sites, data archived
//! where it was generated, one database of record, and the bandwidth
//! argument measured live.
//!
//! Run with: `cargo run --example federation`

use easia_core::{turbulence, Archive};
use easia_net::format_hms;
use easia_web::auth::Role;
use std::collections::BTreeMap;

fn main() {
    // Three sites: two remote HPC centres on slow WAN links and one
    // local server at the hub.
    let mut archive = Archive::builder()
        .file_server("fs.manchester.example", easia_core::paper_link_spec())
        .file_server("fs.edinburgh.example", easia_core::paper_link_spec())
        .file_server("fs.soton.example", easia_core::lan_link_spec())
        .build();
    turbulence::install_schema(&mut archive).expect("schema");
    turbulence::seed_demo_data(&mut archive, 3, 16).expect("demo data");

    // Where did everything land?
    let rs = archive
        .db
        .execute(
            "SELECT DLURLSERVER(download_result), COUNT(*), SUM(file_size) \
             FROM result_file GROUP BY DLURLSERVER(download_result) \
             ORDER BY DLURLSERVER(download_result)",
        )
        .expect("group by server");
    println!("Archive contents by file server (single database of record):");
    for row in &rs.rows {
        println!("  {}: {} file(s), {} bytes", row[0], row[1], row[2]);
    }

    // A big synthetic file archived at Manchester *without* crossing the
    // WAN (written where it was generated)...
    let url = turbulence::ingest_synthetic(
        &mut archive,
        "fs.manchester.example",
        "S01",
        99,
        544_000_000,
        7,
    )
    .expect("synthetic ingest");
    println!("\nArchived 544 MB at Manchester in place: {url}");

    // ...and the two ways to use it from the hub:
    let rs = archive
        .db
        .execute_with_params(
            "SELECT download_result FROM result_file WHERE timestep = 99 AND simulation_key = ?",
            &[easia_db::Value::Str("S01".into())],
        )
        .expect("select");
    let tokenized = rs.rows[0][0].to_string();
    let (_, secs) = archive
        .download(&tokenized, Role::Researcher)
        .expect("download");
    println!("  full download over the WAN: {}", format_hms(secs));

    let mut params = BTreeMap::new();
    params.insert("n".to_string(), "4096".to_string());
    // `head` is registered but not in the XUIS; attach it ad hoc.
    let mut doc = archive.xuis.clone();
    easia_xuis::customize::Customizer::new(&mut doc)
        .add_operation(
            "RESULT_FILE",
            "DOWNLOAD_RESULT",
            easia_xuis::Operation {
                name: "Head".into(),
                op_type: "NATIVE".into(),
                filename: "head".into(),
                format: "raw".into(),
                guest_access: true,
                conditions: vec![],
                location: easia_xuis::Location::Url("native:head".into()),
                description: None,
                parameters: vec![easia_xuis::Param {
                    description: "bytes".into(),
                    widget: easia_xuis::Widget::Text {
                        name: "n".into(),
                        default: "1024".into(),
                    },
                }],
            },
        )
        .expect("attach");
    archive.set_xuis(doc);
    let stored = url;
    let out = archive
        .run_operation("RESULT_FILE", "Head", &stored, &params, Role::Guest, "fed")
        .expect("head runs");
    println!(
        "  server-side head(4 KB):     {} ({}x reduction)",
        format_hms(out.elapsed_secs),
        (544_000_000.0 / out.shipped_bytes) as u64
    );

    // Referential integrity across the federation: Manchester cannot
    // delete a linked file, even though it is Manchester's disk.
    let server = archive.server("fs.manchester.example").unwrap().1.clone();
    let err = server
        .borrow_mut()
        .delete_file("/data/S01/t099.edf")
        .unwrap_err();
    println!("\nManchester tries to delete the linked file: {err}");
}
