//! Schema-driven web interface components.
//!
//! "Users are presented with a dynamically generated HTML query form
//! that provides a search interface akin to Query by Example (QBE)...
//! The system can be accessed by users of the scientific archive, who
//! may have little or no database or Web development expertise."
//!
//! This crate holds the reusable pieces; `easia-core` assembles them
//! into the full application (routes wired to the archive):
//!
//! * [`http`] — request/response model with query/form parsing,
//! * [`html`] — minimal HTML generation with correct escaping,
//! * [`auth`] — users, password hashes, sessions, and the paper's role
//!   policy (guests "cannot download datasets, cannot upload
//!   post-processing codes, are limited in the types of operations they
//!   can run"),
//! * [`qbe`] — the generated query form and its translation to SQL,
//! * [`browse`] — result-table rendering with primary-key browsing,
//!   foreign-key browsing, BLOB/CLOB size links and DATALINK hyperlinks,
//! * [`server`] — a tiny real HTTP/1.1 server over `std::net` for the
//!   runnable demos.

pub mod auth;
pub mod browse;
pub mod fed;
pub mod html;
pub mod http;
pub mod qbe;
pub mod server;

pub use auth::{Role, SessionStore, User, UserStore};
pub use http::{Method, Request, Response};
pub use qbe::{build_query, render_query_form, QbeError};
