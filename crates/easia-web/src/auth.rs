//! Users, sessions, and the role policy from the paper's demo slide:
//! guest users "cannot download datasets, cannot upload post-processing
//! codes, [and] are limited in the types of operations they can run".

use easia_crypto::hmac::hmac_sha256;
use easia_crypto::sha256::{hex, sha256};
use std::collections::BTreeMap;

/// User roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Full control incl. user management.
    Admin,
    /// Registered consortium member.
    Researcher,
    /// The `guest/guest` demo account.
    Guest,
}

impl Role {
    /// May download archived datasets (follow DATALINK tokens).
    pub fn can_download(&self) -> bool {
        !matches!(self, Role::Guest)
    }

    /// May upload post-processing code for server-side execution.
    pub fn can_upload_code(&self) -> bool {
        !matches!(self, Role::Guest)
    }

    /// May run operations not flagged `guest.access="true"`.
    pub fn can_run_restricted_ops(&self) -> bool {
        !matches!(self, Role::Guest)
    }

    /// May manage user accounts.
    pub fn can_manage_users(&self) -> bool {
        matches!(self, Role::Admin)
    }
}

/// A registered user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct User {
    /// Login name.
    pub username: String,
    /// Hex SHA-256 of `username:password` (salted by the username).
    pub password_hash: String,
    /// Role.
    pub role: Role,
}

fn hash_password(username: &str, password: &str) -> String {
    hex(&sha256(format!("{username}:{password}").as_bytes()))
}

/// The user registry (the paper's "web-based user management").
#[derive(Debug, Default)]
pub struct UserStore {
    users: BTreeMap<String, User>,
}

impl UserStore {
    /// Empty store.
    pub fn new() -> Self {
        UserStore::default()
    }

    /// Store preloaded with the demo's `guest/guest` account and an
    /// `admin` account.
    pub fn with_defaults() -> Self {
        let mut s = UserStore::new();
        s.add_user("guest", "guest", Role::Guest);
        s.add_user("admin", "hpcc-admin", Role::Admin);
        s
    }

    /// Create or replace a user.
    pub fn add_user(&mut self, username: &str, password: &str, role: Role) {
        self.users.insert(
            username.to_string(),
            User {
                username: username.to_string(),
                password_hash: hash_password(username, password),
                role,
            },
        );
    }

    /// Remove a user; returns true if present.
    pub fn remove_user(&mut self, username: &str) -> bool {
        self.users.remove(username).is_some()
    }

    /// Verify credentials; returns the user on success.
    pub fn authenticate(&self, username: &str, password: &str) -> Option<&User> {
        let u = self.users.get(username)?;
        if u.password_hash == hash_password(username, password) {
            Some(u)
        } else {
            None
        }
    }

    /// Look up a user by name.
    pub fn get(&self, username: &str) -> Option<&User> {
        self.users.get(username)
    }

    /// All users, sorted by name.
    pub fn list(&self) -> impl Iterator<Item = &User> {
        self.users.values()
    }
}

/// Active sessions: opaque token → (username, role, created_at).
///
/// Tokens are HMACs of a per-store key and a counter, so they are
/// unguessable without being random (keeping the archive fully
/// deterministic for experiments).
#[derive(Debug)]
pub struct SessionStore {
    key: Vec<u8>,
    counter: u64,
    sessions: BTreeMap<String, (String, Role, u64)>,
    /// Session lifetime in seconds of archive time.
    ttl_secs: u64,
}

impl SessionStore {
    /// New store with the given token key and session lifetime.
    pub fn new(key: &[u8], ttl_secs: u64) -> Self {
        SessionStore {
            key: key.to_vec(),
            counter: 0,
            sessions: BTreeMap::new(),
            ttl_secs,
        }
    }

    /// Open a session for a user at archive time `now`; returns the token.
    pub fn open(&mut self, user: &User, now: u64) -> String {
        self.counter += 1;
        let token = hex(&hmac_sha256(
            &self.key,
            format!("session:{}:{}", user.username, self.counter).as_bytes(),
        ))[..32]
            .to_string();
        self.sessions
            .insert(token.clone(), (user.username.clone(), user.role, now));
        token
    }

    /// Resolve a session token at archive time `now`.
    pub fn resolve(&self, token: &str, now: u64) -> Option<(&str, Role)> {
        let (user, role, created) = self.sessions.get(token)?;
        if now.saturating_sub(*created) > self.ttl_secs {
            return None;
        }
        Some((user.as_str(), *role))
    }

    /// Close a session.
    pub fn close(&mut self, token: &str) -> bool {
        self.sessions.remove(token).is_some()
    }

    /// Number of (not necessarily live) sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guest_policy_matches_demo_slide() {
        let g = Role::Guest;
        assert!(!g.can_download());
        assert!(!g.can_upload_code());
        assert!(!g.can_run_restricted_ops());
        let r = Role::Researcher;
        assert!(r.can_download() && r.can_upload_code() && r.can_run_restricted_ops());
        assert!(!r.can_manage_users());
        assert!(Role::Admin.can_manage_users());
    }

    #[test]
    fn default_accounts() {
        let s = UserStore::with_defaults();
        let guest = s.authenticate("guest", "guest").unwrap();
        assert_eq!(guest.role, Role::Guest);
        assert!(s.authenticate("guest", "wrong").is_none());
        assert!(s.authenticate("nobody", "x").is_none());
    }

    #[test]
    fn password_hashes_are_salted_by_username() {
        let mut s = UserStore::new();
        s.add_user("a", "pw", Role::Researcher);
        s.add_user("b", "pw", Role::Researcher);
        assert_ne!(
            s.get("a").unwrap().password_hash,
            s.get("b").unwrap().password_hash
        );
    }

    #[test]
    fn user_management() {
        let mut s = UserStore::with_defaults();
        s.add_user("mark", "secret", Role::Researcher);
        assert_eq!(s.list().count(), 3);
        assert!(s.remove_user("mark"));
        assert!(!s.remove_user("mark"));
    }

    #[test]
    fn sessions_lifecycle() {
        let users = UserStore::with_defaults();
        let mut sess = SessionStore::new(b"key", 3600);
        let u = users.get("admin").unwrap();
        let t = sess.open(u, 100);
        assert_eq!(sess.resolve(&t, 200), Some(("admin", Role::Admin)));
        // Expiry.
        assert_eq!(sess.resolve(&t, 100 + 3601), None);
        // Close.
        assert!(sess.close(&t));
        assert_eq!(sess.resolve(&t, 200), None);
    }

    #[test]
    fn tokens_unique() {
        let users = UserStore::with_defaults();
        let mut sess = SessionStore::new(b"key", 3600);
        let u = users.get("guest").unwrap();
        let a = sess.open(u, 0);
        let b = sess.open(u, 0);
        assert_ne!(a, b);
    }
}
