//! Result-table rendering with the paper's browsing hyperlinks.
//!
//! "Browsing is based on hypertext links in search results":
//! * **foreign-key browsing** — "selecting a link on an AUTHOR_KEY value
//!   will retrieve full details of the author",
//! * **primary-key browsing** — "SIMULATION_KEY links to three tables
//!   where it appears as a foreign key",
//! * **BLOB and CLOB** — "hypertext link displays size of object",
//! * **DATALINK** — "hypertext link ... contains an encrypted key,
//!   required to access the file from the remote file server",
//! * plus the operations column: "result table showing operations
//!   available for post-processing datasets".

use crate::html::{escape, format_size, link};
use crate::http::url_encode;
use easia_db::{ResultSet, Value};
use easia_xuis::{Operation, XuisDoc, XuisTable};

/// Everything the renderer needs besides the rows.
pub struct BrowseContext<'a> {
    /// The interface specification.
    pub xuis: &'a XuisDoc,
    /// Table the results came from.
    pub table: &'a str,
    /// Whether the viewer is a guest (downloads hidden, restricted
    /// operations filtered).
    pub is_guest: bool,
    /// Operations applicable per row, already filtered by conditions and
    /// guest policy (supplied by the ops catalog).
    pub row_operations: Vec<Vec<&'a Operation>>,
    /// File size lookup for DATALINK URLs (stored form).
    #[allow(clippy::type_complexity)]
    pub file_size: Option<&'a dyn Fn(&str) -> Option<u64>>,
}

/// Render a result set to an HTML table with browsing links.
pub fn render_results(ctx: &BrowseContext<'_>, rs: &ResultSet) -> String {
    let Some(xt) = ctx.xuis.table(ctx.table) else {
        return crate::html::table(
            &rs.columns,
            &rs.rows
                .iter()
                .map(|r| r.iter().map(|v| escape(&v.to_string())).collect())
                .collect::<Vec<_>>(),
        );
    };
    let mut headers: Vec<String> = rs
        .columns
        .iter()
        .map(|c| {
            xt.column(c)
                .map(|xc| xc.display_name().to_string())
                .unwrap_or_else(|| c.clone())
        })
        .collect();
    let has_ops = ctx.row_operations.iter().any(|ops| !ops.is_empty());
    if has_ops {
        headers.push("Operations".to_string());
    }
    let mut rows_html = Vec::with_capacity(rs.rows.len());
    for (ri, row) in rs.rows.iter().enumerate() {
        let mut cells = Vec::with_capacity(row.len() + 1);
        for (ci, v) in row.iter().enumerate() {
            cells.push(render_cell(ctx, xt, &rs.columns[ci], v, row, rs));
        }
        if has_ops {
            let ops = ctx.row_operations.get(ri).map(Vec::as_slice).unwrap_or(&[]);
            let links: Vec<String> = ops
                .iter()
                .map(|op| {
                    let dataset = primary_datalink(rs, row);
                    let href = format!(
                        "/op/{}/{}?dataset={}",
                        url_encode(ctx.table),
                        url_encode(&op.name),
                        url_encode(&dataset)
                    );
                    link(&href, &op.name)
                })
                .collect();
            cells.push(links.join(" | "));
        }
        rows_html.push(cells);
    }
    crate::html::table(&headers, &rows_html)
}

/// The row's first DATALINK value in its stored form, used as the
/// dataset identifier when invoking operations.
fn primary_datalink(rs: &ResultSet, row: &[Value]) -> String {
    for (i, v) in row.iter().enumerate() {
        let _ = i;
        if let Value::Datalink(url) = v {
            // Strip any access token: dataset identity is the stored URL.
            return strip_token(url);
        }
    }
    let _ = rs;
    String::new()
}

fn strip_token(url: &str) -> String {
    match url.rsplit_once('/') {
        Some((dir, file)) => match file.split_once(';') {
            Some((_token, real)) => format!("{dir}/{real}"),
            None => url.to_string(),
        },
        None => url.to_string(),
    }
}

fn render_cell(
    ctx: &BrowseContext<'_>,
    xt: &XuisTable,
    column: &str,
    v: &Value,
    row: &[Value],
    rs: &ResultSet,
) -> String {
    if v.is_null() {
        return "<i>null</i>".to_string();
    }
    let Some(xc) = xt.column(column) else {
        return escape(&v.to_string());
    };
    // DATALINK: download link (with token already spliced by the
    // database layer) labelled with the file size; guests see a
    // restriction notice instead — "guest users cannot download
    // datasets".
    if let Value::Datalink(url) = v {
        if ctx.is_guest {
            return format!("<i>download restricted ({})</i>", size_label(ctx, url));
        }
        return format!("<a href=\"{}\">{}</a>", escape(url), size_label(ctx, url));
    }
    // BLOB/CLOB: size link that rematerialises the object.
    if matches!(v, Value::Blob(_) | Value::Clob(_)) {
        let size = v.lob_size().unwrap_or(0) as u64;
        let key = pk_query(xt, rs, row);
        let href = format!(
            "/lob/{}/{}?{}",
            url_encode(&xt.name),
            url_encode(&xc.name),
            key
        );
        return link(&href, &format_size(size));
    }
    let text = v.to_string();
    // Foreign-key browsing.
    if let Some(fk) = &xc.fk {
        let label = subst_label(rs, row, &xc.name).unwrap_or_else(|| text.clone());
        let href = format!(
            "/browse/fk/{}?value={}",
            url_encode(&fk.tablecolumn),
            url_encode(&text)
        );
        return link(&href, &label);
    }
    // Primary-key browsing: one link per referencing table.
    if !xc.pk_refby.is_empty() {
        let mut parts = vec![escape(&text)];
        for target in &xc.pk_refby {
            let href = format!(
                "/browse/pk/{}?value={}",
                url_encode(target),
                url_encode(&text)
            );
            let tname = target.split('.').next().unwrap_or(target);
            parts.push(link(&href, &format!("→{tname}")));
        }
        return parts.join(" ");
    }
    escape(&text)
}

fn size_label(ctx: &BrowseContext<'_>, url: &str) -> String {
    let stored = strip_token(url);
    match ctx.file_size.and_then(|f| f(&stored)) {
        Some(n) => format_size(n),
        None => "download".to_string(),
    }
}

/// `NAME__SUBST` companion columns carry substitute display values (the
/// XUIS `substcolumn` feature); the query layer adds them via a join.
fn subst_label(rs: &ResultSet, row: &[Value], column: &str) -> Option<String> {
    let want = format!("{column}__SUBST");
    let idx = rs.columns.iter().position(|c| *c == want)?;
    match &row[idx] {
        Value::Null => None,
        v => Some(v.to_string()),
    }
}

/// Query string identifying this row by primary key, e.g.
/// `FILE_NAME=t000.edf&SIMULATION_KEY=S1`.
fn pk_query(xt: &XuisTable, rs: &ResultSet, row: &[Value]) -> String {
    let mut parts = Vec::new();
    for pk in &xt.primary_key {
        let col = pk.rsplit_once('.').map(|(_, c)| c).unwrap_or(pk);
        if let Some(i) = rs.columns.iter().position(|c| c == col) {
            parts.push(format!(
                "{}={}",
                url_encode(col),
                url_encode(&row[i].to_string())
            ));
        }
    }
    parts.join("&")
}

/// Hide `NAME__SUBST` helper columns from a rendered result set (the
/// caller renders from the original; this helps when echoing raw SQL
/// results).
pub fn visible_columns(rs: &ResultSet) -> Vec<usize> {
    rs.columns
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.ends_with("__SUBST"))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use easia_xuis::{FkSpec, XuisColumn};

    fn xuis() -> XuisDoc {
        let col = |name: &str, ty: &str| XuisColumn {
            name: name.into(),
            colid: format!("RESULT_FILE.{name}"),
            type_name: ty.into(),
            size: None,
            alias: None,
            hidden: false,
            pk_refby: vec![],
            fk: None,
            samples: vec![],
            operations: vec![],
            upload: None,
        };
        let mut file_name = col("FILE_NAME", "VARCHAR");
        file_name.pk_refby = vec!["VISUALISATION_FILE.FILE_NAME".into()];
        let mut sim_key = col("SIMULATION_KEY", "VARCHAR");
        sim_key.fk = Some(FkSpec {
            tablecolumn: "SIMULATION.SIMULATION_KEY".into(),
            substcolumn: None,
        });
        let notes = col("NOTES", "CLOB");
        let download = col("DOWNLOAD_RESULT", "DATALINK");
        XuisDoc {
            tables: vec![XuisTable {
                name: "RESULT_FILE".into(),
                primary_key: vec![
                    "RESULT_FILE.FILE_NAME".into(),
                    "RESULT_FILE.SIMULATION_KEY".into(),
                ],
                alias: None,
                hidden: false,
                columns: vec![file_name, sim_key, notes, download],
            }],
        }
    }

    fn results() -> ResultSet {
        ResultSet {
            columns: vec![
                "FILE_NAME".into(),
                "SIMULATION_KEY".into(),
                "NOTES".into(),
                "DOWNLOAD_RESULT".into(),
            ],
            rows: vec![vec![
                Value::Str("t000.edf".into()),
                Value::Str("S1".into()),
                Value::Clob("x".repeat(2048)),
                Value::Datalink("http://fs1/data/TOK123;t000.edf".into()),
            ]],
            affected: 0,
        }
    }

    fn ctx(doc: &XuisDoc, guest: bool) -> BrowseContext<'_> {
        BrowseContext {
            xuis: doc,
            table: "RESULT_FILE",
            is_guest: guest,
            row_operations: vec![vec![]],
            file_size: None,
        }
    }

    #[test]
    fn fk_browsing_link() {
        let doc = xuis();
        let html = render_results(&ctx(&doc, false), &results());
        assert!(
            html.contains("/browse/fk/SIMULATION.SIMULATION_KEY?value=S1"),
            "{html}"
        );
    }

    #[test]
    fn pk_browsing_links() {
        let doc = xuis();
        let html = render_results(&ctx(&doc, false), &results());
        assert!(
            html.contains("/browse/pk/VISUALISATION_FILE.FILE_NAME?value=t000.edf"),
            "{html}"
        );
        assert!(html.contains("→VISUALISATION_FILE"));
    }

    #[test]
    fn clob_size_link() {
        let doc = xuis();
        let html = render_results(&ctx(&doc, false), &results());
        assert!(html.contains("2.0 KB"), "{html}");
        assert!(
            html.contains("/lob/RESULT_FILE/NOTES?FILE_NAME=t000.edf&amp;SIMULATION_KEY=S1"),
            "{html}"
        );
    }

    #[test]
    fn datalink_link_with_token_and_size() {
        let doc = xuis();
        let sizes = |url: &str| {
            assert_eq!(url, "http://fs1/data/t000.edf", "token stripped for lookup");
            Some(85_000_000u64)
        };
        let c = BrowseContext {
            file_size: Some(&sizes),
            ..ctx(&doc, false)
        };
        let html = render_results(&c, &results());
        assert!(
            html.contains("href=\"http://fs1/data/TOK123;t000.edf\""),
            "{html}"
        );
        assert!(html.contains("85.0 MB"));
    }

    #[test]
    fn guests_cannot_download() {
        let doc = xuis();
        let html = render_results(&ctx(&doc, true), &results());
        assert!(!html.contains("href=\"http://fs1"), "{html}");
        assert!(html.contains("download restricted"));
    }

    #[test]
    fn operations_column() {
        let doc = xuis();
        let op = Operation {
            name: "GetImage".into(),
            op_type: "EPC".into(),
            filename: "g.epc".into(),
            format: "raw".into(),
            guest_access: true,
            conditions: vec![],
            location: easia_xuis::Location::Url("x".into()),
            description: None,
            parameters: vec![],
        };
        let c = BrowseContext {
            row_operations: vec![vec![&op]],
            ..ctx(&doc, false)
        };
        let html = render_results(&c, &results());
        assert!(html.contains("<th>Operations</th>"));
        assert!(
            html.contains("/op/RESULT_FILE/GetImage?dataset=http%3A%2F%2Ffs1%2Fdata%2Ft000.edf"),
            "dataset id is the stored (token-free) URL: {html}"
        );
    }

    #[test]
    fn null_rendering_and_unknown_table() {
        let doc = xuis();
        let mut rs = results();
        rs.rows[0][2] = Value::Null;
        let html = render_results(&ctx(&doc, false), &rs);
        assert!(html.contains("<i>null</i>"));
        // Unknown table: plain rendering, no panic.
        let c = BrowseContext {
            table: "NOPE",
            ..ctx(&doc, false)
        };
        let html = render_results(&c, &rs);
        assert!(html.contains("S1"));
    }

    #[test]
    fn subst_column_replaces_label() {
        let doc = xuis();
        let mut rs = results();
        rs.columns.push("SIMULATION_KEY__SUBST".into());
        rs.rows[0].push(Value::Str("Channel flow Re360".into()));
        let html = render_results(&ctx(&doc, false), &rs);
        assert!(html.contains(">Channel flow Re360</a>"), "{html}");
        assert_eq!(visible_columns(&rs), vec![0, 1, 2, 3]);
    }
}
