//! HTML fragments for federated query pages: the provenance notice
//! under transparently-federated result tables, the warning banner for
//! incomplete/degraded answers, and the `EXPLAIN FEDERATED` page body.

use crate::html::escape;
use easia_med::FedExplain;

/// Visible warning banner for a federated answer that is not a full,
/// live union: lists sites skipped under `Partial`/`Degraded` and
/// sites served from a stale replica. Empty when the answer is
/// complete and live, so callers can unconditionally prepend it.
pub fn federation_banner(explain: &FedExplain) -> String {
    if explain.skipped.is_empty() && explain.stale.is_empty() {
        return String::new();
    }
    let mut parts = Vec::new();
    if !explain.skipped.is_empty() {
        parts.push(format!(
            "results INCOMPLETE &mdash; skipped unavailable site(s): {}",
            escape(&explain.skipped.join(", "))
        ));
    }
    if !explain.stale.is_empty() {
        let stale: Vec<String> = explain
            .stale
            .iter()
            .map(|s| format!("{} (age {}s, {} rows)", escape(&s.site), s.age_secs, s.rows))
            .collect();
        parts.push(format!(
            "served STALE replica rows for: {}",
            stale.join(", ")
        ));
    }
    format!(
        "<div class=\"banner warning\">&#9888; Federated answer degraded: {}</div>",
        parts.join("; ")
    )
}

/// One-line annotation under a federated result page: where the rows
/// came from and — under the PARTIAL policy — which sites were skipped.
pub fn federation_notice(explain: &FedExplain) -> String {
    let mut n = format!(
        "<p class=\"federation\">federated over {} partition(s), {} row(s) shipped",
        explain.sites.len(),
        explain.rows_shipped()
    );
    if explain.prefetched {
        n.push_str(" &mdash; served from speculative prefetch");
    }
    if !explain.skipped.is_empty() {
        n.push_str(&format!(
            " &mdash; PARTIAL: skipped unavailable site(s) {}",
            escape(&explain.skipped.join(", "))
        ));
    }
    if !explain.stale.is_empty() {
        let sites: Vec<&str> = explain.stale.iter().map(|s| s.site.as_str()).collect();
        n.push_str(&format!(
            " &mdash; DEGRADED: stale replica rows for {}",
            escape(&sites.join(", "))
        ));
    }
    n.push_str("</p>");
    n
}

/// Body of the `EXPLAIN FEDERATED` page: the statement plus the
/// rendered per-site report.
pub fn explain_page_body(sql: &str, report: &str) -> String {
    format!(
        "<p><code>{}</code></p><pre>{}</pre>",
        escape(sql),
        escape(report)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use easia_med::{SiteExplain, StaleSite};

    fn explain_with_one_site() -> FedExplain {
        FedExplain {
            table: "SIM".into(),
            joins: vec![],
            sites: vec![SiteExplain {
                site: "cam".into(),
                rows_shipped: 3,
                bytes_wire: 99,
                ..SiteExplain::default()
            }],
            skipped: vec![],
            stale: vec![],
            prefetched: false,
            agg: None,
        }
    }

    #[test]
    fn notice_mentions_partitions_and_skips() {
        let mut ex = explain_with_one_site();
        let n = federation_notice(&ex);
        assert!(n.contains("1 partition(s)"));
        assert!(n.contains("3 row(s) shipped"));
        assert!(!n.contains("PARTIAL"));
        ex.skipped.push("edin<x>".into());
        let n = federation_notice(&ex);
        assert!(n.contains("PARTIAL"));
        assert!(n.contains("edin&lt;x&gt;"), "site names are escaped: {n}");
        ex.stale.push(StaleSite {
            site: "mcc".into(),
            age_secs: 30,
            rows: 2,
        });
        assert!(federation_notice(&ex).contains("DEGRADED: stale replica rows for mcc"));
    }

    #[test]
    fn banner_lists_skipped_and_stale_sites() {
        let mut ex = explain_with_one_site();
        assert_eq!(federation_banner(&ex), "", "complete answers get no banner");
        ex.skipped.push("edin<x>".into());
        ex.stale.push(StaleSite {
            site: "mcc".into(),
            age_secs: 90,
            rows: 12,
        });
        let b = federation_banner(&ex);
        assert!(b.contains("class=\"banner warning\""));
        assert!(b.contains("INCOMPLETE"));
        assert!(b.contains("edin&lt;x&gt;"), "escaped: {b}");
        assert!(b.contains("STALE"));
        assert!(b.contains("mcc (age 90s, 12 rows)"));
    }

    #[test]
    fn explain_body_escapes() {
        let b = explain_page_body("SELECT * FROM T WHERE A < ?", "site <local>");
        assert!(b.contains("A &lt; ?"));
        assert!(b.contains("site &lt;local&gt;"));
    }
}
