//! HTML fragments for federated query pages: the provenance notice
//! under transparently-federated result tables and the
//! `EXPLAIN FEDERATED` page body.

use crate::html::escape;
use easia_med::FedExplain;

/// One-line annotation under a federated result page: where the rows
/// came from and — under the PARTIAL policy — which sites were skipped.
pub fn federation_notice(explain: &FedExplain) -> String {
    let mut n = format!(
        "<p class=\"federation\">federated over {} partition(s), {} row(s) shipped",
        explain.sites.len(),
        explain.rows_shipped()
    );
    if !explain.skipped.is_empty() {
        n.push_str(&format!(
            " &mdash; PARTIAL: skipped unavailable site(s) {}",
            escape(&explain.skipped.join(", "))
        ));
    }
    n.push_str("</p>");
    n
}

/// Body of the `EXPLAIN FEDERATED` page: the statement plus the
/// rendered per-site report.
pub fn explain_page_body(sql: &str, report: &str) -> String {
    format!(
        "<p><code>{}</code></p><pre>{}</pre>",
        escape(sql),
        escape(report)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use easia_med::SiteExplain;

    #[test]
    fn notice_mentions_partitions_and_skips() {
        let mut ex = FedExplain {
            table: "SIM".into(),
            sites: vec![SiteExplain {
                site: "cam".into(),
                pruned: false,
                pushed_conjuncts: vec![],
                hub_conjuncts: vec![],
                est_rows: 0,
                rows_shipped: 3,
                bytes_wire: 99,
                order_limit_pushed: false,
            }],
            skipped: vec![],
        };
        let n = federation_notice(&ex);
        assert!(n.contains("1 partition(s)"));
        assert!(n.contains("3 row(s) shipped"));
        assert!(!n.contains("PARTIAL"));
        ex.skipped.push("edin<x>".into());
        let n = federation_notice(&ex);
        assert!(n.contains("PARTIAL"));
        assert!(n.contains("edin&lt;x&gt;"), "site names are escaped: {n}");
    }

    #[test]
    fn explain_body_escapes() {
        let b = explain_page_body("SELECT * FROM T WHERE A < ?", "site <local>");
        assert!(b.contains("A &lt; ?"));
        assert!(b.contains("site &lt;local&gt;"));
    }
}
