//! A tiny real HTTP/1.1 server over `std::net`, used by the runnable
//! demo example so the generated interface can be opened in a browser.
//! The simulation experiments never go through real sockets.

use crate::http::{parse_urlencoded, Method, Request, Response};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

/// Handle one ready-parsed request.
pub type Handler = dyn FnMut(Request) -> Response;

/// Serve `handler` on `addr` (e.g. `127.0.0.1:8080`). Each connection is
/// handled sequentially; returns only on listener failure. `max_requests`
/// (if given) stops the server after that many requests — handy in tests.
pub fn serve(addr: &str, handler: &mut Handler, max_requests: Option<u64>) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    let mut served = 0u64;
    for stream in listener.incoming() {
        let mut stream = stream?;
        if let Err(e) = handle_connection(&mut stream, handler) {
            // A malformed request shouldn't kill the server.
            let _ = write_response(&mut stream, &Response::error(400, &e.to_string()));
        }
        served += 1;
        if let Some(max) = max_requests {
            if served >= max {
                break;
            }
        }
    }
    Ok(())
}

fn handle_connection(stream: &mut TcpStream, handler: &mut Handler) -> std::io::Result<()> {
    let peer = stream.try_clone()?;
    let mut reader = BufReader::new(peer);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad method"))?;
    let target = parts
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad target"))?
        .to_string();

    // Headers.
    let mut content_length = 0usize;
    let mut session = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value.parse().unwrap_or(0);
            } else if name == "cookie" {
                for c in value.split(';') {
                    if let Some((k, v)) = c.trim().split_once('=') {
                        if k == "EASIASESSION" {
                            session = Some(v.to_string());
                        }
                    }
                }
            }
        }
    }
    // Body.
    let mut body = vec![0u8; content_length.min(1 << 20)];
    if !body.is_empty() {
        reader.read_exact(&mut body)?;
    }

    let mut request = Request::get(&target);
    request.method = method;
    request.session = session;
    if method == Method::Post {
        request.form = parse_urlencoded(&String::from_utf8_lossy(&body));
    }
    let response = handler(request);
    write_response(stream, &response)
}

fn write_response(stream: &mut TcpStream, r: &Response) -> std::io::Result<()> {
    let reason = match r.status {
        200 => "OK",
        302 => "Found",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        r.status,
        reason,
        r.content_type,
        r.body.len()
    );
    if let Some(loc) = &r.location {
        head.push_str(&format!("Location: {loc}\r\n"));
    }
    if let Some(sess) = &r.set_session {
        head.push_str(&format!("Set-Cookie: EASIASESSION={sess}; Path=/\r\n"));
    }
    if let Some(secs) = r.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&r.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream as Client;

    fn send(addr: &str, raw: &str) -> String {
        let mut c = Client::connect(addr).unwrap();
        c.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        c.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_get_and_post() {
        // Bind on an ephemeral port, then serve exactly two requests in
        // a thread.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener); // free it for serve()
        let addr2 = addr.clone();
        let t = std::thread::spawn(move || {
            let mut handler = |req: Request| -> Response {
                match (req.method, req.path.as_str()) {
                    (Method::Get, "/hello") => {
                        Response::html(format!("hi {}", req.param("name").unwrap_or("?")))
                    }
                    (Method::Post, "/echo") => {
                        Response::text(req.param("msg").unwrap_or("").to_string())
                            .with_session("S123")
                    }
                    _ => Response::error(404, "nope"),
                }
            };
            serve(&addr2, &mut handler, Some(3)).unwrap();
        });
        // Give the server a moment to bind.
        std::thread::sleep(std::time::Duration::from_millis(100));

        let out = send(&addr, "GET /hello?name=easia HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(out.contains("hi easia"));

        let body = "msg=archive+works";
        let out = send(
            &addr,
            &format!(
                "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            ),
        );
        assert!(out.contains("archive works"), "{out}");
        assert!(out.contains("Set-Cookie: EASIASESSION=S123"));

        let out = send(&addr, "GET /missing HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 404"), "{out}");
        t.join().unwrap();
    }
}
