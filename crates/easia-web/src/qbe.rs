//! The generated QBE query form and its translation to SQL.
//!
//! "On the query form, the user selects the fields to be returned. Also
//! for each field present, restrictions including wildcards may be put
//! on the values of the data. Other features to aid direct searching -
//! restrictions and sample values from drop-down lists - choices of
//! attribute names, relation names and operators."
//!
//! Form field convention for column `C`: `ret_C` (return checkbox),
//! `op_C` (operator), `val_C` (restriction value). The translation
//! produces parameterised SQL — form values never enter the SQL text.

use crate::html::escape;
use easia_db::Value;
use easia_xuis::XuisTable;
use std::collections::BTreeMap;

/// Operators offered in the form's drop-down.
pub const OPERATORS: [&str; 7] = ["EQ", "NE", "LT", "LE", "GT", "GE", "LIKE"];

/// Errors translating a form submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QbeError {
    /// Unknown operator token.
    BadOperator(String),
    /// Value not parseable for the column's type.
    BadValue {
        /// Column name.
        column: String,
        /// Offending text.
        value: String,
    },
    /// No such column in the table spec.
    UnknownColumn(String),
}

impl std::fmt::Display for QbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QbeError::BadOperator(o) => write!(f, "unknown operator {o:?}"),
            QbeError::BadValue { column, value } => {
                write!(f, "value {value:?} is not valid for column {column}")
            }
            QbeError::UnknownColumn(c) => write!(f, "unknown column {c}"),
        }
    }
}

impl std::error::Error for QbeError {}

/// Render the query form for a table, with operator drop-downs and the
/// XUIS sample values as suggestion lists.
pub fn render_query_form(table: &XuisTable) -> String {
    let mut out = format!(
        "<form method=\"post\" action=\"/query/{}\"><table>\
         <tr><th>Return</th><th>Field</th><th>Operator</th><th>Restriction</th><th>Samples</th></tr>",
        escape(&table.name)
    );
    for col in table.visible_columns() {
        let ops: String = OPERATORS
            .iter()
            .map(|o| format!("<option value=\"{o}\">{}</option>", op_symbol(o)))
            .collect();
        let datalist_id = format!("samples_{}", col.name);
        let datalist: String = if col.samples.is_empty() {
            String::new()
        } else {
            let opts: String = col
                .samples
                .iter()
                .map(|s| format!("<option value=\"{}\"/>", escape(s)))
                .collect();
            format!("<datalist id=\"{datalist_id}\">{opts}</datalist>")
        };
        let samples_label = if col.samples.is_empty() {
            String::new()
        } else {
            escape(&col.samples.join(", "))
        };
        out.push_str(&format!(
            "<tr><td><input type=\"checkbox\" name=\"ret_{n}\" checked=\"checked\"/></td>\
             <td>{label}</td>\
             <td><select name=\"op_{n}\"><option value=\"\"></option>{ops}</select></td>\
             <td><input type=\"text\" name=\"val_{n}\" list=\"{datalist_id}\"/>{datalist}</td>\
             <td>{samples_label}</td></tr>",
            n = escape(&col.name),
            label = escape(col.display_name()),
        ));
    }
    out.push_str(
        "</table><p><input type=\"submit\" value=\"Search\"/> \
         <input type=\"submit\" name=\"all\" value=\"All data\"/></p></form>",
    );
    out
}

fn op_symbol(op: &str) -> &'static str {
    match op {
        "EQ" => "=",
        "NE" => "&lt;&gt;",
        "LT" => "&lt;",
        "LE" => "&lt;=",
        "GT" => "&gt;",
        "GE" => "&gt;=",
        "LIKE" => "LIKE",
        _ => "?",
    }
}

fn sql_op(op: &str) -> Option<&'static str> {
    Some(match op {
        "EQ" => "=",
        "NE" => "<>",
        "LT" => "<",
        "LE" => "<=",
        "GT" => ">",
        "GE" => ">=",
        "LIKE" => "LIKE",
        _ => return None,
    })
}

/// Translate a form submission to `(sql, params)`.
///
/// * columns with `ret_C` present are returned (all columns if none),
/// * columns with a non-empty `val_C` contribute a WHERE conjunct using
///   `op_C` (default `EQ`; `LIKE` if the value contains wildcards),
/// * numeric columns get their values parsed, so type errors surface as
///   [`QbeError::BadValue`] rather than SQL failures.
pub fn build_query(
    table: &XuisTable,
    form: &BTreeMap<String, String>,
) -> Result<(String, Vec<Value>), QbeError> {
    let mut returned: Vec<&str> = Vec::new();
    let mut conjuncts: Vec<String> = Vec::new();
    let mut params: Vec<Value> = Vec::new();
    let all = form.contains_key("all");
    for col in &table.columns {
        if col.hidden {
            continue;
        }
        if form.contains_key(&format!("ret_{}", col.name)) {
            returned.push(&col.name);
        }
        let val = form
            .get(&format!("val_{}", col.name))
            .map(String::as_str)
            .unwrap_or("")
            .trim();
        if val.is_empty() || all {
            continue;
        }
        let op_token = form
            .get(&format!("op_{}", col.name))
            .map(String::as_str)
            .unwrap_or("");
        let op_token = if op_token.is_empty() {
            // Default: wildcards imply LIKE, otherwise equality.
            if val.contains('%') || val.contains('_') {
                "LIKE"
            } else {
                "EQ"
            }
        } else {
            op_token
        };
        let op = sql_op(op_token).ok_or_else(|| QbeError::BadOperator(op_token.to_string()))?;
        let param = typed_value(col, val)?;
        conjuncts.push(format!("{} {} ?", col.name, op));
        params.push(param);
    }
    let select_list = if returned.is_empty() || returned.len() == table.columns.len() {
        "*".to_string()
    } else {
        returned.join(", ")
    };
    let mut sql = format!("SELECT {select_list} FROM {}", table.name);
    if !conjuncts.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conjuncts.join(" AND "));
    }
    // Stable presentation order.
    if let Some(pk) = table.primary_key.first() {
        if let Some((_, col)) = pk.rsplit_once('.') {
            sql.push_str(&format!(" ORDER BY {col}"));
        }
    }
    Ok((sql, params))
}

fn typed_value(col: &easia_xuis::XuisColumn, text: &str) -> Result<Value, QbeError> {
    match col.type_name.as_str() {
        "INTEGER" | "TIMESTAMP" => {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| QbeError::BadValue {
                    column: col.name.clone(),
                    value: text.to_string(),
                })
        }
        "DOUBLE" => text
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|_| QbeError::BadValue {
                column: col.name.clone(),
                value: text.to_string(),
            }),
        "BOOLEAN" => match text.to_ascii_lowercase().as_str() {
            "true" | "1" | "yes" => Ok(Value::Bool(true)),
            "false" | "0" | "no" => Ok(Value::Bool(false)),
            _ => Err(QbeError::BadValue {
                column: col.name.clone(),
                value: text.to_string(),
            }),
        },
        _ => Ok(Value::Str(text.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easia_xuis::{XuisColumn, XuisTable};

    fn table() -> XuisTable {
        let col = |name: &str, ty: &str, size: Option<usize>| XuisColumn {
            name: name.into(),
            colid: format!("SIMULATION.{name}"),
            type_name: ty.into(),
            size,
            alias: None,
            hidden: false,
            pk_refby: vec![],
            fk: None,
            samples: if name == "TITLE" {
                vec!["Channel flow".into()]
            } else {
                vec![]
            },
            operations: vec![],
            upload: None,
        };
        XuisTable {
            name: "SIMULATION".into(),
            primary_key: vec!["SIMULATION.SIMULATION_KEY".into()],
            alias: None,
            hidden: false,
            columns: vec![
                col("SIMULATION_KEY", "VARCHAR", Some(30)),
                col("TITLE", "VARCHAR", Some(200)),
                col("GRID_SIZE", "INTEGER", None),
            ],
        }
    }

    fn form(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn form_renders_fields_operators_samples() {
        let html = render_query_form(&table());
        assert!(html.contains("name=\"ret_TITLE\""));
        assert!(html.contains("name=\"op_GRID_SIZE\""));
        assert!(html.contains("name=\"val_SIMULATION_KEY\""));
        assert!(html.contains("Channel flow"), "sample values shown");
        assert!(html.contains("LIKE"));
        assert!(html.contains("All data"));
    }

    #[test]
    fn all_columns_when_everything_checked() {
        let f = form(&[
            ("ret_SIMULATION_KEY", "on"),
            ("ret_TITLE", "on"),
            ("ret_GRID_SIZE", "on"),
        ]);
        let (sql, params) = build_query(&table(), &f).unwrap();
        assert_eq!(sql, "SELECT * FROM SIMULATION ORDER BY SIMULATION_KEY");
        assert!(params.is_empty());
    }

    #[test]
    fn projection_subset() {
        let f = form(&[("ret_TITLE", "on")]);
        let (sql, _) = build_query(&table(), &f).unwrap();
        assert!(sql.starts_with("SELECT TITLE FROM SIMULATION"));
    }

    #[test]
    fn restrictions_and_params() {
        let f = form(&[
            ("ret_TITLE", "on"),
            ("op_TITLE", "LIKE"),
            ("val_TITLE", "%flow%"),
            ("op_GRID_SIZE", "GE"),
            ("val_GRID_SIZE", "256"),
        ]);
        let (sql, params) = build_query(&table(), &f).unwrap();
        assert!(sql.contains("TITLE LIKE ?"));
        assert!(sql.contains("GRID_SIZE >= ?"));
        assert!(sql.contains(" AND "));
        assert_eq!(params, vec![Value::Str("%flow%".into()), Value::Int(256)]);
    }

    #[test]
    fn default_operator_infers_like_for_wildcards() {
        let f = form(&[("val_TITLE", "Chan%")]);
        let (sql, _) = build_query(&table(), &f).unwrap();
        assert!(sql.contains("TITLE LIKE ?"), "{sql}");
        let f = form(&[("val_TITLE", "Channel flow")]);
        let (sql, _) = build_query(&table(), &f).unwrap();
        assert!(sql.contains("TITLE = ?"), "{sql}");
    }

    #[test]
    fn all_data_ignores_restrictions() {
        let f = form(&[("all", "All data"), ("val_TITLE", "x")]);
        let (sql, params) = build_query(&table(), &f).unwrap();
        assert!(!sql.contains("WHERE"));
        assert!(params.is_empty());
    }

    #[test]
    fn typed_value_errors() {
        let f = form(&[("val_GRID_SIZE", "not-a-number")]);
        assert!(matches!(
            build_query(&table(), &f).unwrap_err(),
            QbeError::BadValue { .. }
        ));
        let f = form(&[("op_TITLE", "FROB"), ("val_TITLE", "x")]);
        assert!(matches!(
            build_query(&table(), &f).unwrap_err(),
            QbeError::BadOperator(_)
        ));
    }

    #[test]
    fn sql_injection_is_inert() {
        // Malicious text ends up as a parameter, never in the SQL text.
        let f = form(&[("val_TITLE", "'; DROP TABLE SIMULATION; --")]);
        let (sql, params) = build_query(&table(), &f).unwrap();
        assert!(!sql.contains("DROP"));
        assert_eq!(params[0], Value::Str("'; DROP TABLE SIMULATION; --".into()));
    }

    #[test]
    fn hidden_columns_excluded() {
        let mut t = table();
        t.columns[1].hidden = true;
        let html = render_query_form(&t);
        assert!(!html.contains("ret_TITLE"));
        let f = form(&[("ret_TITLE", "on"), ("val_TITLE", "x")]);
        let (sql, params) = build_query(&t, &f).unwrap();
        assert!(!sql.contains("TITLE ="), "{sql}");
        assert!(params.is_empty());
    }
}
