//! The generated QBE query form and its translation to SQL.
//!
//! "On the query form, the user selects the fields to be returned. Also
//! for each field present, restrictions including wildcards may be put
//! on the values of the data. Other features to aid direct searching -
//! restrictions and sample values from drop-down lists - choices of
//! attribute names, relation names and operators."
//!
//! Form field convention for column `C`: `ret_C` (return checkbox),
//! `op_C` (operator), `val_C` (restriction value). The translation
//! produces parameterised SQL — form values never enter the SQL text.

use crate::html::escape;
use easia_db::Value;
use easia_xuis::XuisTable;
use std::collections::BTreeMap;

/// Operators offered in the form's drop-down.
pub const OPERATORS: [&str; 7] = ["EQ", "NE", "LT", "LE", "GT", "GE", "LIKE"];

/// Errors translating a form submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QbeError {
    /// Unknown operator token.
    BadOperator(String),
    /// Value not parseable for the column's type.
    BadValue {
        /// Column name.
        column: String,
        /// Offending text.
        value: String,
    },
    /// No such column in the table spec.
    UnknownColumn(String),
}

impl std::fmt::Display for QbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QbeError::BadOperator(o) => write!(f, "unknown operator {o:?}"),
            QbeError::BadValue { column, value } => {
                write!(f, "value {value:?} is not valid for column {column}")
            }
            QbeError::UnknownColumn(c) => write!(f, "unknown column {c}"),
        }
    }
}

impl std::error::Error for QbeError {}

/// Render the query form for a table, with operator drop-downs and the
/// XUIS sample values as suggestion lists.
pub fn render_query_form(table: &XuisTable) -> String {
    let mut out = format!(
        "<form method=\"post\" action=\"/query/{}\"><table>\
         <tr><th>Return</th><th>Field</th><th>Operator</th><th>Restriction</th><th>Samples</th></tr>",
        escape(&table.name)
    );
    for col in table.visible_columns() {
        let ops: String = OPERATORS
            .iter()
            .map(|o| format!("<option value=\"{o}\">{}</option>", op_symbol(o)))
            .collect();
        let datalist_id = format!("samples_{}", col.name);
        let datalist: String = if col.samples.is_empty() {
            String::new()
        } else {
            let opts: String = col
                .samples
                .iter()
                .map(|s| format!("<option value=\"{}\"/>", escape(s)))
                .collect();
            format!("<datalist id=\"{datalist_id}\">{opts}</datalist>")
        };
        let samples_label = if col.samples.is_empty() {
            String::new()
        } else {
            escape(&col.samples.join(", "))
        };
        out.push_str(&format!(
            "<tr><td><input type=\"checkbox\" name=\"ret_{n}\" checked=\"checked\"/></td>\
             <td>{label}</td>\
             <td><select name=\"op_{n}\"><option value=\"\"></option>{ops}</select></td>\
             <td><input type=\"text\" name=\"val_{n}\" list=\"{datalist_id}\"/>{datalist}</td>\
             <td>{samples_label}</td></tr>",
            n = escape(&col.name),
            label = escape(col.display_name()),
        ));
    }
    out.push_str(
        "</table><p><input type=\"submit\" value=\"Search\"/> \
         <input type=\"submit\" name=\"all\" value=\"All data\"/></p></form>",
    );
    out
}

fn op_symbol(op: &str) -> &'static str {
    match op {
        "EQ" => "=",
        "NE" => "&lt;&gt;",
        "LT" => "&lt;",
        "LE" => "&lt;=",
        "GT" => "&gt;",
        "GE" => "&gt;=",
        "LIKE" => "LIKE",
        _ => "?",
    }
}

fn sql_op(op: &str) -> Option<&'static str> {
    Some(match op {
        "EQ" => "=",
        "NE" => "<>",
        "LT" => "<",
        "LE" => "<=",
        "GT" => ">",
        "GE" => ">=",
        "LIKE" => "LIKE",
        _ => return None,
    })
}

/// Translate a form submission to `(sql, params)`.
///
/// * columns with `ret_C` present are returned (all columns if none),
/// * columns with a non-empty `val_C` contribute a WHERE conjunct using
///   `op_C` (default `EQ`; `LIKE` if the value contains wildcards),
/// * numeric columns get their values parsed, so type errors surface as
///   [`QbeError::BadValue`] rather than SQL failures.
pub fn build_query(
    table: &XuisTable,
    form: &BTreeMap<String, String>,
) -> Result<(String, Vec<Value>), QbeError> {
    let mut returned: Vec<&str> = Vec::new();
    let mut conjuncts: Vec<String> = Vec::new();
    let mut params: Vec<Value> = Vec::new();
    let all = form.contains_key("all");
    for col in &table.columns {
        if col.hidden {
            continue;
        }
        if form.contains_key(&format!("ret_{}", col.name)) {
            returned.push(&col.name);
        }
        let val = form
            .get(&format!("val_{}", col.name))
            .map(String::as_str)
            .unwrap_or("")
            .trim();
        if val.is_empty() || all {
            continue;
        }
        let op_token = form
            .get(&format!("op_{}", col.name))
            .map(String::as_str)
            .unwrap_or("");
        let op_token = if op_token.is_empty() {
            // Default: wildcards imply LIKE, otherwise equality.
            if val.contains('%') || val.contains('_') {
                "LIKE"
            } else {
                "EQ"
            }
        } else {
            op_token
        };
        let op = sql_op(op_token).ok_or_else(|| QbeError::BadOperator(op_token.to_string()))?;
        let param = typed_value(col, val)?;
        conjuncts.push(format!("{} {} ?", col.name, op));
        params.push(param);
    }
    let select_list = if returned.is_empty() || returned.len() == table.columns.len() {
        "*".to_string()
    } else {
        returned.join(", ")
    };
    let mut sql = format!("SELECT {select_list} FROM {}", table.name);
    if !conjuncts.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conjuncts.join(" AND "));
    }
    // Stable presentation order.
    if let Some(pk) = table.primary_key.first() {
        if let Some((_, col)) = pk.rsplit_once('.') {
            sql.push_str(&format!(" ORDER BY {col}"));
        }
    }
    Ok((sql, params))
}

/// FK columns of `table` that configure a substitute display column:
/// `(column, referenced_table, referenced_column, substitute_column)`.
pub fn fk_substitutes(table: &XuisTable) -> Vec<(String, String, String, String)> {
    let mut out = Vec::new();
    for col in &table.columns {
        let Some(fk) = &col.fk else { continue };
        let Some(subst) = &fk.substcolumn else {
            continue;
        };
        let Some((ref_table, ref_col)) = fk.tablecolumn.rsplit_once('.') else {
            continue;
        };
        let Some((_, subst_col)) = subst.rsplit_once('.') else {
            continue;
        };
        out.push((
            col.name.clone(),
            ref_table.to_string(),
            ref_col.to_string(),
            subst_col.to_string(),
        ));
    }
    out
}

/// Every table a QBE/browse query for `table` touches: the table
/// itself plus each FK-substitute referenced table. The caller routes
/// the query through the federation when any of them is federated.
pub fn join_tables(table: &XuisTable) -> Vec<String> {
    let mut out = vec![table.name.clone()];
    for (_, ref_table, _, _) in fk_substitutes(table) {
        if !out.contains(&ref_table) {
            out.push(ref_table);
        }
    }
    out
}

/// Project and join the FK substitutes onto a base select: appends
/// `SUB{i}.{subst} AS {col}__SUBST` items and the matching
/// `LEFT JOIN {ref_table} SUB{i} ON T.{col} = SUB{i}.{ref_col}` legs
/// for every substitute whose FK column the query returns.
fn push_subst_joins(
    table: &XuisTable,
    returned: &[&str],
    select_list: &mut Vec<String>,
    joins: &mut String,
) {
    for (i, (col, ref_table, ref_col, subst_col)) in fk_substitutes(table).iter().enumerate() {
        if !returned.is_empty() && !returned.contains(&col.as_str()) {
            continue;
        }
        select_list.push(format!("SUB{i}.{subst_col} AS {col}__SUBST"));
        joins.push_str(&format!(
            " LEFT JOIN {ref_table} SUB{i} ON T.{col} = SUB{i}.{ref_col}"
        ));
    }
}

/// Like [`build_query`], but FK columns with a substitute display
/// column LEFT JOIN their referenced table and project the substitute
/// as `{col}__SUBST`, so the human-readable value arrives with the
/// same statement — executed locally or federated — instead of a
/// hub-only post-pass lookup. Tables without substitutes degenerate to
/// the single-table shape of [`build_query`].
pub fn build_join_query(
    table: &XuisTable,
    form: &BTreeMap<String, String>,
) -> Result<(String, Vec<Value>), QbeError> {
    if fk_substitutes(table).is_empty() {
        return build_query(table, form);
    }
    let mut returned: Vec<&str> = Vec::new();
    let mut conjuncts: Vec<String> = Vec::new();
    let mut params: Vec<Value> = Vec::new();
    let all = form.contains_key("all");
    for col in &table.columns {
        if col.hidden {
            continue;
        }
        if form.contains_key(&format!("ret_{}", col.name)) {
            returned.push(&col.name);
        }
        let val = form
            .get(&format!("val_{}", col.name))
            .map(String::as_str)
            .unwrap_or("")
            .trim();
        if val.is_empty() || all {
            continue;
        }
        let op_token = form
            .get(&format!("op_{}", col.name))
            .map(String::as_str)
            .unwrap_or("");
        let op_token = if op_token.is_empty() {
            if val.contains('%') || val.contains('_') {
                "LIKE"
            } else {
                "EQ"
            }
        } else {
            op_token
        };
        let op = sql_op(op_token).ok_or_else(|| QbeError::BadOperator(op_token.to_string()))?;
        let param = typed_value(col, val)?;
        conjuncts.push(format!("T.{} {} ?", col.name, op));
        params.push(param);
    }
    if returned.len() == table.columns.len() {
        returned.clear(); // everything checked == everything returned
    }
    let mut select_list = if returned.is_empty() {
        vec!["T.*".to_string()]
    } else {
        returned.iter().map(|c| format!("T.{c}")).collect()
    };
    let mut joins = String::new();
    push_subst_joins(table, &returned, &mut select_list, &mut joins);
    let mut sql = format!(
        "SELECT {} FROM {} T{joins}",
        select_list.join(", "),
        table.name
    );
    if !conjuncts.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conjuncts.join(" AND "));
    }
    if let Some(pk) = table.primary_key.first() {
        if let Some((_, col)) = pk.rsplit_once('.') {
            sql.push_str(&format!(" ORDER BY T.{col}"));
        }
    }
    Ok((sql, params))
}

/// The browse-hyperlink query (`WHERE {column} = ?`) with the same
/// FK-substitute joins as [`build_join_query`]. Tables without
/// substitutes keep the plain single-table shape.
pub fn build_browse_query(table: &XuisTable, column: &str) -> String {
    if fk_substitutes(table).is_empty() {
        return format!("SELECT * FROM {} WHERE {column} = ?", table.name);
    }
    let mut select_list = vec!["T.*".to_string()];
    let mut joins = String::new();
    push_subst_joins(table, &[], &mut select_list, &mut joins);
    format!(
        "SELECT {} FROM {} T{joins} WHERE T.{column} = ?",
        select_list.join(", "),
        table.name
    )
}

fn typed_value(col: &easia_xuis::XuisColumn, text: &str) -> Result<Value, QbeError> {
    match col.type_name.as_str() {
        "INTEGER" | "TIMESTAMP" => {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| QbeError::BadValue {
                    column: col.name.clone(),
                    value: text.to_string(),
                })
        }
        "DOUBLE" => text
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|_| QbeError::BadValue {
                column: col.name.clone(),
                value: text.to_string(),
            }),
        "BOOLEAN" => match text.to_ascii_lowercase().as_str() {
            "true" | "1" | "yes" => Ok(Value::Bool(true)),
            "false" | "0" | "no" => Ok(Value::Bool(false)),
            _ => Err(QbeError::BadValue {
                column: col.name.clone(),
                value: text.to_string(),
            }),
        },
        _ => Ok(Value::Str(text.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easia_xuis::{XuisColumn, XuisTable};

    fn table() -> XuisTable {
        let col = |name: &str, ty: &str, size: Option<usize>| XuisColumn {
            name: name.into(),
            colid: format!("SIMULATION.{name}"),
            type_name: ty.into(),
            size,
            alias: None,
            hidden: false,
            pk_refby: vec![],
            fk: None,
            samples: if name == "TITLE" {
                vec!["Channel flow".into()]
            } else {
                vec![]
            },
            operations: vec![],
            upload: None,
        };
        XuisTable {
            name: "SIMULATION".into(),
            primary_key: vec!["SIMULATION.SIMULATION_KEY".into()],
            alias: None,
            hidden: false,
            columns: vec![
                col("SIMULATION_KEY", "VARCHAR", Some(30)),
                col("TITLE", "VARCHAR", Some(200)),
                col("GRID_SIZE", "INTEGER", None),
            ],
        }
    }

    fn form(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn form_renders_fields_operators_samples() {
        let html = render_query_form(&table());
        assert!(html.contains("name=\"ret_TITLE\""));
        assert!(html.contains("name=\"op_GRID_SIZE\""));
        assert!(html.contains("name=\"val_SIMULATION_KEY\""));
        assert!(html.contains("Channel flow"), "sample values shown");
        assert!(html.contains("LIKE"));
        assert!(html.contains("All data"));
    }

    #[test]
    fn all_columns_when_everything_checked() {
        let f = form(&[
            ("ret_SIMULATION_KEY", "on"),
            ("ret_TITLE", "on"),
            ("ret_GRID_SIZE", "on"),
        ]);
        let (sql, params) = build_query(&table(), &f).unwrap();
        assert_eq!(sql, "SELECT * FROM SIMULATION ORDER BY SIMULATION_KEY");
        assert!(params.is_empty());
    }

    #[test]
    fn projection_subset() {
        let f = form(&[("ret_TITLE", "on")]);
        let (sql, _) = build_query(&table(), &f).unwrap();
        assert!(sql.starts_with("SELECT TITLE FROM SIMULATION"));
    }

    #[test]
    fn restrictions_and_params() {
        let f = form(&[
            ("ret_TITLE", "on"),
            ("op_TITLE", "LIKE"),
            ("val_TITLE", "%flow%"),
            ("op_GRID_SIZE", "GE"),
            ("val_GRID_SIZE", "256"),
        ]);
        let (sql, params) = build_query(&table(), &f).unwrap();
        assert!(sql.contains("TITLE LIKE ?"));
        assert!(sql.contains("GRID_SIZE >= ?"));
        assert!(sql.contains(" AND "));
        assert_eq!(params, vec![Value::Str("%flow%".into()), Value::Int(256)]);
    }

    #[test]
    fn default_operator_infers_like_for_wildcards() {
        let f = form(&[("val_TITLE", "Chan%")]);
        let (sql, _) = build_query(&table(), &f).unwrap();
        assert!(sql.contains("TITLE LIKE ?"), "{sql}");
        let f = form(&[("val_TITLE", "Channel flow")]);
        let (sql, _) = build_query(&table(), &f).unwrap();
        assert!(sql.contains("TITLE = ?"), "{sql}");
    }

    #[test]
    fn all_data_ignores_restrictions() {
        let f = form(&[("all", "All data"), ("val_TITLE", "x")]);
        let (sql, params) = build_query(&table(), &f).unwrap();
        assert!(!sql.contains("WHERE"));
        assert!(params.is_empty());
    }

    #[test]
    fn typed_value_errors() {
        let f = form(&[("val_GRID_SIZE", "not-a-number")]);
        assert!(matches!(
            build_query(&table(), &f).unwrap_err(),
            QbeError::BadValue { .. }
        ));
        let f = form(&[("op_TITLE", "FROB"), ("val_TITLE", "x")]);
        assert!(matches!(
            build_query(&table(), &f).unwrap_err(),
            QbeError::BadOperator(_)
        ));
    }

    #[test]
    fn sql_injection_is_inert() {
        // Malicious text ends up as a parameter, never in the SQL text.
        let f = form(&[("val_TITLE", "'; DROP TABLE SIMULATION; --")]);
        let (sql, params) = build_query(&table(), &f).unwrap();
        assert!(!sql.contains("DROP"));
        assert_eq!(params[0], Value::Str("'; DROP TABLE SIMULATION; --".into()));
    }

    /// A RESULT_FILE-shaped table whose SIMULATION_KEY FK substitutes
    /// the referenced simulation's TITLE.
    fn fk_table() -> XuisTable {
        let mut t = table();
        t.name = "RESULT_FILE".into();
        t.primary_key = vec!["RESULT_FILE.RESULT_FILE_KEY".into()];
        t.columns[0].name = "RESULT_FILE_KEY".into();
        t.columns[1].name = "SIMULATION_KEY".into();
        t.columns[1].fk = Some(easia_xuis::FkSpec {
            tablecolumn: "SIMULATION.SIMULATION_KEY".into(),
            substcolumn: Some("SIMULATION.TITLE".into()),
        });
        t.columns[2].name = "SIZE_B".into();
        t
    }

    #[test]
    fn join_query_projects_fk_substitute_via_left_join() {
        let f = form(&[("op_SIZE_B", "GE"), ("val_SIZE_B", "100")]);
        let (sql, params) = build_join_query(&fk_table(), &f).unwrap();
        assert_eq!(
            sql,
            "SELECT T.*, SUB0.TITLE AS SIMULATION_KEY__SUBST FROM RESULT_FILE T \
             LEFT JOIN SIMULATION SUB0 ON T.SIMULATION_KEY = SUB0.SIMULATION_KEY \
             WHERE T.SIZE_B >= ? ORDER BY T.RESULT_FILE_KEY"
        );
        assert_eq!(params, vec![Value::Int(100)]);
    }

    #[test]
    fn join_query_omits_subst_when_fk_column_not_returned() {
        let f = form(&[("ret_RESULT_FILE_KEY", "on")]);
        let (sql, _) = build_join_query(&fk_table(), &f).unwrap();
        assert_eq!(
            sql,
            "SELECT T.RESULT_FILE_KEY FROM RESULT_FILE T ORDER BY T.RESULT_FILE_KEY"
        );
    }

    #[test]
    fn join_query_without_substitutes_matches_plain_build_query() {
        let f = form(&[("val_TITLE", "x")]);
        assert_eq!(
            build_join_query(&table(), &f).unwrap(),
            build_query(&table(), &f).unwrap()
        );
    }

    #[test]
    fn browse_query_carries_the_same_joins() {
        assert_eq!(
            build_browse_query(&fk_table(), "RESULT_FILE_KEY"),
            "SELECT T.*, SUB0.TITLE AS SIMULATION_KEY__SUBST FROM RESULT_FILE T \
             LEFT JOIN SIMULATION SUB0 ON T.SIMULATION_KEY = SUB0.SIMULATION_KEY \
             WHERE T.RESULT_FILE_KEY = ?"
        );
        assert_eq!(
            build_browse_query(&table(), "SIMULATION_KEY"),
            "SELECT * FROM SIMULATION WHERE SIMULATION_KEY = ?"
        );
    }

    #[test]
    fn join_tables_lists_table_and_fk_targets() {
        assert_eq!(
            join_tables(&fk_table()),
            vec!["RESULT_FILE".to_string(), "SIMULATION".to_string()]
        );
        assert_eq!(join_tables(&table()), vec!["SIMULATION".to_string()]);
    }

    #[test]
    fn hidden_columns_excluded() {
        let mut t = table();
        t.columns[1].hidden = true;
        let html = render_query_form(&t);
        assert!(!html.contains("ret_TITLE"));
        let f = form(&[("ret_TITLE", "on"), ("val_TITLE", "x")]);
        let (sql, params) = build_query(&t, &f).unwrap();
        assert!(!sql.contains("TITLE ="), "{sql}");
        assert!(params.is_empty());
    }
}
