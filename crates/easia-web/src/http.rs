//! Request/response model with URL and form decoding.

use std::collections::BTreeMap;

/// HTTP methods the interface uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
}

impl Method {
    /// Parse a method token.
    pub fn parse(s: &str) -> Option<Method> {
        match s.to_ascii_uppercase().as_str() {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

/// An incoming request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Path without the query string, e.g. `/query/SIMULATION`.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    /// Decoded form body (`application/x-www-form-urlencoded`).
    pub form: BTreeMap<String, String>,
    /// Session cookie value, if presented.
    pub session: Option<String>,
}

impl Request {
    /// Build a GET request from a URL path (with optional `?query`).
    pub fn get(url: &str) -> Request {
        let (path, query) = split_url(url);
        Request {
            method: Method::Get,
            path,
            query,
            form: BTreeMap::new(),
            session: None,
        }
    }

    /// Build a POST request with form fields.
    pub fn post(url: &str, form: &[(&str, &str)]) -> Request {
        let (path, query) = split_url(url);
        Request {
            method: Method::Post,
            path,
            query,
            form: form
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            session: None,
        }
    }

    /// Attach a session token (builder style).
    pub fn with_session(mut self, session: &str) -> Request {
        self.session = Some(session.to_string());
        self
    }

    /// A query-or-form parameter (form wins on conflict, as with
    /// servlet `getParameter`).
    pub fn param(&self, name: &str) -> Option<&str> {
        self.form
            .get(name)
            .or_else(|| self.query.get(name))
            .map(String::as_str)
    }

    /// Path segments, e.g. `/query/SIMULATION` → `["query", "SIMULATION"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

fn split_url(url: &str) -> (String, BTreeMap<String, String>) {
    match url.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_urlencoded(q)),
        None => (url.to_string(), BTreeMap::new()),
    }
}

/// Decode `application/x-www-form-urlencoded` text.
pub fn parse_urlencoded(s: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for pair in s.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.insert(url_decode(k), url_decode(v));
    }
    out
}

/// Percent-decode (plus `+` as space).
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(bytes[i]);
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encode for URLs (conservative set).
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// An outgoing response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content-Type header.
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Session cookie to set, if any.
    pub set_session: Option<String>,
    /// Location header for redirects.
    pub location: Option<String>,
    /// Retry-After header in seconds (503 responses).
    pub retry_after: Option<u64>,
}

impl Response {
    /// 200 HTML response.
    pub fn html(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8".into(),
            body: body.into().into_bytes(),
            set_session: None,
            location: None,
            retry_after: None,
        }
    }

    /// 200 plain-text response.
    pub fn text(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8".into(),
            body: body.into().into_bytes(),
            set_session: None,
            location: None,
            retry_after: None,
        }
    }

    /// 200 binary response with explicit MIME type — "rematerialise the
    /// underlying objects and return them to the user's browser with the
    /// appropriate MIME type set".
    pub fn bytes(content_type: &str, body: Vec<u8>) -> Response {
        Response {
            status: 200,
            content_type: content_type.into(),
            body,
            set_session: None,
            location: None,
            retry_after: None,
        }
    }

    /// 302 redirect.
    pub fn redirect(location: &str) -> Response {
        Response {
            status: 302,
            content_type: "text/html".into(),
            body: Vec::new(),
            set_session: None,
            location: Some(location.to_string()),
            retry_after: None,
        }
    }

    /// Error response with status.
    pub fn error(status: u16, msg: &str) -> Response {
        Response {
            status,
            content_type: "text/html; charset=utf-8".into(),
            body: format!(
                "<html><body><h1>Error {status}</h1><p>{}</p></body></html>",
                crate::html::escape(msg)
            )
            .into_bytes(),
            set_session: None,
            location: None,
            retry_after: None,
        }
    }

    /// 503 Service Unavailable with a Retry-After hint — the graceful
    /// degradation path when a file server is down.
    pub fn unavailable(msg: &str, retry_after_secs: u64) -> Response {
        let mut r = Response::error(503, msg);
        r.retry_after = Some(retry_after_secs);
        r
    }

    /// Attach a session cookie (builder style).
    pub fn with_session(mut self, session: &str) -> Response {
        self.set_session = Some(session.to_string());
        self
    }

    /// Body as UTF-8 (tests).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_decoding() {
        assert_eq!(url_decode("a+b%20c%2Fd"), "a b c/d");
        assert_eq!(url_decode("plain"), "plain");
        assert_eq!(url_decode("bad%zz"), "bad%zz");
        assert_eq!(url_decode("%41"), "A");
    }

    #[test]
    fn url_encoding_round_trip() {
        for s in ["hello world", "a/b?c=d&e", "t000.edf;TOK", "ümlaut"] {
            assert_eq!(url_decode(&url_encode(s)), s);
        }
    }

    #[test]
    fn request_parsing() {
        let r = Request::get("/query/SIMULATION?TITLE_op=LIKE&TITLE_val=%25flow%25");
        assert_eq!(r.path, "/query/SIMULATION");
        assert_eq!(r.segments(), vec!["query", "SIMULATION"]);
        assert_eq!(r.param("TITLE_op"), Some("LIKE"));
        assert_eq!(r.param("TITLE_val"), Some("%flow%"));
        assert_eq!(r.param("missing"), None);
    }

    #[test]
    fn form_overrides_query() {
        let mut r = Request::post("/x?k=fromquery", &[("k", "fromform")]);
        assert_eq!(r.param("k"), Some("fromform"));
        r.form.clear();
        assert_eq!(r.param("k"), Some("fromquery"));
    }

    #[test]
    fn responses() {
        let r = Response::html("<p>hi</p>");
        assert_eq!(r.status, 200);
        let r = Response::redirect("/login");
        assert_eq!(r.status, 302);
        assert_eq!(r.location.as_deref(), Some("/login"));
        let r = Response::error(403, "no <script>");
        assert!(r.body_text().contains("&lt;script&gt;"));
        let r = Response::bytes("image/x-portable-pixmap", vec![1, 2]);
        assert_eq!(r.content_type, "image/x-portable-pixmap");
        let r = Response::unavailable("fs1 is down", 42);
        assert_eq!(r.status, 503);
        assert_eq!(r.retry_after, Some(42));
        assert!(r.body_text().contains("fs1 is down"));
    }
}
