//! Minimal HTML generation with correct escaping.

/// Escape text for element content.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// A standard page shell in the spirit of the paper's screenshots.
pub fn page(title: &str, body: &str) -> String {
    format!(
        "<!DOCTYPE html><html><head><title>{t} - EASIA</title>\
         <style>body{{font-family:sans-serif;margin:2em}}table{{border-collapse:collapse}}\
         td,th{{border:1px solid #999;padding:4px 8px}}th{{background:#dde}}</style>\
         </head><body><h1>{t}</h1>{body}\
         <hr><p><a href=\"/tables\">Archive tables</a> | <a href=\"/logout\">Log out</a></p>\
         </body></html>",
        t = escape(title)
    )
}

/// `<a href=..>label</a>` with both parts escaped.
pub fn link(href: &str, label: &str) -> String {
    format!("<a href=\"{}\">{}</a>", escape(href), escape(label))
}

/// A table from header + rows of already-rendered cell HTML.
pub fn table(headers: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::from("<table><tr>");
    for h in headers {
        out.push_str(&format!("<th>{}</th>", escape(h)));
    }
    out.push_str("</tr>");
    for row in rows {
        out.push_str("<tr>");
        for cell in row {
            // Cells arrive pre-rendered (may contain links).
            out.push_str(&format!("<td>{cell}</td>"));
        }
        out.push_str("</tr>");
    }
    out.push_str("</table>");
    out
}

/// Human-readable size, as the interface shows for BLOB/CLOB/DATALINK
/// links ("hypertext link displays size of object").
pub fn format_size(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KB", "MB", "GB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1000.0 && unit < UNITS.len() - 1 {
        v /= 1000.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(
            escape("<a b=\"c\">&'"),
            "&lt;a b=&quot;c&quot;&gt;&amp;&#39;"
        );
    }

    #[test]
    fn page_contains_title_and_body() {
        let p = page("Search & browse", "<p>x</p>");
        assert!(p.contains("<h1>Search &amp; browse</h1>"));
        assert!(p.contains("<p>x</p>"));
    }

    #[test]
    fn links_escape() {
        assert_eq!(
            link("/q?a=1&b=2", "<next>"),
            "<a href=\"/q?a=1&amp;b=2\">&lt;next&gt;</a>"
        );
    }

    #[test]
    fn tables_render() {
        let t = table(
            &["A".to_string(), "B".to_string()],
            &[vec!["1".to_string(), "<b>2</b>".to_string()]],
        );
        assert!(t.contains("<th>A</th>"));
        assert!(t.contains("<td><b>2</b></td>"), "cells are raw HTML");
    }

    #[test]
    fn sizes() {
        assert_eq!(format_size(512), "512 B");
        assert_eq!(format_size(85_000_000), "85.0 MB");
        assert_eq!(format_size(544_000_000), "544.0 MB");
        assert_eq!(format_size(1_500_000_000), "1.5 GB");
    }
}
