//! A simple DOM: elements with attributes and mixed-content children.

/// A child node of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// A run of character data (entities already resolved).
    Text(String),
    /// A comment (`<!-- ... -->` contents).
    Comment(String),
}

/// An XML element: name, attributes in document order, children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Element name (no namespace handling).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Mixed-content children.
    pub children: Vec<Node>,
}

impl Element {
    /// Create an empty element with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: add or replace an attribute and return `self`.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Builder: append a child element and return `self`.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: append a text child and return `self`.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Look up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Set (add or replace) an attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attrs.push((name, value));
        }
    }

    /// Remove an attribute; returns its previous value if present.
    pub fn remove_attr(&mut self, name: &str) -> Option<String> {
        let idx = self.attrs.iter().position(|(n, _)| n == name)?;
        Some(self.attrs.remove(idx).1)
    }

    /// First child element with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Mutable first child element with the given name.
    pub fn child_mut(&mut self, name: &str) -> Option<&mut Element> {
        self.children.iter_mut().find_map(|n| match n {
            Node::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// All child elements with the given name, in order.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// All child elements in order, regardless of name.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// Concatenated text content of this element's *direct* text children.
    pub fn text(&self) -> String {
        let mut s = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                s.push_str(t);
            }
        }
        s
    }

    /// Concatenated text content of the whole subtree.
    pub fn deep_text(&self) -> String {
        let mut s = String::new();
        fn rec(e: &Element, s: &mut String) {
            for n in &e.children {
                match n {
                    Node::Text(t) => s.push_str(t),
                    Node::Element(c) => rec(c, s),
                    Node::Comment(_) => {}
                }
            }
        }
        rec(self, &mut s);
        s
    }

    /// Text of the first child element with the given name, if any.
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.child(name).map(|e| e.text())
    }

    /// Append a child element.
    pub fn push_element(&mut self, child: Element) -> &mut Element {
        self.children.push(Node::Element(child));
        match self.children.last_mut() {
            Some(Node::Element(e)) => e,
            _ => unreachable!("just pushed an element"),
        }
    }

    /// Append a text child.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// Remove all child elements with the given name; returns how many were
    /// removed.
    pub fn remove_children_named(&mut self, name: &str) -> usize {
        let before = self.children.len();
        self.children
            .retain(|n| !matches!(n, Node::Element(e) if e.name == name));
        before - self.children.len()
    }

    /// Depth-first search for the first descendant element matching `pred`.
    pub fn find<'a>(&'a self, pred: &dyn Fn(&Element) -> bool) -> Option<&'a Element> {
        if pred(self) {
            return Some(self);
        }
        for c in self.child_elements() {
            if let Some(hit) = c.find(pred) {
                return Some(hit);
            }
        }
        None
    }

    /// Depth-first collection of all descendant elements (including self)
    /// with the given name.
    pub fn descendants_named<'a>(&'a self, name: &str, out: &mut Vec<&'a Element>) {
        if self.name == name {
            out.push(self);
        }
        for c in self.child_elements() {
            c.descendants_named(name, out);
        }
    }

    /// Number of elements in the subtree including self.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_size)
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("table")
            .with_attr("name", "SIMULATION")
            .with_child(
                Element::new("column")
                    .with_attr("name", "TITLE")
                    .with_child(
                        Element::new("samples")
                            .with_child(Element::new("sample").with_text("Channel flow 360")),
                    ),
            )
            .with_child(Element::new("column").with_attr("name", "AUTHOR_KEY"))
    }

    #[test]
    fn navigation() {
        let t = sample();
        assert_eq!(t.attr("name"), Some("SIMULATION"));
        assert_eq!(t.children_named("column").count(), 2);
        let c0 = t.child("column").unwrap();
        assert_eq!(c0.attr("name"), Some("TITLE"));
        let s = c0.child("samples").unwrap().child("sample").unwrap();
        assert_eq!(s.text(), "Channel flow 360");
    }

    #[test]
    fn attr_set_replace_remove() {
        let mut e = Element::new("x");
        e.set_attr("a", "1");
        e.set_attr("a", "2");
        assert_eq!(e.attrs.len(), 1);
        assert_eq!(e.attr("a"), Some("2"));
        assert_eq!(e.remove_attr("a"), Some("2".to_string()));
        assert_eq!(e.attr("a"), None);
        assert_eq!(e.remove_attr("a"), None);
    }

    #[test]
    fn deep_text_spans_children() {
        let e = Element::new("p")
            .with_text("a")
            .with_child(Element::new("b").with_text("c"))
            .with_text("d");
        assert_eq!(e.text(), "ad");
        assert_eq!(e.deep_text(), "acd");
    }

    #[test]
    fn find_descendant() {
        let t = sample();
        let hit = t
            .find(&|e| e.name == "sample")
            .expect("sample element exists");
        assert_eq!(hit.text(), "Channel flow 360");
        assert!(t.find(&|e| e.name == "missing").is_none());
    }

    #[test]
    fn descendants_named_collects_all() {
        let t = sample();
        let mut out = Vec::new();
        t.descendants_named("column", &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn remove_children() {
        let mut t = sample();
        assert_eq!(t.remove_children_named("column"), 2);
        assert_eq!(t.children_named("column").count(), 0);
    }

    #[test]
    fn subtree_size_counts_elements() {
        assert_eq!(sample().subtree_size(), 5);
    }

    #[test]
    fn child_mut_allows_edit() {
        let mut t = sample();
        t.child_mut("column").unwrap().set_attr("hidden", "true");
        assert_eq!(t.child("column").unwrap().attr("hidden"), Some("true"));
    }
}
