//! Pull (event) parser for the XML subset used by the XUIS.
//!
//! The parser walks the input character by character, tracking line/column
//! for diagnostics, and yields [`Event`]s. Well-formedness is enforced:
//! matching end tags, unique attributes, a single root element, and valid
//! entity/character references.

use crate::Pos;
use std::collections::BTreeSet;
use std::fmt;

/// A parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="v" ...>` — `self_closing` is true for `<name/>`.
    StartElement {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
        /// True if the tag was `<name ... />`.
        self_closing: bool,
    },
    /// `</name>` (also synthesised after a self-closing start tag).
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data with entities resolved; contiguous text and CDATA
    /// runs may be reported as multiple events.
    Text(String),
    /// `<!-- ... -->` contents.
    Comment(String),
    /// End of document.
    Eof,
}

/// A parse error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for XmlError {}

/// Pull parser over an in-memory document.
pub struct Parser<'a> {
    chars: Vec<char>,
    src: std::marker::PhantomData<&'a str>,
    i: usize,
    line: u32,
    col: u32,
    /// Stack of open element names, to match end tags.
    stack: Vec<String>,
    /// Synthesised end-element for a self-closing tag, delivered next.
    pending_end: Option<String>,
    /// Whether the single root element has been seen and closed.
    root_seen: bool,
    root_closed: bool,
}

impl<'a> Parser<'a> {
    /// Create a parser over `src`.
    pub fn new(src: &'a str) -> Self {
        Parser {
            chars: src.chars().collect(),
            src: std::marker::PhantomData,
            i: 0,
            line: 1,
            col: 1,
            stack: Vec::new(),
            pending_end: None,
            root_seen: false,
            root_closed: false,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError {
            pos: self.pos(),
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek_at(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat(&mut self, expected: char) -> Result<(), XmlError> {
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            Some(c) => self.err(format!("expected '{expected}', found '{c}'")),
            None => self.err(format!("expected '{expected}', found end of input")),
        }
    }

    fn eat_str(&mut self, s: &str) -> Result<(), XmlError> {
        for c in s.chars() {
            self.eat(c)?;
        }
        Ok(())
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars()
            .enumerate()
            .all(|(k, c)| self.peek_at(k) == Some(c))
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn is_name_start(c: char) -> bool {
        c.is_alphabetic() || c == '_' || c == ':'
    }

    fn is_name_char(c: char) -> bool {
        Self::is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        match self.peek() {
            Some(c) if Self::is_name_start(c) => {}
            Some(c) => return self.err(format!("invalid name start character '{c}'")),
            None => return self.err("expected a name, found end of input"),
        }
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if Self::is_name_char(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Ok(name)
    }

    fn parse_reference(&mut self) -> Result<char, XmlError> {
        // Called after consuming '&'.
        if self.peek() == Some('#') {
            self.bump();
            let (radix, digits_ok): (u32, fn(char) -> bool) = if self.peek() == Some('x') {
                self.bump();
                (16, |c| c.is_ascii_hexdigit())
            } else {
                (10, |c| c.is_ascii_digit())
            };
            let mut num = String::new();
            while matches!(self.peek(), Some(c) if digits_ok(c)) {
                num.push(self.bump().unwrap());
            }
            self.eat(';')?;
            if num.is_empty() {
                return self.err("empty character reference");
            }
            let code = u32::from_str_radix(&num, radix)
                .ok()
                .and_then(char::from_u32);
            match code {
                Some(c) => Ok(c),
                None => self.err(format!("invalid character reference &#{num};")),
            }
        } else {
            let name = self.parse_name()?;
            self.eat(';')?;
            match name.as_str() {
                "lt" => Ok('<'),
                "gt" => Ok('>'),
                "amp" => Ok('&'),
                "apos" => Ok('\''),
                "quot" => Ok('"'),
                _ => self.err(format!("unknown entity &{name};")),
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.bump() {
            Some(c @ ('"' | '\'')) => c,
            Some(c) => return self.err(format!("expected quoted attribute value, found '{c}'")),
            None => return self.err("expected attribute value, found end of input"),
        };
        let mut v = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => break,
                Some('&') => v.push(self.parse_reference()?),
                Some('<') => return self.err("'<' not allowed in attribute value"),
                Some(c) => v.push(c),
                None => return self.err("unterminated attribute value"),
            }
        }
        Ok(v)
    }

    fn parse_tag(&mut self) -> Result<Event, XmlError> {
        // Called with '<' consumed and next char a name start or '/'.
        if self.peek() == Some('/') {
            self.bump();
            let name = self.parse_name()?;
            self.skip_ws();
            self.eat('>')?;
            match self.stack.pop() {
                Some(open) if open == name => {
                    if self.stack.is_empty() {
                        self.root_closed = true;
                    }
                    Ok(Event::EndElement { name })
                }
                Some(open) => self.err(format!("mismatched end tag </{name}>, expected </{open}>")),
                None => self.err(format!("unexpected end tag </{name}>")),
            }
        } else {
            let name = self.parse_name()?;
            let mut attrs: Vec<(String, String)> = Vec::new();
            let mut seen: BTreeSet<String> = BTreeSet::new();
            loop {
                let before = self.i;
                self.skip_ws();
                match self.peek() {
                    Some('>') => {
                        self.bump();
                        if self.stack.is_empty() {
                            if self.root_closed || self.root_seen {
                                return self.err("multiple root elements");
                            }
                            self.root_seen = true;
                        }
                        self.stack.push(name.clone());
                        return Ok(Event::StartElement {
                            name,
                            attrs,
                            self_closing: false,
                        });
                    }
                    Some('/') => {
                        self.bump();
                        self.eat('>')?;
                        if self.stack.is_empty() {
                            if self.root_closed || self.root_seen {
                                return self.err("multiple root elements");
                            }
                            self.root_seen = true;
                        }
                        // Push now; the synthesised EndElement pops it.
                        self.stack.push(name.clone());
                        self.pending_end = Some(name.clone());
                        return Ok(Event::StartElement {
                            name,
                            attrs,
                            self_closing: true,
                        });
                    }
                    Some(c) if Self::is_name_start(c) => {
                        if self.i == before {
                            return self.err("expected whitespace before attribute");
                        }
                        let aname = self.parse_name()?;
                        self.skip_ws();
                        self.eat('=')?;
                        self.skip_ws();
                        let aval = self.parse_attr_value()?;
                        if !seen.insert(aname.clone()) {
                            return self.err(format!("duplicate attribute '{aname}'"));
                        }
                        attrs.push((aname, aval));
                    }
                    Some(c) => return self.err(format!("unexpected '{c}' in tag")),
                    None => return self.err("unterminated tag"),
                }
            }
        }
    }

    fn parse_comment(&mut self) -> Result<Event, XmlError> {
        // Called with "<!--" consumed.
        let mut text = String::new();
        loop {
            if self.starts_with("-->") {
                self.eat_str("-->")?;
                return Ok(Event::Comment(text));
            }
            if self.starts_with("--") {
                return self.err("'--' not allowed inside a comment");
            }
            match self.bump() {
                Some(c) => text.push(c),
                None => return self.err("unterminated comment"),
            }
        }
    }

    fn parse_cdata(&mut self) -> Result<Event, XmlError> {
        // Called with "<![CDATA[" consumed.
        let mut text = String::new();
        loop {
            if self.starts_with("]]>") {
                self.eat_str("]]>")?;
                return Ok(Event::Text(text));
            }
            match self.bump() {
                Some(c) => text.push(c),
                None => return self.err("unterminated CDATA section"),
            }
        }
    }

    fn skip_pi_or_decl(&mut self) -> Result<(), XmlError> {
        // Called with "<?" consumed; skip to "?>".
        loop {
            if self.starts_with("?>") {
                self.eat_str("?>")?;
                return Ok(());
            }
            if self.bump().is_none() {
                return self.err("unterminated processing instruction");
            }
        }
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        // Called with "<!DOCTYPE" consumed; skip a (possibly bracketed)
        // doctype declaration. Internal subsets are skipped, not parsed.
        let mut depth = 0i32;
        loop {
            match self.bump() {
                Some('[') => depth += 1,
                Some(']') => depth -= 1,
                Some('>') if depth <= 0 => return Ok(()),
                Some(_) => {}
                None => return self.err("unterminated DOCTYPE"),
            }
        }
    }

    /// Produce the next event.
    pub fn next_event(&mut self) -> Result<Event, XmlError> {
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            if self.stack.is_empty() {
                self.root_closed = true;
            }
            return Ok(Event::EndElement { name });
        }
        loop {
            match self.peek() {
                None => {
                    if let Some(open) = self.stack.last() {
                        return self.err(format!("unexpected end of input, <{open}> still open"));
                    }
                    if !self.root_seen {
                        return self.err("document has no root element");
                    }
                    return Ok(Event::Eof);
                }
                Some('<') => {
                    self.bump();
                    match self.peek() {
                        Some('?') => {
                            self.bump();
                            self.skip_pi_or_decl()?;
                        }
                        Some('!') => {
                            self.bump();
                            if self.starts_with("--") {
                                self.eat_str("--")?;
                                return self.parse_comment();
                            } else if self.starts_with("[CDATA[") {
                                self.eat_str("[CDATA[")?;
                                if self.stack.is_empty() {
                                    return self.err("CDATA outside the root element");
                                }
                                return self.parse_cdata();
                            } else if self.starts_with("DOCTYPE") {
                                self.eat_str("DOCTYPE")?;
                                self.skip_doctype()?;
                            } else {
                                return self.err("unsupported markup declaration");
                            }
                        }
                        _ => return self.parse_tag(),
                    }
                }
                Some(_) => {
                    let mut text = String::new();
                    while let Some(c) = self.peek() {
                        if c == '<' {
                            break;
                        }
                        if c == '&' {
                            self.bump();
                            text.push(self.parse_reference()?);
                        } else {
                            if c == ']' && self.starts_with("]]>") {
                                return self.err("']]>' not allowed in character data");
                            }
                            text.push(c);
                            self.bump();
                        }
                    }
                    if self.stack.is_empty() {
                        if !text.chars().all(char::is_whitespace) {
                            return self.err("character data outside the root element");
                        }
                        // Ignorable whitespace between prolog/root/epilog.
                        continue;
                    }
                    return Ok(Event::Text(text));
                }
            }
        }
    }
}

/// Parse a complete document into a DOM tree rooted at its single root
/// element. Comments are preserved as nodes; prolog whitespace and
/// processing instructions are discarded.
pub fn parse_document(src: &str) -> Result<crate::dom::Element, XmlError> {
    use crate::dom::{Element, Node};
    let mut p = Parser::new(src);
    let mut stack: Vec<Element> = Vec::new();
    let mut root: Option<Element> = None;
    loop {
        match p.next_event()? {
            Event::StartElement { name, attrs, .. } => {
                stack.push(Element {
                    name,
                    attrs,
                    children: Vec::new(),
                });
            }
            Event::EndElement { .. } => {
                let done = stack.pop().expect("parser guarantees balanced tags");
                if let Some(parent) = stack.last_mut() {
                    parent.children.push(Node::Element(done));
                } else {
                    root = Some(done);
                }
            }
            Event::Text(t) => {
                if let Some(parent) = stack.last_mut() {
                    // Merge adjacent text nodes for a canonical tree.
                    if let Some(Node::Text(prev)) = parent.children.last_mut() {
                        prev.push_str(&t);
                    } else {
                        parent.children.push(Node::Text(t));
                    }
                }
            }
            Event::Comment(c) => {
                if let Some(parent) = stack.last_mut() {
                    parent.children.push(Node::Comment(c));
                }
            }
            Event::Eof => break,
        }
    }
    root.ok_or(XmlError {
        pos: Pos { line: 1, col: 1 },
        msg: "document has no root element".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<Event> {
        let mut p = Parser::new(src);
        let mut out = Vec::new();
        loop {
            let e = p.next_event().unwrap();
            let eof = e == Event::Eof;
            out.push(e);
            if eof {
                break;
            }
        }
        out
    }

    #[test]
    fn minimal_document() {
        let ev = events("<a/>");
        assert_eq!(
            ev,
            vec![
                Event::StartElement {
                    name: "a".into(),
                    attrs: vec![],
                    self_closing: true
                },
                Event::EndElement { name: "a".into() },
                Event::Eof
            ]
        );
    }

    #[test]
    fn attributes_and_text() {
        let ev = events(r#"<t name="AUTHOR" primaryKey='AUTHOR.AUTHOR_KEY'>x</t>"#);
        match &ev[0] {
            Event::StartElement { name, attrs, .. } => {
                assert_eq!(name, "t");
                assert_eq!(
                    attrs,
                    &vec![
                        ("name".to_string(), "AUTHOR".to_string()),
                        ("primaryKey".to_string(), "AUTHOR.AUTHOR_KEY".to_string())
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ev[1], Event::Text("x".into()));
    }

    #[test]
    fn entities_resolved() {
        let ev = events("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos; &#65;&#x42;</a>");
        assert_eq!(ev[1], Event::Text("<x> & \"y\" 'z' AB".into()));
    }

    #[test]
    fn entity_in_attribute() {
        let ev = events(r#"<a v="a&amp;b"/>"#);
        match &ev[0] {
            Event::StartElement { attrs, .. } => assert_eq!(attrs[0].1, "a&b"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_cdata() {
        let ev = events("<a><!--note--><![CDATA[<raw&stuff>]]></a>");
        assert_eq!(ev[1], Event::Comment("note".into()));
        assert_eq!(ev[2], Event::Text("<raw&stuff>".into()));
    }

    #[test]
    fn xml_decl_and_doctype_skipped() {
        let ev = events("<?xml version=\"1.0\"?>\n<!DOCTYPE xuis [ <!ELEMENT a EMPTY> ]>\n<a/>");
        assert!(matches!(ev[0], Event::StartElement { .. }));
    }

    #[test]
    fn nested_structure() {
        let ev = events("<a><b><c/></b><b/></a>");
        let starts: Vec<_> = ev
            .iter()
            .filter_map(|e| match e {
                Event::StartElement { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec!["a", "b", "c", "b"]);
    }

    #[test]
    fn error_mismatched_tags() {
        let mut p = Parser::new("<a><b></a></b>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        let err = p.next_event().unwrap_err();
        assert!(err.msg.contains("mismatched"), "{err}");
    }

    #[test]
    fn error_duplicate_attribute() {
        let mut p = Parser::new(r#"<a x="1" x="2"/>"#);
        assert!(p.next_event().is_err());
    }

    #[test]
    fn error_unterminated() {
        let mut p = Parser::new("<a><b>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert!(p.next_event().is_err());
    }

    #[test]
    fn error_multiple_roots() {
        let mut p = Parser::new("<a/><b/>");
        p.next_event().unwrap();
        p.next_event().unwrap(); // synthesised end
        assert!(p.next_event().is_err());
    }

    #[test]
    fn error_text_outside_root() {
        let mut p = Parser::new("hello<a/>");
        assert!(p.next_event().is_err());
    }

    #[test]
    fn error_unknown_entity() {
        let mut p = Parser::new("<a>&nbsp;</a>");
        p.next_event().unwrap();
        assert!(p.next_event().is_err());
    }

    #[test]
    fn error_positions_reported() {
        let mut p = Parser::new("<a>\n  <b></c>\n</a>");
        p.next_event().unwrap(); // <a>
        p.next_event().unwrap(); // text
        p.next_event().unwrap(); // <b>
        let err = p.next_event().unwrap_err();
        assert_eq!(err.pos.line, 2);
    }

    #[test]
    fn dom_round_structure() {
        let root = parse_document(
            r#"<table name="AUTHOR"><column name="AUTHOR_KEY"><type><VARCHAR/><size>30</size></type></column></table>"#,
        )
        .unwrap();
        assert_eq!(root.name, "table");
        assert_eq!(root.attr("name"), Some("AUTHOR"));
        let col = root.child("column").unwrap();
        let ty = col.child("type").unwrap();
        assert!(ty.child("VARCHAR").is_some());
        assert_eq!(ty.child("size").unwrap().text(), "30");
    }

    #[test]
    fn dom_merges_adjacent_text() {
        let root = parse_document("<a>x<![CDATA[y]]>z</a>").unwrap();
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.text(), "xyz");
    }

    #[test]
    fn whitespace_between_prolog_and_root_ok() {
        assert!(parse_document("  \n<a/>\n  ").is_ok());
    }
}
