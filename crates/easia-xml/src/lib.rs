//! A small, dependency-free XML 1.0 subset implementation.
//!
//! EASIA's user interface is driven entirely by an XML document (the XUIS —
//! XML User Interface Specification) that conforms to a DTD defined by the
//! paper's authors. This crate provides the XML machinery that the
//! `easia-xuis` crate builds on:
//!
//! * [`parser`] — an event (pull) parser for the XML subset the
//!   XUIS uses: elements, attributes, character data, CDATA sections,
//!   comments, processing instructions (skipped), and the five predefined
//!   entities plus decimal/hex character references,
//! * [`dom`] — a tree model ([`Element`]) with navigation and mutation
//!   helpers, built from the event stream,
//! * [`writer`] — serialisation back to XML with correct escaping and
//!   optional pretty-printing,
//! * [`validate`] — a lightweight element-content-model validator standing
//!   in for DTD validation ("the default XUIS conforms to a DTD that we
//!   have created").
//!
//! Deliberately out of scope (the XUIS does not use them): namespaces,
//! DOCTYPE-internal subsets, external entities.

pub mod dom;
pub mod parser;
pub mod validate;
pub mod writer;

pub use dom::{Element, Node};
pub use parser::{parse_document, Event, Parser, XmlError};
pub use validate::{ContentModel, Schema, ValidationError};
pub use writer::{escape_attr, escape_text, write_document, WriteOptions};

/// Position (1-based line/column) in the source text, for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in characters).
    pub col: u32,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}
