//! Serialisation of DOM trees back to XML text.

use crate::dom::{Element, Node};
use std::fmt::Write as _;

/// Escape character data for element content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape a string for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

/// Serialisation options.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Emit the `<?xml version="1.0" encoding="UTF-8"?>` declaration.
    pub xml_decl: bool,
    /// Pretty-print: newline + indentation for element-only content.
    pub pretty: bool,
    /// Indent string per nesting level when pretty-printing.
    pub indent: &'static str,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            xml_decl: true,
            pretty: true,
            indent: "  ",
        }
    }
}

impl WriteOptions {
    /// Compact output: no declaration, no added whitespace. The result
    /// parses back to an identical tree.
    pub fn compact() -> Self {
        WriteOptions {
            xml_decl: false,
            pretty: false,
            indent: "",
        }
    }
}

/// Serialise `root` as a full document with the given options.
pub fn write_document(root: &Element, opts: &WriteOptions) -> String {
    let mut out = String::new();
    if opts.xml_decl {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    }
    write_element(&mut out, root, opts, 0);
    if opts.pretty {
        out.push('\n');
    }
    out
}

fn has_element_children_only(e: &Element) -> bool {
    let mut any = false;
    for n in &e.children {
        match n {
            Node::Element(_) | Node::Comment(_) => any = true,
            Node::Text(t) if t.chars().all(char::is_whitespace) => {}
            Node::Text(_) => return false,
        }
    }
    any
}

fn write_element(out: &mut String, e: &Element, opts: &WriteOptions, depth: usize) {
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attrs {
        let _ = write!(out, " {k}=\"{}\"", escape_attr(v));
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    let block = opts.pretty && has_element_children_only(e);
    for n in &e.children {
        match n {
            Node::Text(t) => {
                // In block mode whitespace-only text is layout noise from a
                // previous pretty-print; drop it and re-indent.
                if block && t.chars().all(char::is_whitespace) {
                    continue;
                }
                out.push_str(&escape_text(t));
            }
            Node::Element(c) => {
                if block {
                    out.push('\n');
                    for _ in 0..=depth {
                        out.push_str(opts.indent);
                    }
                }
                write_element(out, c, opts, depth + 1);
            }
            Node::Comment(c) => {
                if block {
                    out.push('\n');
                    for _ in 0..=depth {
                        out.push_str(opts.indent);
                    }
                }
                let _ = write!(out, "<!--{c}-->");
            }
        }
    }
    if block {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(opts.indent);
        }
    }
    let _ = write!(out, "</{}>", e.name);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn escapes() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
        assert_eq!(
            escape_attr("say \"hi\" & go"),
            "say &quot;hi&quot; &amp; go"
        );
    }

    #[test]
    fn compact_round_trip() {
        let src = r#"<table name="AUTHOR"><column name="K"><type><VARCHAR/><size>30</size></type></column><tablealias>Author &amp; co</tablealias></table>"#;
        let tree = parse_document(src).unwrap();
        let out = write_document(&tree, &WriteOptions::compact());
        let reparsed = parse_document(&out).unwrap();
        assert_eq!(tree, reparsed);
    }

    #[test]
    fn pretty_round_trip_structure() {
        let src = r#"<a x="1"><b><c/><c/></b><d>text stays inline</d></a>"#;
        let tree = parse_document(src).unwrap();
        let out = write_document(&tree, &WriteOptions::default());
        assert!(out.starts_with("<?xml"));
        assert!(out.contains("\n  <b>"));
        // Mixed-content element keeps its text inline, unmangled.
        assert!(out.contains("<d>text stays inline</d>"));
        let reparsed = parse_document(&out).unwrap();
        assert_eq!(reparsed.child("d").unwrap().text(), "text stays inline");
        assert_eq!(reparsed.child("b").unwrap().children_named("c").count(), 2);
    }

    #[test]
    fn attr_escaping_round_trips() {
        let tree = crate::dom::Element::new("a").with_attr("v", "x\"<>&\ny");
        let out = write_document(&tree, &WriteOptions::compact());
        let back = parse_document(&out).unwrap();
        assert_eq!(back.attr("v"), Some("x\"<>&\ny"));
    }

    #[test]
    fn empty_element_self_closes() {
        let tree = crate::dom::Element::new("DATALINK");
        assert_eq!(
            write_document(&tree, &WriteOptions::compact()),
            "<DATALINK/>"
        );
    }

    #[test]
    fn comments_preserved() {
        let src = "<a><!--Foreign key link defined here--><b/></a>";
        let tree = parse_document(src).unwrap();
        let out = write_document(&tree, &WriteOptions::compact());
        assert!(out.contains("<!--Foreign key link defined here-->"));
    }
}
