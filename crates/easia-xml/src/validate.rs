//! A lightweight stand-in for DTD validation.
//!
//! The paper states the generated XUIS "conforms to a DTD that we have
//! created" and may be hand-customised before system initialisation — so
//! customised documents must be re-checkable. This module provides a small
//! declarative schema language: per element, the set of required/optional
//! attributes and a content model, checked recursively over a DOM tree.

use crate::dom::{Element, Node};
use std::collections::BTreeMap;
use std::fmt;

/// How many times a child element may occur (DTD `?`, `*`, `+`, none).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurs {
    /// Exactly once.
    One,
    /// Zero or one (`?`).
    Optional,
    /// Zero or more (`*`).
    Many,
    /// One or more (`+`).
    AtLeastOne,
}

impl Occurs {
    fn check(self, n: usize) -> bool {
        match self {
            Occurs::One => n == 1,
            Occurs::Optional => n <= 1,
            Occurs::Many => true,
            Occurs::AtLeastOne => n >= 1,
        }
    }
}

impl fmt::Display for Occurs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Occurs::One => "exactly one",
            Occurs::Optional => "at most one",
            Occurs::Many => "any number of",
            Occurs::AtLeastOne => "at least one",
        };
        f.write_str(s)
    }
}

/// Content model for one element type.
#[derive(Debug, Clone)]
pub enum ContentModel {
    /// No children at all (DTD `EMPTY`).
    Empty,
    /// Text only (DTD `(#PCDATA)`).
    Text,
    /// Element children only, each name with an occurrence constraint;
    /// unknown child names are rejected. Order is not constrained (the
    /// XUIS generator emits a fixed order, but hand edits may not).
    Elements(Vec<(String, Occurs)>),
    /// Mixed content: text plus any of the listed child element names,
    /// unconstrained counts (DTD `(#PCDATA | a | b)*`).
    Mixed(Vec<String>),
    /// Anything goes (DTD `ANY`) — used for HTML-ish parameter bodies.
    Any,
}

/// Declaration for one element type.
#[derive(Debug, Clone)]
pub struct ElementDecl {
    /// Attributes that must be present.
    pub required_attrs: Vec<String>,
    /// Attributes that may be present.
    pub optional_attrs: Vec<String>,
    /// Content model.
    pub content: ContentModel,
}

/// A schema: element declarations plus the expected root element name.
#[derive(Debug, Clone)]
pub struct Schema {
    /// Required root element name.
    pub root: String,
    decls: BTreeMap<String, ElementDecl>,
}

/// A validation failure, with an element path like `xuis/table[2]/column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Slash-separated path from the root to the offending element.
    pub path: String,
    /// Description of the violation.
    pub msg: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.msg)
    }
}

impl std::error::Error for ValidationError {}

impl Schema {
    /// Create a schema with the given root element name.
    pub fn new(root: impl Into<String>) -> Self {
        Schema {
            root: root.into(),
            decls: BTreeMap::new(),
        }
    }

    /// Declare (or replace) an element type.
    pub fn element(
        mut self,
        name: impl Into<String>,
        required_attrs: &[&str],
        optional_attrs: &[&str],
        content: ContentModel,
    ) -> Self {
        self.decls.insert(
            name.into(),
            ElementDecl {
                required_attrs: required_attrs.iter().map(|s| s.to_string()).collect(),
                optional_attrs: optional_attrs.iter().map(|s| s.to_string()).collect(),
                content,
            },
        );
        self
    }

    /// Look up the declaration for an element name.
    pub fn decl(&self, name: &str) -> Option<&ElementDecl> {
        self.decls.get(name)
    }

    /// Validate a document; returns all violations found (empty = valid).
    pub fn validate(&self, root: &Element) -> Vec<ValidationError> {
        let mut errs = Vec::new();
        if root.name != self.root {
            errs.push(ValidationError {
                path: root.name.clone(),
                msg: format!("root element must be <{}>", self.root),
            });
        }
        self.validate_element(root, &root.name.clone(), &mut errs);
        errs
    }

    /// Validate and return `Ok(())` or the first error.
    pub fn check(&self, root: &Element) -> Result<(), ValidationError> {
        match self.validate(root).into_iter().next() {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn validate_element(&self, e: &Element, path: &str, errs: &mut Vec<ValidationError>) {
        let Some(decl) = self.decls.get(&e.name) else {
            errs.push(ValidationError {
                path: path.to_string(),
                msg: format!("undeclared element <{}>", e.name),
            });
            return;
        };
        for req in &decl.required_attrs {
            if e.attr(req).is_none() {
                errs.push(ValidationError {
                    path: path.to_string(),
                    msg: format!("missing required attribute '{req}'"),
                });
            }
        }
        for (name, _) in &e.attrs {
            if !decl.required_attrs.contains(name) && !decl.optional_attrs.contains(name) {
                errs.push(ValidationError {
                    path: path.to_string(),
                    msg: format!("undeclared attribute '{name}'"),
                });
            }
        }
        let has_real_text = e
            .children
            .iter()
            .any(|n| matches!(n, Node::Text(t) if !t.chars().all(char::is_whitespace)));
        match &decl.content {
            ContentModel::Empty => {
                if has_real_text || e.child_elements().next().is_some() {
                    errs.push(ValidationError {
                        path: path.to_string(),
                        msg: format!("<{}> must be empty", e.name),
                    });
                }
            }
            ContentModel::Text => {
                if let Some(c) = e.child_elements().next() {
                    errs.push(ValidationError {
                        path: path.to_string(),
                        msg: format!("<{}> allows text only, found <{}>", e.name, c.name),
                    });
                }
            }
            ContentModel::Elements(spec) => {
                if has_real_text {
                    errs.push(ValidationError {
                        path: path.to_string(),
                        msg: format!("<{}> does not allow character data", e.name),
                    });
                }
                for (cname, occurs) in spec {
                    let n = e.children_named(cname).count();
                    if !occurs.check(n) {
                        errs.push(ValidationError {
                            path: path.to_string(),
                            msg: format!("expected {occurs} <{cname}>, found {n}"),
                        });
                    }
                }
                let mut index: BTreeMap<&str, usize> = BTreeMap::new();
                for c in e.child_elements() {
                    if !spec.iter().any(|(n, _)| *n == c.name) {
                        errs.push(ValidationError {
                            path: path.to_string(),
                            msg: format!("<{}> not allowed inside <{}>", c.name, e.name),
                        });
                        continue;
                    }
                    let k = index.entry(c.name.as_str()).or_insert(0);
                    *k += 1;
                    let child_path = format!("{path}/{}[{}]", c.name, k);
                    self.validate_element(c, &child_path, errs);
                }
            }
            ContentModel::Mixed(names) => {
                let mut index: BTreeMap<&str, usize> = BTreeMap::new();
                for c in e.child_elements() {
                    if !names.contains(&c.name) {
                        errs.push(ValidationError {
                            path: path.to_string(),
                            msg: format!("<{}> not allowed inside <{}>", c.name, e.name),
                        });
                        continue;
                    }
                    let k = index.entry(c.name.as_str()).or_insert(0);
                    *k += 1;
                    let child_path = format!("{path}/{}[{}]", c.name, k);
                    self.validate_element(c, &child_path, errs);
                }
            }
            ContentModel::Any => {
                // Children of an ANY element are validated only if declared;
                // undeclared descendants are allowed verbatim.
                let mut index: BTreeMap<&str, usize> = BTreeMap::new();
                for c in e.child_elements() {
                    if self.decls.contains_key(&c.name) {
                        let k = index.entry(c.name.as_str()).or_insert(0);
                        *k += 1;
                        let child_path = format!("{path}/{}[{}]", c.name, k);
                        self.validate_element(c, &child_path, errs);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn schema() -> Schema {
        Schema::new("table")
            .element(
                "table",
                &["name"],
                &["primaryKey"],
                ContentModel::Elements(vec![
                    ("tablealias".into(), Occurs::Optional),
                    ("column".into(), Occurs::AtLeastOne),
                ]),
            )
            .element("tablealias", &[], &[], ContentModel::Text)
            .element(
                "column",
                &["name"],
                &["colid"],
                ContentModel::Elements(vec![("type".into(), Occurs::One)]),
            )
            .element(
                "type",
                &[],
                &[],
                ContentModel::Elements(vec![
                    ("VARCHAR".into(), Occurs::Optional),
                    ("size".into(), Occurs::Optional),
                ]),
            )
            .element("VARCHAR", &[], &[], ContentModel::Empty)
            .element("size", &[], &[], ContentModel::Text)
    }

    #[test]
    fn valid_document_passes() {
        let doc = parse_document(
            r#"<table name="AUTHOR"><tablealias>Author</tablealias>
               <column name="K"><type><VARCHAR/><size>30</size></type></column></table>"#,
        )
        .unwrap();
        assert_eq!(schema().validate(&doc), vec![]);
    }

    #[test]
    fn missing_required_attribute() {
        let doc = parse_document(r#"<table><column name="K"><type/></column></table>"#).unwrap();
        let errs = schema().validate(&doc);
        assert!(errs.iter().any(|e| e.msg.contains("'name'")), "{errs:?}");
    }

    #[test]
    fn undeclared_attribute() {
        let doc = parse_document(
            r#"<table name="A" bogus="1"><column name="K"><type/></column></table>"#,
        )
        .unwrap();
        let errs = schema().validate(&doc);
        assert!(errs.iter().any(|e| e.msg.contains("bogus")), "{errs:?}");
    }

    #[test]
    fn wrong_child_count() {
        let doc = parse_document(r#"<table name="A"/>"#).unwrap();
        let errs = schema().validate(&doc);
        assert!(
            errs.iter().any(|e| e.msg.contains("at least one <column>")),
            "{errs:?}"
        );
    }

    #[test]
    fn unexpected_child_element() {
        let doc =
            parse_document(r#"<table name="A"><column name="K"><type/></column><rogue/></table>"#)
                .unwrap();
        let errs = schema().validate(&doc);
        assert!(errs.iter().any(|e| e.msg.contains("<rogue>")), "{errs:?}");
    }

    #[test]
    fn empty_must_be_empty() {
        let doc = parse_document(
            r#"<table name="A"><column name="K"><type><VARCHAR>x</VARCHAR></type></column></table>"#,
        )
        .unwrap();
        let errs = schema().validate(&doc);
        assert!(
            errs.iter().any(|e| e.msg.contains("must be empty")),
            "{errs:?}"
        );
    }

    #[test]
    fn text_only_rejects_elements() {
        let doc = parse_document(
            r#"<table name="A"><tablealias><b/></tablealias><column name="K"><type/></column></table>"#,
        )
        .unwrap();
        let errs = schema().validate(&doc);
        assert!(errs.iter().any(|e| e.msg.contains("text only")), "{errs:?}");
    }

    #[test]
    fn wrong_root() {
        let doc = parse_document(r#"<column name="K"><type/></column>"#).unwrap();
        let errs = schema().validate(&doc);
        assert!(
            errs.iter().any(|e| e.msg.contains("root element")),
            "{errs:?}"
        );
    }

    #[test]
    fn error_paths_are_indexed() {
        let doc = parse_document(
            r#"<table name="A"><column name="K"><type/></column><column name="L"><type><size><b/></size></type></column></table>"#,
        )
        .unwrap();
        let errs = schema().validate(&doc);
        assert!(
            errs.iter().any(|e| e.path.contains("column[2]")),
            "{errs:?}"
        );
    }

    #[test]
    fn any_model_allows_arbitrary_html() {
        let s = Schema::new("parameters").element("parameters", &[], &[], ContentModel::Any);
        let doc = parse_document(
            r#"<parameters><select name="slice"><option value="x0">x0</option></select></parameters>"#,
        )
        .unwrap();
        assert_eq!(s.validate(&doc), vec![]);
    }
}
