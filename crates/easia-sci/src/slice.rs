//! Plane extraction from 3-D datasets — the paper's data-reduction
//! operation ("Select the slice you wish to visualise: x0=0.0,
//! x1=0.1015625, ...").

use crate::edf::{EdfError, EdfReader};

/// Axis normal to the extracted plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Plane of constant x.
    X,
    /// Plane of constant y.
    Y,
    /// Plane of constant z.
    Z,
}

impl Axis {
    /// Parse `"x"`, `"y"`, `"z"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Axis> {
        match s.to_ascii_lowercase().as_str() {
            "x" => Some(Axis::X),
            "y" => Some(Axis::Y),
            "z" => Some(Axis::Z),
            _ => None,
        }
    }
}

/// A 2-D plane extracted from a 3-D dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Plane {
    /// First in-plane dimension length.
    pub rows: usize,
    /// Second in-plane dimension length.
    pub cols: usize,
    /// Row-major values (`cols` fastest).
    pub values: Vec<f64>,
}

/// Extract the plane `axis = index` of 3-D dataset `name` from an
/// encoded EDF file, reading only the bytes the plane needs.
///
/// Dataset layout is `x` fastest: index `x + nx*(y + ny*z)`.
/// * `Axis::Z` planes are one contiguous range (1 range read),
/// * `Axis::Y` planes read `nz` row ranges,
/// * `Axis::X` planes read element-by-element columns (worst case) —
///   still only `ny·nz` elements rather than the whole dataset.
pub fn extract_plane(
    bytes: &[u8],
    name: &str,
    axis: Axis,
    index: usize,
) -> Result<Plane, EdfError> {
    let reader = EdfReader::open(bytes)?;
    let meta = reader.meta(name)?.clone();
    if meta.dims.len() != 3 {
        return Err(EdfError::Malformed(format!(
            "{name} is {}-dimensional, slicing needs 3",
            meta.dims.len()
        )));
    }
    let (nx, ny, nz) = (
        meta.dims[0] as usize,
        meta.dims[1] as usize,
        meta.dims[2] as usize,
    );
    let bound = match axis {
        Axis::X => nx,
        Axis::Y => ny,
        Axis::Z => nz,
    };
    if index >= bound {
        return Err(EdfError::Malformed(format!(
            "slice index {index} out of range 0..{bound}"
        )));
    }
    match axis {
        Axis::Z => {
            // Contiguous nx*ny block at z=index.
            let start = (index * nx * ny) as u64;
            let values = reader.read_elements(bytes, name, start, (nx * ny) as u64)?;
            Ok(Plane {
                rows: ny,
                cols: nx,
                values,
            })
        }
        Axis::Y => {
            // For each z: contiguous run of nx at (y=index, z).
            let mut values = Vec::with_capacity(nx * nz);
            for z in 0..nz {
                let start = (nx * (index + ny * z)) as u64;
                values.extend(reader.read_elements(bytes, name, start, nx as u64)?);
            }
            Ok(Plane {
                rows: nz,
                cols: nx,
                values,
            })
        }
        Axis::X => {
            let mut values = Vec::with_capacity(ny * nz);
            for z in 0..nz {
                for y in 0..ny {
                    let start = (index + nx * (y + ny * z)) as u64;
                    values.extend(reader.read_elements(bytes, name, start, 1)?);
                }
            }
            Ok(Plane {
                rows: nz,
                cols: ny,
                values,
            })
        }
    }
}

/// Bytes of the source dataset a plane extraction actually reads,
/// versus the full dataset size — the data-reduction factor EASIA's
/// server-side operations exist to exploit.
pub fn reduction_factor(dims: &[u64]) -> f64 {
    assert_eq!(dims.len(), 3);
    let total: u64 = dims.iter().product();
    let plane = dims[0] * dims[1]; // representative z-plane
    total as f64 / plane as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edf::EdfFile;

    /// 3-D ramp dataset where value = x + 10y + 100z.
    fn ramp(nx: usize, ny: usize, nz: usize) -> Vec<u8> {
        let mut data = Vec::with_capacity(nx * ny * nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    data.push(x as f64 + 10.0 * y as f64 + 100.0 * z as f64);
                }
            }
        }
        EdfFile::new()
            .with_dataset("f", &[nx as u64, ny as u64, nz as u64], data)
            .encode()
    }

    #[test]
    fn z_plane() {
        let bytes = ramp(4, 3, 2);
        let p = extract_plane(&bytes, "f", Axis::Z, 1).unwrap();
        assert_eq!((p.rows, p.cols), (3, 4));
        // All values have z=1 → +100.
        assert!(p.values.iter().all(|v| *v >= 100.0 && *v < 200.0));
        assert_eq!(p.values[0], 100.0);
        assert_eq!(p.values[4 * 3 - 1], 100.0 + 3.0 + 20.0);
    }

    #[test]
    fn y_plane() {
        let bytes = ramp(4, 3, 2);
        let p = extract_plane(&bytes, "f", Axis::Y, 2).unwrap();
        assert_eq!((p.rows, p.cols), (2, 4));
        assert!(p.values.iter().all(|v| (*v / 10.0) as i64 % 10 == 2));
    }

    #[test]
    fn x_plane() {
        let bytes = ramp(4, 3, 2);
        let p = extract_plane(&bytes, "f", Axis::X, 3).unwrap();
        assert_eq!((p.rows, p.cols), (2, 3));
        assert!(p.values.iter().all(|v| *v % 10.0 == 3.0));
    }

    #[test]
    fn index_bounds_checked() {
        let bytes = ramp(4, 3, 2);
        assert!(extract_plane(&bytes, "f", Axis::Z, 2).is_err());
        assert!(extract_plane(&bytes, "f", Axis::X, 4).is_err());
        assert!(extract_plane(&bytes, "g", Axis::Z, 0).is_err());
    }

    #[test]
    fn non_3d_rejected() {
        let bytes = EdfFile::new()
            .with_dataset("flat", &[6], vec![0.0; 6])
            .encode();
        assert!(extract_plane(&bytes, "flat", Axis::Z, 0).is_err());
    }

    #[test]
    fn axis_parsing() {
        assert_eq!(Axis::parse("X"), Some(Axis::X));
        assert_eq!(Axis::parse("z"), Some(Axis::Z));
        assert_eq!(Axis::parse("t"), None);
    }

    #[test]
    fn reduction_factor_matches_dims() {
        assert_eq!(reduction_factor(&[64, 64, 64]), 64.0);
        assert_eq!(reduction_factor(&[128, 128, 64]), 64.0);
    }
}
