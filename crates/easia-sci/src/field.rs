//! Synthetic turbulence fields.
//!
//! A divergence-suppressed sum of random Fourier modes with a
//! Kolmogorov-like `k^-5/3` inertial-range spectrum. Physically this is
//! "synthetic turbulence" in the Kraichnan tradition — not a DNS, but it
//! produces fields with realistic spatial correlation so that slicing,
//! statistics and visualisation operations exercise the same code paths
//! as real simulation outputs would. Everything is deterministic in the
//! seed: re-generating a timestep yields identical bytes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic turbulence realisation.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSpec {
    /// Grid points per axis (the field is `n×n×n`).
    pub n: usize,
    /// Number of random Fourier modes.
    pub modes: usize,
    /// RNG seed; also stands in for the simulation's initial condition.
    pub seed: u64,
    /// Integral length scale as a fraction of the domain (0..1).
    pub length_scale: f64,
}

impl FieldSpec {
    /// A small default suitable for tests: 32³ with 48 modes.
    pub fn small(seed: u64) -> Self {
        FieldSpec {
            n: 32,
            modes: 48,
            seed,
            length_scale: 0.3,
        }
    }
}

/// One timestep of synthetic turbulence: three velocity components and a
/// pressure proxy on an `n×n×n` grid, stored as flattened `Vec<f64>` in
/// `x + n*(y + n*z)` order.
#[derive(Debug, Clone)]
pub struct TurbulenceField {
    /// Grid points per axis.
    pub n: usize,
    /// u velocity component.
    pub u: Vec<f64>,
    /// v velocity component.
    pub v: Vec<f64>,
    /// w velocity component.
    pub w: Vec<f64>,
    /// Pressure proxy.
    pub p: Vec<f64>,
}

struct Mode {
    k: [f64; 3],
    amp: [f64; 3],
    phase: f64,
}

impl TurbulenceField {
    /// Generate the field for `spec` at (dimensionless) time `t`.
    /// Different `t` values yield decorrelating fields, standing in for
    /// successive simulation timesteps.
    pub fn generate(spec: &FieldSpec, t: f64) -> TurbulenceField {
        assert!(spec.n >= 2, "grid too small");
        assert!(spec.modes >= 1, "need at least one mode");
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let k0 = 1.0 / spec.length_scale.max(1e-3);
        // Draw modes once from the seed; time enters through phases.
        let modes: Vec<Mode> = (0..spec.modes)
            .map(|_| {
                // Wavevector with random direction, magnitude from a
                // k^-5/3 energy distribution truncated to [k0, 8 k0].
                let dir = random_unit(&mut rng);
                let u: f64 = rng.gen_range(0.0..1.0);
                // Inverse-CDF sample of k^-5/3 on [k0, 8k0].
                let a = k0.powf(-2.0 / 3.0);
                let b = (8.0 * k0).powf(-2.0 / 3.0);
                let kmag = (a + u * (b - a)).powf(-1.5);
                let k = [dir[0] * kmag, dir[1] * kmag, dir[2] * kmag];
                // Amplitude perpendicular to k (incompressibility) with
                // magnitude ~ sqrt(E(k)) ~ k^-5/6.
                let raw = random_unit(&mut rng);
                let dot = raw[0] * dir[0] + raw[1] * dir[1] + raw[2] * dir[2];
                let mut amp = [
                    raw[0] - dot * dir[0],
                    raw[1] - dot * dir[1],
                    raw[2] - dot * dir[2],
                ];
                let norm = (amp[0] * amp[0] + amp[1] * amp[1] + amp[2] * amp[2])
                    .sqrt()
                    .max(1e-9);
                let scale = kmag.powf(-5.0 / 6.0) / norm;
                for a in &mut amp {
                    *a *= scale;
                }
                let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                Mode { k, amp, phase }
            })
            .collect();

        let n = spec.n;
        let len = n * n * n;
        let mut u = vec![0.0f64; len];
        let mut v = vec![0.0f64; len];
        let mut w = vec![0.0f64; len];
        let h = std::f64::consts::TAU / n as f64;
        for m in &modes {
            let omega = (m.k[0] * m.k[0] + m.k[1] * m.k[1] + m.k[2] * m.k[2]).sqrt();
            let ph_t = m.phase + omega * t;
            for z in 0..n {
                let kz = m.k[2] * z as f64 * h;
                for y in 0..n {
                    let kyz = m.k[1] * y as f64 * h + kz;
                    let base = n * (y + n * z);
                    for x in 0..n {
                        let arg = m.k[0] * x as f64 * h + kyz + ph_t;
                        let c = arg.cos();
                        let idx = base + x;
                        u[idx] += m.amp[0] * c;
                        v[idx] += m.amp[1] * c;
                        w[idx] += m.amp[2] * c;
                    }
                }
            }
        }
        // Pressure proxy: dynamic pressure fluctuation  -|u|^2/2 + mean.
        let p: Vec<f64> = (0..len)
            .map(|i| -(u[i] * u[i] + v[i] * v[i] + w[i] * w[i]) / 2.0)
            .collect();
        TurbulenceField { n, u, v, w, p }
    }

    /// Flat index of grid point `(x, y, z)`.
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        x + self.n * (y + self.n * z)
    }

    /// Component by name (`u`, `v`, `w`, `p`).
    pub fn component(&self, name: &str) -> Option<&[f64]> {
        match name {
            "u" => Some(&self.u),
            "v" => Some(&self.v),
            "w" => Some(&self.w),
            "p" => Some(&self.p),
            _ => None,
        }
    }
}

fn random_unit(rng: &mut StdRng) -> [f64; 3] {
    // Marsaglia rejection sampling on the sphere.
    loop {
        let x: f64 = rng.gen_range(-1.0..1.0);
        let y: f64 = rng.gen_range(-1.0..1.0);
        let z: f64 = rng.gen_range(-1.0..1.0);
        let s = x * x + y * y + z * z;
        if s > 1e-6 && s <= 1.0 {
            let inv = 1.0 / s.sqrt();
            return [x * inv, y * inv, z * inv];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let spec = FieldSpec::small(7);
        let a = TurbulenceField::generate(&spec, 0.0);
        let b = TurbulenceField::generate(&spec, 0.0);
        assert_eq!(a.u, b.u);
        assert_eq!(a.p, b.p);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TurbulenceField::generate(&FieldSpec::small(1), 0.0);
        let b = TurbulenceField::generate(&FieldSpec::small(2), 0.0);
        assert_ne!(a.u, b.u);
    }

    #[test]
    fn timesteps_evolve() {
        let spec = FieldSpec::small(7);
        let a = TurbulenceField::generate(&spec, 0.0);
        let b = TurbulenceField::generate(&spec, 1.0);
        assert_ne!(a.u, b.u, "time advances the phases");
    }

    #[test]
    fn field_has_fluctuations_and_zero_ish_mean() {
        let f = TurbulenceField::generate(&FieldSpec::small(42), 0.0);
        let n = f.u.len() as f64;
        let mean: f64 = f.u.iter().sum::<f64>() / n;
        let rms: f64 = (f.u.iter().map(|x| x * x).sum::<f64>() / n).sqrt();
        assert!(rms > 1e-3, "field is not flat (rms={rms})");
        assert!(
            mean.abs() < rms,
            "mean ({mean}) small relative to fluctuations ({rms})"
        );
    }

    #[test]
    fn components_accessible() {
        let f = TurbulenceField::generate(&FieldSpec::small(1), 0.0);
        for c in ["u", "v", "w", "p"] {
            assert_eq!(f.component(c).unwrap().len(), 32 * 32 * 32);
        }
        assert!(f.component("q").is_none());
    }

    #[test]
    fn indexing_is_row_major_x_fastest() {
        let f = TurbulenceField::generate(&FieldSpec::small(1), 0.0);
        assert_eq!(f.index(0, 0, 0), 0);
        assert_eq!(f.index(1, 0, 0), 1);
        assert_eq!(f.index(0, 1, 0), 32);
        assert_eq!(f.index(0, 0, 1), 32 * 32);
    }

    #[test]
    fn pressure_is_negative_semidefinite() {
        let f = TurbulenceField::generate(&FieldSpec::small(3), 0.0);
        assert!(f.p.iter().all(|&p| p <= 0.0));
    }
}
