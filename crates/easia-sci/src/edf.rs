//! EDF — the EASIA Data Format.
//!
//! A minimal self-describing scientific container standing in for the
//! HDF files the paper browses with NCSA's SDB: a magic header, a typed
//! attribute table, and named n-dimensional `f64` datasets.
//!
//! Layout (all integers little-endian):
//! ```text
//! "EDF1"
//! u32 attr_count  { u16 key_len, key, u16 val_len, val }*
//! u32 dataset_count
//!   { u16 name_len, name, u8 ndim, u64 dims[ndim], f64 data[prod(dims)] }*
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// Magic prefix of EDF files.
pub const MAGIC: &[u8; 4] = b"EDF1";

/// Errors from EDF encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdfError {
    /// Not an EDF file.
    BadMagic,
    /// File ends mid-structure.
    Truncated,
    /// A declared size is inconsistent.
    Malformed(String),
    /// Dataset not present.
    NoSuchDataset(String),
}

impl fmt::Display for EdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdfError::BadMagic => write!(f, "not an EDF file"),
            EdfError::Truncated => write!(f, "truncated EDF file"),
            EdfError::Malformed(m) => write!(f, "malformed EDF file: {m}"),
            EdfError::NoSuchDataset(n) => write!(f, "no such dataset: {n}"),
        }
    }
}

impl std::error::Error for EdfError {}

/// One named dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name, e.g. `u`, `v`, `w`, `p`.
    pub name: String,
    /// Dimensions, e.g. `[64, 64, 64]`.
    pub dims: Vec<u64>,
    /// Row-major data, first dimension fastest (matches
    /// [`crate::field::TurbulenceField`] layout for 3-D grids).
    pub data: Vec<f64>,
}

impl Dataset {
    /// Total element count implied by `dims`.
    pub fn element_count(&self) -> u64 {
        self.dims.iter().product()
    }
}

/// An in-memory EDF file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdfFile {
    /// String attributes (title, units, timestep, ...).
    pub attrs: BTreeMap<String, String>,
    /// Datasets in insertion order.
    pub datasets: Vec<Dataset>,
}

impl EdfFile {
    /// Empty file.
    pub fn new() -> Self {
        EdfFile::default()
    }

    /// Set an attribute (builder style).
    pub fn with_attr(mut self, key: &str, value: &str) -> Self {
        self.attrs.insert(key.to_string(), value.to_string());
        self
    }

    /// Add a dataset (builder style). Panics if `data.len()` does not
    /// match the dimensions.
    pub fn with_dataset(mut self, name: &str, dims: &[u64], data: Vec<f64>) -> Self {
        let expect: u64 = dims.iter().product();
        assert_eq!(
            data.len() as u64,
            expect,
            "dataset {name}: {} elements for dims {dims:?}",
            data.len()
        );
        self.datasets.push(Dataset {
            name: name.to_string(),
            dims: dims.to_vec(),
            data,
        });
        self
    }

    /// Find a dataset by name.
    pub fn dataset(&self, name: &str) -> Option<&Dataset> {
        self.datasets.iter().find(|d| d.name == name)
    }

    /// Serialise to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.attrs.len() as u32).to_le_bytes());
        for (k, v) in &self.attrs {
            out.extend_from_slice(&(k.len() as u16).to_le_bytes());
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(&(v.len() as u16).to_le_bytes());
            out.extend_from_slice(v.as_bytes());
        }
        out.extend_from_slice(&(self.datasets.len() as u32).to_le_bytes());
        for d in &self.datasets {
            out.extend_from_slice(&(d.name.len() as u16).to_le_bytes());
            out.extend_from_slice(d.name.as_bytes());
            out.push(d.dims.len() as u8);
            for &dim in &d.dims {
                out.extend_from_slice(&dim.to_le_bytes());
            }
            for &x in &d.data {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        out
    }

    /// Parse from bytes (full materialisation; use [`EdfReader`] for
    /// header-only or range reads).
    pub fn decode(bytes: &[u8]) -> Result<EdfFile, EdfError> {
        let reader = EdfReader::open(bytes)?;
        let mut file = EdfFile {
            attrs: reader.attrs.clone(),
            datasets: Vec::new(),
        };
        for meta in &reader.datasets {
            let data = reader.read_dataset(bytes, &meta.name)?;
            file.datasets.push(Dataset {
                name: meta.name.clone(),
                dims: meta.dims.clone(),
                data,
            });
        }
        Ok(file)
    }
}

/// Dataset metadata without the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetMeta {
    /// Dataset name.
    pub name: String,
    /// Dimensions.
    pub dims: Vec<u64>,
    /// Byte offset of the payload within the file.
    pub data_offset: usize,
}

impl DatasetMeta {
    /// Total element count.
    pub fn element_count(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Payload size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.element_count() * 8
    }
}

/// Header-level reader: parses attributes and dataset directory without
/// touching payloads — this is what lets server-side operations slice a
/// dataset while reading only the bytes they need.
#[derive(Debug, Clone)]
pub struct EdfReader {
    /// File attributes.
    pub attrs: BTreeMap<String, String>,
    /// Dataset directory.
    pub datasets: Vec<DatasetMeta>,
}

impl EdfReader {
    /// Parse the header of `bytes`.
    pub fn open(bytes: &[u8]) -> Result<EdfReader, EdfError> {
        if bytes.len() < 4 {
            return Err(EdfError::BadMagic);
        }
        if &bytes[..4] != MAGIC {
            return Err(EdfError::BadMagic);
        }
        let mut pos = 4usize;
        let read_u16 = |pos: &mut usize| -> Result<u16, EdfError> {
            let s = bytes.get(*pos..*pos + 2).ok_or(EdfError::Truncated)?;
            *pos += 2;
            Ok(u16::from_le_bytes(s.try_into().expect("2 bytes")))
        };
        let read_u32 = |pos: &mut usize| -> Result<u32, EdfError> {
            let s = bytes.get(*pos..*pos + 4).ok_or(EdfError::Truncated)?;
            *pos += 4;
            Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
        };
        let read_u64 = |pos: &mut usize| -> Result<u64, EdfError> {
            let s = bytes.get(*pos..*pos + 8).ok_or(EdfError::Truncated)?;
            *pos += 8;
            Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
        };
        let read_str = |pos: &mut usize, len: usize| -> Result<String, EdfError> {
            let s = bytes.get(*pos..*pos + len).ok_or(EdfError::Truncated)?;
            *pos += len;
            String::from_utf8(s.to_vec()).map_err(|_| EdfError::Malformed("non-utf8 name".into()))
        };
        let nattrs = read_u32(&mut pos)?;
        let mut attrs = BTreeMap::new();
        for _ in 0..nattrs {
            let klen = read_u16(&mut pos)? as usize;
            let k = read_str(&mut pos, klen)?;
            let vlen = read_u16(&mut pos)? as usize;
            let v = read_str(&mut pos, vlen)?;
            attrs.insert(k, v);
        }
        let ndatasets = read_u32(&mut pos)?;
        let mut datasets = Vec::with_capacity(ndatasets as usize);
        for _ in 0..ndatasets {
            let nlen = read_u16(&mut pos)? as usize;
            let name = read_str(&mut pos, nlen)?;
            let ndim = *bytes.get(pos).ok_or(EdfError::Truncated)? as usize;
            pos += 1;
            if ndim == 0 || ndim > 8 {
                return Err(EdfError::Malformed(format!("{name}: {ndim} dimensions")));
            }
            let mut dims = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                dims.push(read_u64(&mut pos)?);
            }
            let meta = DatasetMeta {
                name,
                dims,
                data_offset: pos,
            };
            let skip = meta.byte_len() as usize;
            if pos + skip > bytes.len() {
                return Err(EdfError::Truncated);
            }
            pos += skip;
            datasets.push(meta);
        }
        Ok(EdfReader { attrs, datasets })
    }

    /// Metadata of a dataset by name.
    pub fn meta(&self, name: &str) -> Result<&DatasetMeta, EdfError> {
        self.datasets
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| EdfError::NoSuchDataset(name.to_string()))
    }

    /// Read a whole dataset's values from the file bytes.
    pub fn read_dataset(&self, bytes: &[u8], name: &str) -> Result<Vec<f64>, EdfError> {
        let meta = self.meta(name)?;
        self.read_elements(bytes, name, 0, meta.element_count())
    }

    /// Read `count` elements starting at element `start` — a contiguous
    /// range read, the primitive that slicing is built on.
    pub fn read_elements(
        &self,
        bytes: &[u8],
        name: &str,
        start: u64,
        count: u64,
    ) -> Result<Vec<f64>, EdfError> {
        let meta = self.meta(name)?;
        if start + count > meta.element_count() {
            return Err(EdfError::Malformed(format!(
                "{name}: range {start}+{count} beyond {} elements",
                meta.element_count()
            )));
        }
        let off = meta.data_offset + (start as usize) * 8;
        let end = off + (count as usize) * 8;
        let payload = bytes.get(off..end).ok_or(EdfError::Truncated)?;
        Ok(payload
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }
}

/// Build the canonical EASIA timestep file from a turbulence field.
pub fn timestep_file(
    field: &crate::field::TurbulenceField,
    simulation_key: &str,
    timestep: u32,
) -> EdfFile {
    let n = field.n as u64;
    EdfFile::new()
        .with_attr("simulation", simulation_key)
        .with_attr("timestep", &timestep.to_string())
        .with_attr("measurement", "u,v,w,p")
        .with_attr("grid", &format!("{n}x{n}x{n}"))
        .with_dataset("u", &[n, n, n], field.u.clone())
        .with_dataset("v", &[n, n, n], field.v.clone())
        .with_dataset("w", &[n, n, n], field.w.clone())
        .with_dataset("p", &[n, n, n], field.p.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{FieldSpec, TurbulenceField};

    fn sample() -> EdfFile {
        EdfFile::new()
            .with_attr("title", "test")
            .with_attr("timestep", "3")
            .with_dataset("u", &[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
            .with_dataset("scalar", &[4], vec![0.5; 4])
    }

    #[test]
    fn encode_decode_round_trip() {
        let f = sample();
        let bytes = f.encode();
        let back = EdfFile::decode(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn header_reader_reads_directory_only() {
        let bytes = sample().encode();
        let r = EdfReader::open(&bytes).unwrap();
        assert_eq!(r.attrs["title"], "test");
        assert_eq!(r.datasets.len(), 2);
        assert_eq!(r.meta("u").unwrap().dims, vec![2, 3]);
        assert!(r.meta("zzz").is_err());
    }

    #[test]
    fn range_reads() {
        let bytes = sample().encode();
        let r = EdfReader::open(&bytes).unwrap();
        assert_eq!(
            r.read_elements(&bytes, "u", 2, 3).unwrap(),
            vec![3.0, 4.0, 5.0]
        );
        assert!(r.read_elements(&bytes, "u", 5, 3).is_err(), "out of range");
    }

    #[test]
    fn bad_inputs() {
        assert_eq!(EdfFile::decode(b"nope").unwrap_err(), EdfError::BadMagic);
        let bytes = sample().encode();
        assert!(matches!(
            EdfFile::decode(&bytes[..bytes.len() - 4]).unwrap_err(),
            EdfError::Truncated
        ));
    }

    #[test]
    #[should_panic(expected = "elements for dims")]
    fn dataset_shape_checked() {
        let _ = EdfFile::new().with_dataset("x", &[2, 2], vec![1.0]);
    }

    #[test]
    fn timestep_file_layout() {
        let field = TurbulenceField::generate(&FieldSpec::small(1), 0.0);
        let f = timestep_file(&field, "S1", 7);
        assert_eq!(f.attrs["simulation"], "S1");
        assert_eq!(f.attrs["timestep"], "7");
        assert_eq!(f.datasets.len(), 4);
        let bytes = f.encode();
        let r = EdfReader::open(&bytes).unwrap();
        assert_eq!(r.meta("w").unwrap().dims, vec![32, 32, 32]);
        // Round-trips exactly.
        let u = r.read_dataset(&bytes, "u").unwrap();
        assert_eq!(u, field.u);
    }

    #[test]
    fn file_size_scales_as_expected() {
        // A 64^3 four-component timestep is ~8 MB; sanity-check the
        // arithmetic used when synthesising archive workloads.
        let n = 64u64;
        let one = n * n * n * 8;
        assert_eq!(one * 4, 8_388_608);
    }
}
