//! The Scientific Data Browser stand-in.
//!
//! The paper demonstrates loose coupling by mounting NCSA's SDB — "a Web
//! based scientific data access service ... for post-processing HDF
//! datasets" — as a URL operation, integrated purely through XUIS markup.
//! This module is our equivalent service: given an EDF file it produces
//! a structural description (attributes, datasets, shapes, previews) as
//! either plain text or a small HTML page.

use crate::edf::{EdfError, EdfReader};

/// Output format for the browser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdbFormat {
    /// Plain text, one line per item.
    Text,
    /// Minimal HTML page.
    Html,
}

/// Describe the structure of an encoded EDF file.
pub fn describe(bytes: &[u8], format: SdbFormat) -> Result<String, EdfError> {
    let reader = EdfReader::open(bytes)?;
    let mut items: Vec<(String, String)> = Vec::new();
    for (k, v) in &reader.attrs {
        items.push((format!("attribute {k}"), v.clone()));
    }
    for meta in &reader.datasets {
        let dims: Vec<String> = meta.dims.iter().map(u64::to_string).collect();
        let preview = preview_values(bytes, &reader, &meta.name)?;
        items.push((
            format!("dataset {}", meta.name),
            format!(
                "shape {} ({} elements, {} bytes){preview}",
                dims.join("x"),
                meta.element_count(),
                meta.byte_len()
            ),
        ));
    }
    Ok(match format {
        SdbFormat::Text => {
            let mut out = String::from("EDF structure\n");
            for (k, v) in items {
                out.push_str(&format!("  {k}: {v}\n"));
            }
            out
        }
        SdbFormat::Html => {
            let mut out = String::from(
                "<html><head><title>Scientific Data Browser</title></head><body>\
                 <h1>EDF structure</h1><table border=\"1\">",
            );
            for (k, v) in items {
                out.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td></tr>",
                    html_escape(&k),
                    html_escape(&v)
                ));
            }
            out.push_str("</table></body></html>");
            out
        }
    })
}

fn preview_values(bytes: &[u8], reader: &EdfReader, name: &str) -> Result<String, EdfError> {
    let meta = reader.meta(name)?;
    let n = meta.element_count().min(3);
    if n == 0 {
        return Ok(String::new());
    }
    let vals = reader.read_elements(bytes, name, 0, n)?;
    let rendered: Vec<String> = vals.iter().map(|v| format!("{v:.4}")).collect();
    Ok(format!(", first values [{}...]", rendered.join(", ")))
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edf::EdfFile;

    fn sample() -> Vec<u8> {
        EdfFile::new()
            .with_attr("simulation", "S1")
            .with_dataset("u", &[2, 2, 2], vec![1.0; 8])
            .encode()
    }

    #[test]
    fn text_description() {
        let d = describe(&sample(), SdbFormat::Text).unwrap();
        assert!(d.contains("attribute simulation: S1"), "{d}");
        assert!(
            d.contains("dataset u: shape 2x2x2 (8 elements, 64 bytes)"),
            "{d}"
        );
        assert!(
            d.contains("first values [1.0000, 1.0000, 1.0000...]"),
            "{d}"
        );
    }

    #[test]
    fn html_description() {
        let d = describe(&sample(), SdbFormat::Html).unwrap();
        assert!(d.starts_with("<html>"));
        assert!(d.contains("<td>dataset u</td>"));
    }

    #[test]
    fn rejects_non_edf() {
        assert!(describe(b"not edf", SdbFormat::Text).is_err());
    }

    #[test]
    fn escaping() {
        assert_eq!(html_escape("a<b>&c"), "a&lt;b&gt;&amp;c");
    }
}
