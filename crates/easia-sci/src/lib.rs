//! Scientific-data substrate for the EASIA reproduction.
//!
//! The paper's motivating datasets are outputs of UK Turbulence
//! Consortium direct numerical simulations: per-timestep 3-D grids of
//! velocity components and pressure (`u,v,w,p`), tens to hundreds of
//! megabytes per timestep. We cannot use the consortium's data, so this
//! crate synthesises statistically plausible stand-ins and provides the
//! container format and post-processing kernels the operations framework
//! runs against:
//!
//! * [`field`] — deterministic synthetic turbulence: a sum of random
//!   Fourier modes with a prescribed energy spectrum over a 3-D grid,
//! * [`edf`] — the EASIA Data Format, a simple self-describing
//!   scientific container (named datasets, shapes, doubles) standing in
//!   for the HDF files the paper mentions,
//! * [`slice`] — plane extraction (the paper's "array slicing" data
//!   reduction: "select the slice you wish to visualise"),
//! * [`render`] — colormapped PPM rendering of 2-D slices (the GetImage
//!   operation's output),
//! * [`stats`] — field statistics (means, RMS, energy) used by the
//!   statistics operation,
//! * [`sdb`] — a structure-describing browser over EDF files, the
//!   stand-in for NCSA's Scientific Data Browser URL operation.

pub mod edf;
pub mod field;
pub mod render;
pub mod sdb;
pub mod slice;
pub mod stats;

pub use edf::{EdfError, EdfFile, EdfReader};
pub use field::{FieldSpec, TurbulenceField};
pub use render::{render_ppm, Colormap};
pub use slice::{extract_plane, Axis};
