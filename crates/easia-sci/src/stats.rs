//! Field statistics — the data-reducing "summary" operation: turn a
//! multi-megabyte dataset into a few numbers shipped back to the user.

use crate::edf::{EdfError, EdfReader};

/// Summary statistics of one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldStats {
    /// Number of elements.
    pub count: u64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Root-mean-square of fluctuations about the mean.
    pub rms: f64,
}

/// Compute statistics over a dataset in an encoded EDF file, streaming
/// in chunks so peak memory stays bounded regardless of dataset size.
pub fn dataset_stats(bytes: &[u8], name: &str) -> Result<FieldStats, EdfError> {
    let reader = EdfReader::open(bytes)?;
    let meta = reader.meta(name)?.clone();
    let total = meta.element_count();
    const CHUNK: u64 = 65_536;
    let mut count = 0u64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0f64;
    let mut sumsq = 0.0f64;
    let mut start = 0u64;
    while start < total {
        let n = CHUNK.min(total - start);
        let vals = reader.read_elements(bytes, name, start, n)?;
        for v in vals {
            count += 1;
            min = min.min(v);
            max = max.max(v);
            sum += v;
            sumsq += v * v;
        }
        start += n;
    }
    if count == 0 {
        return Err(EdfError::Malformed(format!("{name} is empty")));
    }
    let mean = sum / count as f64;
    let var = (sumsq / count as f64 - mean * mean).max(0.0);
    Ok(FieldStats {
        count,
        min,
        max,
        mean,
        rms: var.sqrt(),
    })
}

/// Turbulent kinetic energy `0.5 * (u'^2 + v'^2 + w'^2)` averaged over
/// the grid — the headline scalar a turbulence researcher checks first.
pub fn kinetic_energy(bytes: &[u8]) -> Result<f64, EdfError> {
    let mut e = 0.0;
    for c in ["u", "v", "w"] {
        let s = dataset_stats(bytes, c)?;
        e += 0.5 * s.rms * s.rms;
    }
    Ok(e)
}

/// Render stats as the text report the operation returns to the browser.
pub fn stats_report(name: &str, s: &FieldStats) -> String {
    format!(
        "dataset {name}: count={} min={:.6} max={:.6} mean={:.6} rms={:.6}",
        s.count, s.min, s.max, s.mean, s.rms
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edf::{timestep_file, EdfFile};
    use crate::field::{FieldSpec, TurbulenceField};

    #[test]
    fn known_values() {
        let bytes = EdfFile::new()
            .with_dataset("x", &[4], vec![1.0, 2.0, 3.0, 4.0])
            .encode();
        let s = dataset_stats(&bytes, "x").unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.rms - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn chunked_equals_direct() {
        // More elements than one chunk to exercise the streaming loop.
        let n = 100_000u64;
        let data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let bytes = EdfFile::new()
            .with_dataset("s", &[n], data.clone())
            .encode();
        let s = dataset_stats(&bytes, "s").unwrap();
        let mean: f64 = data.iter().sum::<f64>() / n as f64;
        assert!((s.mean - mean).abs() < 1e-9);
        assert_eq!(s.count, n);
    }

    #[test]
    fn missing_dataset() {
        let bytes = EdfFile::new().with_dataset("x", &[1], vec![0.0]).encode();
        assert!(matches!(
            dataset_stats(&bytes, "y").unwrap_err(),
            EdfError::NoSuchDataset(_)
        ));
    }

    #[test]
    fn turbulence_energy_positive() {
        let f = TurbulenceField::generate(&FieldSpec::small(9), 0.0);
        let bytes = timestep_file(&f, "S1", 0).encode();
        let e = kinetic_energy(&bytes).unwrap();
        assert!(e > 0.0, "non-trivial turbulent kinetic energy: {e}");
    }

    #[test]
    fn report_format() {
        let s = FieldStats {
            count: 2,
            min: -1.0,
            max: 1.0,
            mean: 0.0,
            rms: 1.0,
        };
        let r = stats_report("u", &s);
        assert!(r.contains("dataset u") && r.contains("count=2"));
    }
}
