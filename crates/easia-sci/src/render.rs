//! Colormapped PPM rendering — the `GetImage` operation's output.

use crate::slice::Plane;

/// Colormap choices for slice rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Colormap {
    /// Blue → white → red, for signed fields (velocity components).
    Diverging,
    /// Black → orange → yellow-white, for magnitudes/pressure.
    Heat,
    /// Plain greyscale.
    Grey,
}

impl Colormap {
    /// Map normalised `t in [0,1]` to RGB.
    pub fn rgb(&self, t: f64) -> [u8; 3] {
        let t = t.clamp(0.0, 1.0);
        match self {
            Colormap::Grey => {
                let v = (t * 255.0) as u8;
                [v, v, v]
            }
            Colormap::Heat => {
                // Black → red → yellow → white.
                let r = (t * 3.0).min(1.0);
                let g = ((t - 1.0 / 3.0) * 3.0).clamp(0.0, 1.0);
                let b = ((t - 2.0 / 3.0) * 3.0).clamp(0.0, 1.0);
                [(r * 255.0) as u8, (g * 255.0) as u8, (b * 255.0) as u8]
            }
            Colormap::Diverging => {
                if t < 0.5 {
                    // Blue to white.
                    let s = t * 2.0;
                    [(s * 255.0) as u8, (s * 255.0) as u8, 255]
                } else {
                    // White to red.
                    let s = (t - 0.5) * 2.0;
                    [255, ((1.0 - s) * 255.0) as u8, ((1.0 - s) * 255.0) as u8]
                }
            }
        }
    }
}

/// Render a plane as a binary PPM (P6) image, normalising values to the
/// plane's min/max range. A constant plane renders mid-scale.
pub fn render_ppm(plane: &Plane, colormap: Colormap) -> Vec<u8> {
    let (min, max) = plane
        .values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = max - min;
    let mut out = Vec::with_capacity(32 + plane.values.len() * 3);
    out.extend_from_slice(format!("P6\n{} {}\n255\n", plane.cols, plane.rows).as_bytes());
    for &v in &plane.values {
        let t = if span > 0.0 { (v - min) / span } else { 0.5 };
        out.extend_from_slice(&colormap.rgb(t));
    }
    out
}

/// Parse the header of a P6 PPM; returns `(width, height, data_offset)`.
/// Used by tests and by the SDB browser to describe images.
pub fn ppm_header(bytes: &[u8]) -> Option<(usize, usize, usize)> {
    // Collect the first four whitespace-separated ASCII fields byte-wise
    // (the payload that follows is binary, so no UTF-8 decoding).
    let mut fields: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut offset = None;
    for (i, &b) in bytes.iter().enumerate() {
        if b.is_ascii_whitespace() {
            if !cur.is_empty() {
                fields.push(std::mem::take(&mut cur));
                if fields.len() == 4 {
                    offset = Some(i + 1);
                    break;
                }
            }
        } else if b.is_ascii_graphic() {
            cur.push(b as char);
        } else {
            return None; // binary byte before the header completed
        }
    }
    let offset = offset?;
    if fields[0] != "P6" {
        return None;
    }
    let w: usize = fields[1].parse().ok()?;
    let h: usize = fields[2].parse().ok()?;
    let _max: usize = fields[3].parse().ok()?;
    Some((w, h, offset))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> Plane {
        Plane {
            rows: 2,
            cols: 3,
            values: vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
        }
    }

    #[test]
    fn ppm_structure() {
        let img = render_ppm(&plane(), Colormap::Grey);
        let (w, h, off) = ppm_header(&img).unwrap();
        assert_eq!((w, h), (3, 2));
        assert_eq!(img.len() - off, 3 * 2 * 3);
        // Grey: first pixel is black (min), last is white (max).
        assert_eq!(&img[off..off + 3], &[0, 0, 0]);
        assert_eq!(&img[img.len() - 3..], &[255, 255, 255]);
    }

    #[test]
    fn constant_plane_is_midscale() {
        let p = Plane {
            rows: 1,
            cols: 2,
            values: vec![7.0, 7.0],
        };
        let img = render_ppm(&p, Colormap::Grey);
        let (_, _, off) = ppm_header(&img).unwrap();
        assert_eq!(img[off], 127);
    }

    #[test]
    fn colormap_endpoints() {
        assert_eq!(Colormap::Diverging.rgb(0.0), [0, 0, 255]);
        assert_eq!(Colormap::Diverging.rgb(1.0), [255, 0, 0]);
        assert_eq!(Colormap::Diverging.rgb(0.5)[2], 255);
        assert_eq!(Colormap::Heat.rgb(0.0), [0, 0, 0]);
        assert_eq!(Colormap::Heat.rgb(1.0), [255, 255, 255]);
        assert_eq!(Colormap::Grey.rgb(0.5), [127, 127, 127]);
    }

    #[test]
    fn header_parser_rejects_non_ppm() {
        assert!(ppm_header(b"P5\n1 1\n255\n").is_none());
        assert!(ppm_header(b"garbage").is_none());
    }

    #[test]
    fn image_much_smaller_than_source_dataset() {
        // The data-reduction argument: a 64^3 float dataset is 2 MB per
        // component; its 64x64 slice image is 12 KB + header.
        let n = 64usize;
        let plane = Plane {
            rows: n,
            cols: n,
            values: vec![0.0; n * n],
        };
        let img = render_ppm(&plane, Colormap::Heat);
        assert!(img.len() < 13_000);
        assert!(n * n * n * 8 > 2_000_000);
    }
}
