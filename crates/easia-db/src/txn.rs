//! The write-ahead log.
//!
//! SQL/MED's headline guarantee is *transaction consistency*: "changes
//! affecting both the database and external files are executed within a
//! transaction. This ensures consistency between a file and its metadata."
//! The engine therefore gives every statement (or explicit BEGIN..COMMIT
//! block) atomicity and durability:
//!
//! * DML is buffered per transaction as logical records; nothing reaches
//!   the WAL until COMMIT, so the on-disk log contains only committed
//!   work and recovery is a single forward replay (snapshot + log),
//! * every commit marker carries the transaction's commit sequence
//!   number (CSN), and transactions are written in CSN order — within a
//!   group-commit flush and across flushes — so replay reproduces the
//!   exact commit order the live run used,
//! * group commit: transactions committing inside an open commit window
//!   stage their records and are flushed together by one write + one
//!   `sync_data` (see `Database::commit_window`), instead of one fsync
//!   per committer,
//! * ROLLBACK undoes the transaction's version stamps and heap inserts,
//! * external-file actions (link/unlink) ride along via the
//!   [`crate::db::LinkObserver`] two-phase hooks, driven by the same
//!   commit/rollback decision.

use crate::error::{DbError, Result};
use crate::mvcc::Csn;
use crate::storage::RowId;
use crate::value::{decode_row, encode_row, Value};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// A logical redo record. `Insert`/`Delete`/`Update` carry the RowIds the
/// original execution produced; replay reproduces them because heap
/// allocation is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Raw DDL statement text, re-executed on replay.
    Ddl(String),
    /// Row inserted.
    Insert {
        /// Target table.
        table: String,
        /// Row values.
        row: Vec<Value>,
    },
    /// Row deleted.
    Delete {
        /// Target table.
        table: String,
        /// Heap address of the deleted row.
        row_id: RowId,
        /// The deleted row (needed for undo and index maintenance).
        row: Vec<Value>,
    },
    /// Row updated (old version delete-stamped, new version inserted).
    Update {
        /// Target table.
        table: String,
        /// Old heap address.
        old_id: RowId,
        /// Old values.
        old: Vec<Value>,
        /// New values.
        new: Vec<Value>,
    },
    /// Transaction committed at `csn` (marks the end of a replayable
    /// unit and pins the global commit order for replay).
    Commit {
        /// Commit sequence number assigned at commit time.
        csn: Csn,
    },
}

const TAG_DDL: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_UPDATE: u8 = 4;
const TAG_COMMIT: u8 = 5;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = get_u32(buf, pos)? as usize;
    let s = buf
        .get(*pos..*pos + len)
        .ok_or_else(|| DbError::Storage("wal: truncated string".into()))?;
    *pos += len;
    String::from_utf8(s.to_vec()).map_err(|_| DbError::Storage("wal: bad utf8".into()))
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let s = buf
        .get(*pos..*pos + 4)
        .ok_or_else(|| DbError::Storage("wal: truncated".into()))?;
    *pos += 4;
    Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let s = buf
        .get(*pos..*pos + 8)
        .ok_or_else(|| DbError::Storage("wal: truncated".into()))?;
    *pos += 8;
    Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
}

impl WalRecord {
    /// Append the binary form to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Ddl(sql) => {
                out.push(TAG_DDL);
                put_str(out, sql);
            }
            WalRecord::Insert { table, row } => {
                out.push(TAG_INSERT);
                put_str(out, table);
                encode_row(row, out);
            }
            WalRecord::Delete { table, row_id, row } => {
                out.push(TAG_DELETE);
                put_str(out, table);
                out.extend_from_slice(&row_id.0.to_le_bytes());
                encode_row(row, out);
            }
            WalRecord::Update {
                table,
                old_id,
                old,
                new,
            } => {
                out.push(TAG_UPDATE);
                put_str(out, table);
                out.extend_from_slice(&old_id.0.to_le_bytes());
                encode_row(old, out);
                encode_row(new, out);
            }
            WalRecord::Commit { csn } => {
                out.push(TAG_COMMIT);
                out.extend_from_slice(&csn.to_le_bytes());
            }
        }
    }

    /// Decode one record, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<WalRecord> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| DbError::Storage("wal: truncated".into()))?;
        *pos += 1;
        Ok(match tag {
            TAG_DDL => WalRecord::Ddl(get_str(buf, pos)?),
            TAG_INSERT => WalRecord::Insert {
                table: get_str(buf, pos)?,
                row: decode_row(buf, pos)?,
            },
            TAG_DELETE => {
                let table = get_str(buf, pos)?;
                let row_id = RowId(get_u64(buf, pos)?);
                let row = decode_row(buf, pos)?;
                WalRecord::Delete { table, row_id, row }
            }
            TAG_UPDATE => {
                let table = get_str(buf, pos)?;
                let old_id = RowId(get_u64(buf, pos)?);
                let old = decode_row(buf, pos)?;
                let new = decode_row(buf, pos)?;
                WalRecord::Update {
                    table,
                    old_id,
                    old,
                    new,
                }
            }
            TAG_COMMIT => WalRecord::Commit {
                csn: get_u64(buf, pos)?,
            },
            t => return Err(DbError::Storage(format!("wal: bad tag {t}"))),
        })
    }
}

/// The write-ahead log file (or an in-memory stand-in).
///
/// Both variants count *sync points* — the `sync_data` calls a
/// file-backed log issues, or would issue for the in-memory stand-in —
/// so group-commit batching is observable (and testable) regardless of
/// backing. One `append_*` call = one sync, however many transactions
/// it carries.
#[derive(Debug)]
pub enum Wal {
    /// No durability: records are discarded (pure in-memory database).
    Memory {
        /// Simulated `sync_data` calls (one per append).
        syncs: u64,
    },
    /// File-backed log.
    File {
        /// Log file path.
        path: PathBuf,
        /// Open handle in append mode.
        file: File,
        /// `sync_data` calls issued.
        syncs: u64,
    },
}

impl Wal {
    /// An in-memory no-durability log.
    pub fn memory() -> Wal {
        Wal::Memory { syncs: 0 }
    }

    /// Open (creating if needed) the WAL at `path`.
    pub fn open(path: &Path) -> Result<Wal> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| DbError::Storage(format!("open wal {path:?}: {e}")))?;
        Ok(Wal::File {
            path: path.to_path_buf(),
            file,
            syncs: 0,
        })
    }

    /// Total sync points issued since this handle was opened.
    pub fn syncs(&self) -> u64 {
        match self {
            Wal::Memory { syncs } | Wal::File { syncs, .. } => *syncs,
        }
    }

    /// One write + one `sync_data` for `buf` (the group-commit unit).
    pub fn append_raw(&mut self, buf: &[u8]) -> Result<()> {
        match self {
            Wal::Memory { syncs } => {
                *syncs += 1;
                Ok(())
            }
            Wal::File { file, path, syncs } => {
                *syncs += 1;
                file.write_all(buf)
                    .and_then(|()| file.sync_data())
                    .map_err(|e| DbError::Storage(format!("append wal {path:?}: {e}")))
            }
        }
    }

    /// Append one committed transaction (records + `Commit { csn }`
    /// marker) and flush: the solo-commit path, costing one sync.
    pub fn append_committed(&mut self, records: &[WalRecord], csn: Csn) -> Result<()> {
        let mut buf = Vec::new();
        for r in records {
            r.encode(&mut buf);
        }
        WalRecord::Commit { csn }.encode(&mut buf);
        self.append_raw(&buf)
    }

    /// Read every complete committed transaction from the log at `path`,
    /// including the `Commit` markers (so recovery can track the CSN it
    /// replayed to). A trailing partial transaction — torn write at
    /// crash, possibly mid-group-commit — is ignored: replay recovers
    /// exactly the committed prefix whose markers reached the disk.
    pub fn read_committed(path: &Path) -> Result<Vec<WalRecord>> {
        let mut buf = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)
                    .map_err(|e| DbError::Storage(format!("read wal {path:?}: {e}")))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(DbError::Storage(format!("read wal {path:?}: {e}"))),
        }
        let mut out = Vec::new();
        let mut pending = Vec::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            match WalRecord::decode(&buf, &mut pos) {
                Ok(marker @ WalRecord::Commit { .. }) => {
                    out.append(&mut pending);
                    out.push(marker);
                }
                Ok(r) => pending.push(r),
                Err(_) => break, // torn tail
            }
        }
        Ok(out)
    }

    /// Truncate the log (after a checkpoint).
    pub fn truncate(&mut self) -> Result<()> {
        match self {
            Wal::Memory { .. } => Ok(()),
            Wal::File { path, file, .. } => {
                *file = OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(&*path)
                    .map_err(|e| DbError::Storage(format!("truncate wal {path:?}: {e}")))?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Ddl("CREATE TABLE T (A INTEGER)".into()),
            WalRecord::Insert {
                table: "T".into(),
                row: vec![Value::Int(1), Value::Str("x".into())],
            },
            WalRecord::Delete {
                table: "T".into(),
                row_id: RowId(42),
                row: vec![Value::Int(1)],
            },
            WalRecord::Update {
                table: "T".into(),
                old_id: RowId(7),
                old: vec![Value::Int(1)],
                new: vec![Value::Int(2)],
            },
        ]
    }

    #[test]
    fn record_codec_round_trip() {
        let mut all = sample_records();
        all.push(WalRecord::Commit { csn: 99 });
        for r in all {
            let mut buf = Vec::new();
            r.encode(&mut buf);
            let mut pos = 0;
            assert_eq!(WalRecord::decode(&buf, &mut pos).unwrap(), r);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn file_wal_round_trip() {
        let dir = std::env::temp_dir().join(format!("easia-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-round-trip.log");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        let recs = sample_records();
        wal.append_committed(&recs[..2], 1).unwrap();
        wal.append_committed(&recs[2..], 2).unwrap();
        assert_eq!(wal.syncs(), 2);
        let got = Wal::read_committed(&path).unwrap();
        let mut want = recs[..2].to_vec();
        want.push(WalRecord::Commit { csn: 1 });
        want.extend(recs[2..].to_vec());
        want.push(WalRecord::Commit { csn: 2 });
        assert_eq!(got, want);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_ignored() {
        let dir = std::env::temp_dir().join(format!("easia-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-torn.log");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        let recs = sample_records();
        wal.append_committed(&recs[..2], 1).unwrap();
        // Simulate a crash mid-append: write a record with no commit and
        // cut it short.
        let mut torn = Vec::new();
        recs[2].encode(&mut torn);
        torn.truncate(torn.len() - 2);
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&torn).unwrap();
        }
        let got = Wal::read_committed(&path).unwrap();
        let mut want = recs[..2].to_vec();
        want.push(WalRecord::Commit { csn: 1 });
        assert_eq!(got, want);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn uncommitted_transactions_not_replayed() {
        // A full record without a Commit marker is also skipped.
        let dir = std::env::temp_dir().join(format!("easia-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-uncommitted.log");
        let _ = std::fs::remove_file(&path);
        let recs = sample_records();
        let mut buf = Vec::new();
        recs[0].encode(&mut buf);
        WalRecord::Commit { csn: 1 }.encode(&mut buf);
        recs[1].encode(&mut buf); // no commit marker after this
        std::fs::write(&path, &buf).unwrap();
        let got = Wal::read_committed(&path).unwrap();
        assert_eq!(got, vec![recs[0].clone(), WalRecord::Commit { csn: 1 }]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_flush_is_one_sync_in_csn_order() {
        let dir = std::env::temp_dir().join(format!("easia-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-group.log");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        let recs = sample_records();
        // Three committers staged into one buffer, flushed together.
        let mut buf = Vec::new();
        for (i, r) in recs[1..4].iter().enumerate() {
            r.encode(&mut buf);
            WalRecord::Commit {
                csn: (i + 1) as u64,
            }
            .encode(&mut buf);
        }
        wal.append_raw(&buf).unwrap();
        assert_eq!(wal.syncs(), 1, "one flush for three committers");
        let got = Wal::read_committed(&path).unwrap();
        let csns: Vec<u64> = got
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit { csn } => Some(*csn),
                _ => None,
            })
            .collect();
        assert_eq!(csns, vec![1, 2, 3], "replay sees commits in CSN order");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_empties_log() {
        let dir = std::env::temp_dir().join(format!("easia-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-truncate.log");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append_committed(&sample_records(), 1).unwrap();
        wal.truncate().unwrap();
        assert_eq!(Wal::read_committed(&path).unwrap(), vec![]);
        // Still usable after truncation.
        wal.append_committed(&sample_records()[..1], 2).unwrap();
        assert_eq!(Wal::read_committed(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_reads_empty() {
        let path = std::env::temp_dir().join("easia-wal-definitely-missing.log");
        let _ = std::fs::remove_file(&path);
        assert_eq!(Wal::read_committed(&path).unwrap(), vec![]);
    }

    #[test]
    fn memory_wal_counts_syncs() {
        let mut wal = Wal::memory();
        wal.append_committed(&sample_records(), 1).unwrap();
        wal.append_committed(&sample_records(), 2).unwrap();
        assert_eq!(wal.syncs(), 2);
        wal.truncate().unwrap();
    }
}
