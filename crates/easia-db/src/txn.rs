//! The write-ahead log.
//!
//! SQL/MED's headline guarantee is *transaction consistency*: "changes
//! affecting both the database and external files are executed within a
//! transaction. This ensures consistency between a file and its metadata."
//! The engine therefore gives every statement (or explicit BEGIN..COMMIT
//! block) atomicity and durability:
//!
//! * DML is buffered per transaction as logical records; nothing reaches
//!   the WAL until COMMIT, so the on-disk log contains only committed
//!   work and recovery is a single forward replay (snapshot + log),
//! * every commit marker carries the transaction's commit sequence
//!   number (CSN), and transactions are written in CSN order — within a
//!   group-commit flush and across flushes — so replay reproduces the
//!   exact commit order the live run used,
//! * group commit: transactions committing inside an open commit window
//!   stage their records and are flushed together by one write + one
//!   `sync_data` (see `Database::commit_window`), instead of one fsync
//!   per committer,
//! * ROLLBACK undoes the transaction's version stamps and heap inserts,
//! * external-file actions (link/unlink) ride along via the
//!   [`crate::db::LinkObserver`] two-phase hooks, driven by the same
//!   commit/rollback decision.
//!
//! # On-disk format (v2, checksummed)
//!
//! A v2 log is the 8-byte magic `EAWAL2\0\0` followed by *batch frames*,
//! one per `sync_data` (one group-commit flush or one solo commit):
//!
//! ```text
//! [0xB5][len: u32 LE][hcrc: u32][pcrc: u32][payload: len bytes]
//! ```
//!
//! `hcrc` is the CRC32 of the 5 header bytes `[0xB5][len]`; `pcrc` is the
//! CRC32 of the payload. The payload is a sequence of *record frames*
//! `[rlen: u32][rcrc: u32][record bytes]`, each CRC-checked individually
//! (the unit the scrub pass verifies). The double checksum makes the
//! torn-write/bit-rot distinction exact: a torn write is a *prefix* of a
//! real frame, so a fully-present batch header is always intact — if the
//! header is present but its checksum fails, the bytes were *changed*,
//! not merely cut short. See [`Wal::parse`] for the classification rules
//! and DESIGN.md §12 for the model.
//!
//! Logs written before v2 (no magic; the file starts directly with a
//! record tag in `1..=4`) still replay with their original best-effort
//! semantics — any decode failure is treated as a torn tail, because
//! without checksums the two cases cannot be told apart. That ambiguity
//! is exactly the silent-data-loss bug the v2 format fixes; `Database`
//! upgrades legacy logs to v2 via a checkpoint on first open.

use crate::crc::crc32;
use crate::error::{DbError, Result};
use crate::mvcc::Csn;
use crate::storage::RowId;
use crate::value::{decode_row, encode_row, Value};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// A logical redo record. `Insert`/`Delete`/`Update` carry the RowIds the
/// original execution produced; replay reproduces them because heap
/// allocation is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Raw DDL statement text, re-executed on replay.
    Ddl(String),
    /// Row inserted.
    Insert {
        /// Target table.
        table: String,
        /// Row values.
        row: Vec<Value>,
    },
    /// Row deleted.
    Delete {
        /// Target table.
        table: String,
        /// Heap address of the deleted row.
        row_id: RowId,
        /// The deleted row (needed for undo and index maintenance).
        row: Vec<Value>,
    },
    /// Row updated (old version delete-stamped, new version inserted).
    Update {
        /// Target table.
        table: String,
        /// Old heap address.
        old_id: RowId,
        /// Old values.
        old: Vec<Value>,
        /// New values.
        new: Vec<Value>,
    },
    /// Transaction committed at `csn` (marks the end of a replayable
    /// unit and pins the global commit order for replay).
    Commit {
        /// Commit sequence number assigned at commit time.
        csn: Csn,
    },
}

const TAG_DDL: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_UPDATE: u8 = 4;
const TAG_COMMIT: u8 = 5;

/// File magic opening every v2 (checksummed) log.
pub const WAL_MAGIC_V2: [u8; 8] = *b"EAWAL2\0\0";
/// First byte of every batch frame. Chosen so no single-bit flip of a
/// legacy record tag (`1..=4`) or of the v2 magic's first byte collides
/// with it.
pub const BATCH_MAGIC: u8 = 0xB5;
/// Bytes in a batch frame header: magic, len, header CRC, payload CRC.
pub const BATCH_HEADER_LEN: usize = 13;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = get_u32(buf, pos)? as usize;
    let s = buf
        .get(*pos..*pos + len)
        .ok_or_else(|| DbError::Storage("wal: truncated string".into()))?;
    *pos += len;
    String::from_utf8(s.to_vec()).map_err(|_| DbError::Storage("wal: bad utf8".into()))
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let s = buf
        .get(*pos..*pos + 4)
        .ok_or_else(|| DbError::Storage("wal: truncated".into()))?;
    *pos += 4;
    Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let s = buf
        .get(*pos..*pos + 8)
        .ok_or_else(|| DbError::Storage("wal: truncated".into()))?;
    *pos += 8;
    Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
}

impl WalRecord {
    /// Append the binary form to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Ddl(sql) => {
                out.push(TAG_DDL);
                put_str(out, sql);
            }
            WalRecord::Insert { table, row } => {
                out.push(TAG_INSERT);
                put_str(out, table);
                encode_row(row, out);
            }
            WalRecord::Delete { table, row_id, row } => {
                out.push(TAG_DELETE);
                put_str(out, table);
                out.extend_from_slice(&row_id.0.to_le_bytes());
                encode_row(row, out);
            }
            WalRecord::Update {
                table,
                old_id,
                old,
                new,
            } => {
                out.push(TAG_UPDATE);
                put_str(out, table);
                out.extend_from_slice(&old_id.0.to_le_bytes());
                encode_row(old, out);
                encode_row(new, out);
            }
            WalRecord::Commit { csn } => {
                out.push(TAG_COMMIT);
                out.extend_from_slice(&csn.to_le_bytes());
            }
        }
    }

    /// Append the v2 record frame (`[rlen][rcrc][bytes]`) to `out`: the
    /// unit transactions stage into a group-commit window buffer.
    pub fn encode_framed(&self, out: &mut Vec<u8>) {
        let mut body = Vec::new();
        self.encode(&mut body);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
    }

    /// Decode one record, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<WalRecord> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| DbError::Storage("wal: truncated".into()))?;
        *pos += 1;
        Ok(match tag {
            TAG_DDL => WalRecord::Ddl(get_str(buf, pos)?),
            TAG_INSERT => WalRecord::Insert {
                table: get_str(buf, pos)?,
                row: decode_row(buf, pos)?,
            },
            TAG_DELETE => {
                let table = get_str(buf, pos)?;
                let row_id = RowId(get_u64(buf, pos)?);
                let row = decode_row(buf, pos)?;
                WalRecord::Delete { table, row_id, row }
            }
            TAG_UPDATE => {
                let table = get_str(buf, pos)?;
                let old_id = RowId(get_u64(buf, pos)?);
                let old = decode_row(buf, pos)?;
                let new = decode_row(buf, pos)?;
                WalRecord::Update {
                    table,
                    old_id,
                    old,
                    new,
                }
            }
            TAG_COMMIT => WalRecord::Commit {
                csn: get_u64(buf, pos)?,
            },
            t => return Err(DbError::Storage(format!("wal: bad tag {t}"))),
        })
    }
}

/// Where and why a WAL image is damaged (distinct from a clean torn
/// tail, which is silently and safely dropped).
#[derive(Debug, Clone, PartialEq)]
pub struct WalCorruption {
    /// File offset of the damaged batch frame's first byte (0 when the
    /// file header itself is damaged).
    pub offset: u64,
    /// Highest commit CSN replayable from the clean prefix before the
    /// damage: nothing at or past `offset` is ever replayed.
    pub csn_horizon: Csn,
    /// Classification detail (bad magic, header CRC, payload CRC...).
    pub detail: String,
}

/// Outcome of parsing a WAL image: the replayable committed records of
/// the clean prefix, plus everything recovery needs to classify what it
/// found (format version, batch/frame counts, torn bytes, corruption).
#[derive(Debug, Clone, PartialEq)]
pub struct WalParse {
    /// Committed records of the clean prefix, in CSN order, including
    /// the `Commit` markers.
    pub records: Vec<WalRecord>,
    /// 0 = empty log, 1 = legacy unchecksummed, 2 = checksummed.
    pub format: u8,
    /// Complete, checksum-verified batch frames (v2 only).
    pub batches: usize,
    /// Record frames whose individual CRCs verified (v2 only).
    pub frames: u64,
    /// Highest commit CSN in `records` (0 if none).
    pub last_csn: Csn,
    /// Bytes dropped as a clean torn tail (crash mid-`sync_data`).
    pub torn_bytes: u64,
    /// Mid-file damage, if any: `records` stops strictly before it.
    pub corruption: Option<WalCorruption>,
}

/// The write-ahead log file (or an in-memory stand-in).
///
/// Both variants count *sync points* — the `sync_data` calls a
/// file-backed log issues, or would issue for the in-memory stand-in —
/// so group-commit batching is observable (and testable) regardless of
/// backing. One `append_*` call = one sync, however many transactions
/// it carries.
#[derive(Debug)]
pub enum Wal {
    /// No durability: records are discarded (pure in-memory database).
    Memory {
        /// Simulated `sync_data` calls (one per append).
        syncs: u64,
    },
    /// File-backed log.
    File {
        /// Log file path.
        path: PathBuf,
        /// Open handle in append mode.
        file: File,
        /// `sync_data` calls issued.
        syncs: u64,
    },
}

impl Wal {
    /// An in-memory no-durability log.
    pub fn memory() -> Wal {
        Wal::Memory { syncs: 0 }
    }

    /// Open (creating if needed) the WAL at `path`. A fresh (empty) file
    /// gets the v2 magic; an existing file is appended to as-is.
    pub fn open(path: &Path) -> Result<Wal> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| DbError::Storage(format!("open wal {path:?}: {e}")))?;
        let mut wal = Wal::File {
            path: path.to_path_buf(),
            file,
            syncs: 0,
        };
        if let Wal::File { file, path, .. } = &mut wal {
            let len = file
                .metadata()
                .map_err(|e| DbError::Storage(format!("stat wal {path:?}: {e}")))?
                .len();
            if len == 0 {
                file.write_all(&WAL_MAGIC_V2)
                    .and_then(|()| file.sync_data())
                    .map_err(|e| DbError::Storage(format!("init wal {path:?}: {e}")))?;
            }
        }
        Ok(wal)
    }

    /// Total sync points issued since this handle was opened.
    pub fn syncs(&self) -> u64 {
        match self {
            Wal::Memory { syncs } | Wal::File { syncs, .. } => *syncs,
        }
    }

    /// One write + one `sync_data` for `buf` (the group-commit unit).
    /// `buf` must already be a sealed batch frame — see [`seal_batch`].
    pub fn append_raw(&mut self, buf: &[u8]) -> Result<()> {
        match self {
            Wal::Memory { syncs } => {
                *syncs += 1;
                Ok(())
            }
            Wal::File { file, path, syncs } => {
                *syncs += 1;
                file.write_all(buf)
                    .and_then(|()| file.sync_data())
                    .map_err(|e| DbError::Storage(format!("append wal {path:?}: {e}")))
            }
        }
    }

    /// Seal `payload` (a run of record frames) into a batch frame and
    /// flush it: one write, one sync.
    pub fn append_batch(&mut self, payload: &[u8]) -> Result<()> {
        self.append_raw(&seal_batch(payload))
    }

    /// Append one committed transaction (records + `Commit { csn }`
    /// marker) as a single batch frame and flush: the solo-commit path,
    /// costing one sync.
    pub fn append_committed(&mut self, records: &[WalRecord], csn: Csn) -> Result<()> {
        let mut buf = Vec::new();
        for r in records {
            r.encode_framed(&mut buf);
        }
        WalRecord::Commit { csn }.encode_framed(&mut buf);
        self.append_batch(&buf)
    }

    /// Classify a WAL image and extract the clean committed prefix.
    ///
    /// Never panics, never returns a record at or past damage. The
    /// torn-tail/corruption distinction (v2):
    ///
    /// * file shorter than the magic, but a prefix of it → torn header,
    ///   empty log;
    /// * trailing bytes shorter than a batch header, starting with the
    ///   batch magic → torn tail (the header was cut mid-write);
    /// * complete, CRC-valid batch header whose payload runs past EOF →
    ///   torn tail (the header proves the intended length; the payload
    ///   simply never hit the disk);
    /// * anything else — bad batch magic, header CRC mismatch, payload
    ///   CRC mismatch, malformed record frame inside a CRC-valid
    ///   payload — is corruption: bytes were changed, not cut short.
    ///
    /// A torn tail drops the *whole* incomplete batch (group commit is
    /// only acknowledged after its single `sync_data`, so no transaction
    /// in a torn batch was ever reported durable).
    pub fn parse(buf: &[u8]) -> WalParse {
        let mut out = WalParse {
            records: Vec::new(),
            format: 0,
            batches: 0,
            frames: 0,
            last_csn: 0,
            torn_bytes: 0,
            corruption: None,
        };
        if buf.is_empty() {
            return out;
        }
        if buf.len() < WAL_MAGIC_V2.len() {
            if WAL_MAGIC_V2.starts_with(buf) {
                // Crash while writing the magic of a fresh log: nothing
                // was ever committed.
                out.format = 2;
                out.torn_bytes = buf.len() as u64;
            } else if (TAG_DDL..=TAG_UPDATE).contains(&buf[0]) {
                out.format = 1;
                Self::parse_legacy(buf, &mut out);
            } else {
                out.corruption = Some(WalCorruption {
                    offset: 0,
                    csn_horizon: 0,
                    detail: "unrecognised wal header".into(),
                });
            }
            return out;
        }
        if buf[..WAL_MAGIC_V2.len()] == WAL_MAGIC_V2 {
            out.format = 2;
            Self::parse_v2(buf, &mut out);
        } else if (TAG_DDL..=TAG_UPDATE).contains(&buf[0]) {
            // Legacy logs carry no magic and always open with a redo
            // record tag (redo precedes the commit marker). No single-bit
            // flip of the v2 magic's first byte lands in 1..=4, so a
            // damaged v2 header cannot masquerade as a legacy log.
            out.format = 1;
            Self::parse_legacy(buf, &mut out);
        } else {
            out.corruption = Some(WalCorruption {
                offset: 0,
                csn_horizon: 0,
                detail: "unrecognised wal header".into(),
            });
        }
        out
    }

    /// v2 batch-frame walk. `out.format` is already set.
    fn parse_v2(buf: &[u8], out: &mut WalParse) {
        let mut pos = WAL_MAGIC_V2.len();
        let mut pending: Vec<WalRecord> = Vec::new();
        let corrupt = |out: &mut WalParse, offset: usize, detail: String| {
            out.corruption = Some(WalCorruption {
                offset: offset as u64,
                csn_horizon: out.last_csn,
                detail,
            });
        };
        while pos < buf.len() {
            let rem = buf.len() - pos;
            if buf[pos] != BATCH_MAGIC {
                corrupt(out, pos, format!("bad batch magic 0x{:02x}", buf[pos]));
                return;
            }
            if rem < BATCH_HEADER_LEN {
                // Torn mid-header: every byte present is a genuine
                // prefix of the frame the writer was appending.
                out.torn_bytes = rem as u64;
                return;
            }
            let header = &buf[pos..pos + 5];
            let len =
                u32::from_le_bytes(buf[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
            let hcrc = u32::from_le_bytes(buf[pos + 5..pos + 9].try_into().expect("4 bytes"));
            let pcrc = u32::from_le_bytes(buf[pos + 9..pos + 13].try_into().expect("4 bytes"));
            if crc32(header) != hcrc {
                corrupt(out, pos, "batch header checksum mismatch".into());
                return;
            }
            if rem < BATCH_HEADER_LEN + len {
                // Header intact, so `len` is what the writer intended:
                // the payload was cut short by the crash.
                out.torn_bytes = rem as u64;
                return;
            }
            let payload = &buf[pos + BATCH_HEADER_LEN..pos + BATCH_HEADER_LEN + len];
            if crc32(payload) != pcrc {
                corrupt(out, pos, "batch payload checksum mismatch".into());
                return;
            }
            // The batch is checksum-verified; walk its record frames.
            let mut p = 0usize;
            let mut frames = 0u64;
            let mut recs: Vec<WalRecord> = Vec::new();
            let mut ok = true;
            while p < payload.len() {
                let Some(rlen_b) = payload.get(p..p + 4) else {
                    ok = false;
                    break;
                };
                let rlen = u32::from_le_bytes(rlen_b.try_into().expect("4 bytes")) as usize;
                let Some(rcrc_b) = payload.get(p + 4..p + 8) else {
                    ok = false;
                    break;
                };
                let rcrc = u32::from_le_bytes(rcrc_b.try_into().expect("4 bytes"));
                let Some(body) = payload.get(p + 8..p + 8 + rlen) else {
                    ok = false;
                    break;
                };
                if crc32(body) != rcrc {
                    ok = false;
                    break;
                }
                let mut rp = 0usize;
                match WalRecord::decode(body, &mut rp) {
                    Ok(r) if rp == body.len() => recs.push(r),
                    _ => {
                        ok = false;
                        break;
                    }
                }
                frames += 1;
                p += 8 + rlen;
            }
            if !ok {
                // The payload CRC passed but a record frame inside it is
                // malformed: still damage, never a torn tail (torn
                // writes cannot produce a CRC-valid payload).
                corrupt(out, pos, "malformed record frame in batch".into());
                return;
            }
            for r in recs {
                if let WalRecord::Commit { csn } = r {
                    out.records.append(&mut pending);
                    out.last_csn = csn;
                    out.records.push(r);
                } else {
                    pending.push(r);
                }
            }
            out.frames += frames;
            out.batches += 1;
            pos += BATCH_HEADER_LEN + len;
        }
        // Records staged without a commit marker (writer crash between
        // frames of a multi-batch transaction) are not replayable.
    }

    /// Legacy (pre-checksum) replay loop: decode until the first
    /// failure, keep only marker-terminated transactions. Kept verbatim
    /// so old logs still replay; its torn-tail/corruption ambiguity is
    /// why the v2 format exists.
    fn parse_legacy(buf: &[u8], out: &mut WalParse) {
        let mut pending = Vec::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            match WalRecord::decode(buf, &mut pos) {
                Ok(WalRecord::Commit { csn }) => {
                    out.records.append(&mut pending);
                    out.last_csn = csn;
                    out.records.push(WalRecord::Commit { csn });
                }
                Ok(r) => pending.push(r),
                Err(_) => {
                    out.torn_bytes = (buf.len() - pos) as u64;
                    break;
                }
            }
        }
    }

    /// Read and classify the log at `path`. IO failures (other than the
    /// file not existing, which yields an empty parse) are errors;
    /// corruption is *data*, reported inside the [`WalParse`].
    pub fn read_with_info(path: &Path) -> Result<WalParse> {
        let mut buf = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)
                    .map_err(|e| DbError::Storage(format!("read wal {path:?}: {e}")))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Wal::parse(&[])),
            Err(e) => return Err(DbError::Storage(format!("read wal {path:?}: {e}"))),
        }
        Ok(Wal::parse(&buf))
    }

    /// Read every complete committed transaction from the log at `path`,
    /// including the `Commit` markers (so recovery can track the CSN it
    /// replayed to). A trailing torn batch — crash mid-`sync_data` — is
    /// dropped whole; mid-file damage is a typed [`DbError::WalCorrupt`]
    /// naming the offset and the CSN horizon of the clean prefix.
    pub fn read_committed(path: &Path) -> Result<Vec<WalRecord>> {
        let parse = Self::read_with_info(path)?;
        if let Some(c) = parse.corruption {
            return Err(DbError::WalCorrupt {
                offset: c.offset,
                csn_horizon: c.csn_horizon,
                detail: c.detail,
            });
        }
        Ok(parse.records)
    }

    /// Truncate the log (after a checkpoint) and re-stamp the v2 magic.
    pub fn truncate(&mut self) -> Result<()> {
        match self {
            Wal::Memory { .. } => Ok(()),
            Wal::File { path, file, .. } => {
                *file = OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(&*path)
                    .map_err(|e| DbError::Storage(format!("truncate wal {path:?}: {e}")))?;
                file.write_all(&WAL_MAGIC_V2)
                    .and_then(|()| file.sync_data())
                    .map_err(|e| DbError::Storage(format!("init wal {path:?}: {e}")))?;
                Ok(())
            }
        }
    }
}

/// Wrap `payload` (a run of record frames) in a checksummed batch frame.
pub fn seal_batch(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(BATCH_HEADER_LEN + payload.len());
    out.push(BATCH_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let hcrc = crc32(&out[..5]);
    out.extend_from_slice(&hcrc.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Ddl("CREATE TABLE T (A INTEGER)".into()),
            WalRecord::Insert {
                table: "T".into(),
                row: vec![Value::Int(1), Value::Str("x".into())],
            },
            WalRecord::Delete {
                table: "T".into(),
                row_id: RowId(42),
                row: vec![Value::Int(1)],
            },
            WalRecord::Update {
                table: "T".into(),
                old_id: RowId(7),
                old: vec![Value::Int(1)],
                new: vec![Value::Int(2)],
            },
        ]
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("easia-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn record_codec_round_trip() {
        let mut all = sample_records();
        all.push(WalRecord::Commit { csn: 99 });
        for r in all {
            let mut buf = Vec::new();
            r.encode(&mut buf);
            let mut pos = 0;
            assert_eq!(WalRecord::decode(&buf, &mut pos).unwrap(), r);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn file_wal_round_trip() {
        let path = temp_path("wal-round-trip.log");
        let mut wal = Wal::open(&path).unwrap();
        let recs = sample_records();
        wal.append_committed(&recs[..2], 1).unwrap();
        wal.append_committed(&recs[2..], 2).unwrap();
        assert_eq!(wal.syncs(), 2);
        let got = Wal::read_committed(&path).unwrap();
        let mut want = recs[..2].to_vec();
        want.push(WalRecord::Commit { csn: 1 });
        want.extend(recs[2..].to_vec());
        want.push(WalRecord::Commit { csn: 2 });
        assert_eq!(got, want);
        let info = Wal::read_with_info(&path).unwrap();
        assert_eq!(info.format, 2);
        assert_eq!(info.batches, 2);
        assert_eq!(info.frames, 6);
        assert_eq!(info.last_csn, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_drops_whole_batch() {
        let path = temp_path("wal-torn.log");
        let mut wal = Wal::open(&path).unwrap();
        let recs = sample_records();
        wal.append_committed(&recs[..2], 1).unwrap();
        // Simulate a crash mid-append: seal a full second batch, then
        // cut the write short at every possible point. The whole torn
        // batch must be dropped, never an error, never a partial replay.
        let mut payload = Vec::new();
        recs[2].encode_framed(&mut payload);
        WalRecord::Commit { csn: 2 }.encode_framed(&mut payload);
        let sealed = seal_batch(&payload);
        let base = std::fs::read(&path).unwrap();
        let mut want = recs[..2].to_vec();
        want.push(WalRecord::Commit { csn: 1 });
        for cut in 0..sealed.len() {
            let mut img = base.clone();
            img.extend_from_slice(&sealed[..cut]);
            let parse = Wal::parse(&img);
            assert!(parse.corruption.is_none(), "cut at {cut} misclassified");
            assert_eq!(parse.records, want, "cut at {cut}");
            assert_eq!(parse.torn_bytes, cut as u64);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn uncommitted_transactions_not_replayed() {
        // A complete batch whose records carry no Commit marker is
        // verified but not replayed.
        let path = temp_path("wal-uncommitted.log");
        let recs = sample_records();
        let mut img = WAL_MAGIC_V2.to_vec();
        let mut p1 = Vec::new();
        recs[0].encode_framed(&mut p1);
        WalRecord::Commit { csn: 1 }.encode_framed(&mut p1);
        img.extend_from_slice(&seal_batch(&p1));
        let mut p2 = Vec::new();
        recs[1].encode_framed(&mut p2); // no commit marker
        img.extend_from_slice(&seal_batch(&p2));
        std::fs::write(&path, &img).unwrap();
        let got = Wal::read_committed(&path).unwrap();
        assert_eq!(got, vec![recs[0].clone(), WalRecord::Commit { csn: 1 }]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_flush_is_one_sync_in_csn_order() {
        let path = temp_path("wal-group.log");
        let mut wal = Wal::open(&path).unwrap();
        let recs = sample_records();
        // Three committers staged into one buffer, flushed together.
        let mut buf = Vec::new();
        for (i, r) in recs[1..4].iter().enumerate() {
            r.encode_framed(&mut buf);
            WalRecord::Commit {
                csn: (i + 1) as u64,
            }
            .encode_framed(&mut buf);
        }
        wal.append_batch(&buf).unwrap();
        assert_eq!(wal.syncs(), 1, "one flush for three committers");
        let got = Wal::read_committed(&path).unwrap();
        let csns: Vec<u64> = got
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit { csn } => Some(*csn),
                _ => None,
            })
            .collect();
        assert_eq!(csns, vec![1, 2, 3], "replay sees commits in CSN order");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_empties_log() {
        let path = temp_path("wal-truncate.log");
        let mut wal = Wal::open(&path).unwrap();
        wal.append_committed(&sample_records(), 1).unwrap();
        wal.truncate().unwrap();
        assert_eq!(Wal::read_committed(&path).unwrap(), vec![]);
        // Still usable after truncation.
        wal.append_committed(&sample_records()[..1], 2).unwrap();
        assert_eq!(Wal::read_committed(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_reads_empty() {
        let path = std::env::temp_dir().join("easia-wal-definitely-missing.log");
        let _ = std::fs::remove_file(&path);
        assert_eq!(Wal::read_committed(&path).unwrap(), vec![]);
    }

    #[test]
    fn memory_wal_counts_syncs() {
        let mut wal = Wal::memory();
        wal.append_committed(&sample_records(), 1).unwrap();
        wal.append_committed(&sample_records(), 2).unwrap();
        assert_eq!(wal.syncs(), 2);
        wal.truncate().unwrap();
    }

    #[test]
    fn legacy_unchecksummed_log_still_replays() {
        // A pre-v2 log: raw records, no magic, no frames.
        let path = temp_path("wal-legacy.log");
        let recs = sample_records();
        let mut img = Vec::new();
        recs[0].encode(&mut img);
        WalRecord::Commit { csn: 1 }.encode(&mut img);
        recs[1].encode(&mut img);
        WalRecord::Commit { csn: 2 }.encode(&mut img);
        std::fs::write(&path, &img).unwrap();
        let parse = Wal::read_with_info(&path).unwrap();
        assert_eq!(parse.format, 1);
        assert_eq!(
            parse.records,
            vec![
                recs[0].clone(),
                WalRecord::Commit { csn: 1 },
                recs[1].clone(),
                WalRecord::Commit { csn: 2 },
            ]
        );
        assert_eq!(parse.last_csn, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_typed_not_swallowed() {
        // Regression: damage in batch 2 of 3 must surface as WalCorrupt
        // at batch 2's offset — not be silently treated as a torn tail
        // that also discards the valid batch 3 behind it.
        let path = temp_path("wal-midfile.log");
        let mut wal = Wal::open(&path).unwrap();
        let recs = sample_records();
        wal.append_committed(&recs[..2], 1).unwrap();
        let b2_offset = std::fs::metadata(&path).unwrap().len();
        wal.append_committed(&recs[2..3], 2).unwrap();
        wal.append_committed(&recs[3..], 3).unwrap();
        let mut img = std::fs::read(&path).unwrap();
        // Flip one bit inside batch 2's payload.
        let flip = b2_offset as usize + BATCH_HEADER_LEN + 2;
        img[flip] ^= 0x10;
        std::fs::write(&path, &img).unwrap();
        let err = Wal::read_committed(&path).unwrap_err();
        match err {
            DbError::WalCorrupt {
                offset,
                csn_horizon,
                ..
            } => {
                assert_eq!(offset, b2_offset, "damage attributed to batch 2");
                assert_eq!(csn_horizon, 1, "clean prefix ends at csn 1");
            }
            other => panic!("expected WalCorrupt, got {other:?}"),
        }
        // The parse still exposes the clean prefix for salvage.
        let parse = Wal::read_with_info(&path).unwrap();
        assert_eq!(parse.records.len(), 3);
        assert_eq!(parse.last_csn, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_single_bit_flip_in_a_complete_log_is_detected() {
        // Exhaustive: a complete v2 image with 3 batches; flipping any
        // single bit anywhere must be classified as corruption (a
        // complete file has no torn tail to hide behind) and must never
        // panic or replay records past the damage.
        let recs = sample_records();
        let mut img = WAL_MAGIC_V2.to_vec();
        for (i, r) in recs.iter().enumerate().take(3) {
            let mut p = Vec::new();
            r.encode_framed(&mut p);
            WalRecord::Commit {
                csn: (i + 1) as u64,
            }
            .encode_framed(&mut p);
            img.extend_from_slice(&seal_batch(&p));
        }
        let clean = Wal::parse(&img);
        assert!(clean.corruption.is_none());
        assert_eq!(clean.batches, 3);
        for byte in 0..img.len() {
            for bit in 0..8 {
                let mut flipped = img.clone();
                flipped[byte] ^= 1 << bit;
                let parse = Wal::parse(&flipped);
                let c = parse
                    .corruption
                    .unwrap_or_else(|| panic!("flip at {byte}:{bit} undetected"));
                assert!(
                    c.offset as usize <= byte,
                    "flip at {byte}:{bit}: offset {} past damage",
                    c.offset
                );
                assert!(parse.records.len() <= clean.records.len());
            }
        }
    }
}
