//! Render expressions back to SQL text.
//!
//! The federation layer ships pushed-down predicates to remote sites as
//! SQL text (the request half of the SQL/MED wire protocol), and the
//! `EXPLAIN FEDERATED` output prints the conjuncts it pushed. Both need
//! an AST → SQL printer whose output re-parses to an equivalent tree.
//!
//! Data values are rendered conservatively: anything that cannot be
//! written as a portable literal (timestamps, LOBs, datalinks) should be
//! externalised to a `?` parameter by the caller before rendering — the
//! federation planner does exactly that, so literal rendering here is
//! only exercised for display.

use super::ast::{BinaryOp, Expr, UnaryOp};
use crate::value::Value;

/// Render an expression as SQL text. Parenthesises every binary
/// operation, so operator precedence never has to be reconstructed.
pub fn expr_to_sql(e: &Expr) -> String {
    match e {
        Expr::Literal(v) => literal_to_sql(v),
        Expr::Column { table, name } => match table {
            Some(t) => format!("{t}.{name}"),
            None => name.clone(),
        },
        Expr::Unary(op, inner) => match op {
            UnaryOp::Neg => format!("(-{})", expr_to_sql(inner)),
            UnaryOp::Not => format!("(NOT {})", expr_to_sql(inner)),
        },
        Expr::Binary(l, op, r) => {
            format!("({} {} {})", expr_to_sql(l), binop_sql(*op), expr_to_sql(r))
        }
        Expr::IsNull { expr, negated } => format!(
            "({} IS {}NULL)",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "({} {}LIKE {})",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" },
            expr_to_sql(pattern)
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let items: Vec<String> = list.iter().map(expr_to_sql).collect();
            format!(
                "({} {}IN ({}))",
                expr_to_sql(expr),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => format!(
            "({} {}BETWEEN {} AND {})",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" },
            expr_to_sql(lo),
            expr_to_sql(hi)
        ),
        Expr::Function { name, args, star } => {
            if *star {
                format!("{name}(*)")
            } else {
                let items: Vec<String> = args.iter().map(expr_to_sql).collect();
                format!("{name}({})", items.join(", "))
            }
        }
        Expr::Param(_) => "?".to_string(),
    }
}

fn binop_sql(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
        BinaryOp::Mod => "%",
        BinaryOp::Concat => "||",
        BinaryOp::Eq => "=",
        BinaryOp::NotEq => "<>",
        BinaryOp::Lt => "<",
        BinaryOp::LtEq => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::GtEq => ">=",
        BinaryOp::And => "AND",
        BinaryOp::Or => "OR",
    }
}

/// Render a value as a SQL literal. Strings are quoted with `''`
/// doubling; doubles use Rust's shortest round-trip formatting.
/// Timestamps render as their integer epoch (display only — ship them
/// as parameters when the text must re-parse to the same type).
pub fn literal_to_sql(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Double(d) => format!("{d:?}"),
        Value::Str(s) | Value::Clob(s) | Value::Datalink(s) => {
            format!("'{}'", s.replace('\'', "''"))
        }
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Timestamp(t) => t.to_string(),
        Value::Blob(b) => format!("'<blob {} bytes>'", b.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::{parse, Stmt};

    fn where_expr(sql: &str) -> Expr {
        match parse(sql).unwrap() {
            Stmt::Select(s) => s.where_clause.unwrap(),
            other => panic!("expected select, got {other:?}"),
        }
    }

    fn roundtrips(pred: &str) {
        let e = where_expr(&format!("SELECT A FROM T WHERE {pred}"));
        let text = expr_to_sql(&e);
        let e2 = where_expr(&format!("SELECT A FROM T WHERE {text}"));
        // Re-render: the second pass must be a fixed point.
        assert_eq!(text, expr_to_sql(&e2), "render not stable for {pred}");
    }

    #[test]
    fn rendered_predicates_reparse() {
        for pred in [
            "A = 1 AND B < 2.5",
            "A LIKE 'Chan%' OR NOT (B >= 3)",
            "A IN (1, 2, 3) AND B IS NOT NULL",
            "A BETWEEN 1 AND 10",
            "A = 'O''Brien'",
            "A + B * 2 > C - 1",
            "UPPER(A) = 'X'",
            "A = ? AND B <> ?",
        ] {
            roundtrips(pred);
        }
    }

    #[test]
    fn literal_quoting() {
        assert_eq!(literal_to_sql(&Value::Str("it's".into())), "'it''s'");
        assert_eq!(literal_to_sql(&Value::Double(0.5)), "0.5");
        assert_eq!(literal_to_sql(&Value::Null), "NULL");
    }
}
