//! SQL front-end: lexer, AST, recursive-descent parser.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, SelectStmt, Stmt};
pub use parser::parse;
