//! SQL front-end: lexer, AST, recursive-descent parser.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod render;

pub use ast::{Expr, SelectStmt, Stmt};
pub use parser::parse;
pub use render::{expr_to_sql, literal_to_sql};
