//! Recursive-descent parser.

use super::ast::*;
use super::lexer::{lex, Sym, Token};
use crate::error::{DbError, Result};
use crate::schema::DatalinkSpec;
use crate::value::{SqlType, Value};

/// Parse one SQL statement (an optional trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Stmt> {
    let tokens = lex(sql)?;
    let mut p = P {
        toks: tokens,
        i: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.accept_sym(Sym::Semicolon);
    if !p.at_end() {
        return Err(DbError::Parse(format!(
            "trailing input after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct P {
    toks: Vec<Token>,
    i: usize,
    params: usize,
}

impl P {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.i)
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        let at = match self.peek() {
            Some(t) => format!("{t:?}"),
            None => "end of input".into(),
        };
        Err(DbError::Parse(format!("{} (at {at})", msg.into())))
    }

    /// Consume a keyword (case-folded identifier) if it matches.
    fn accept_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(w)) if w == kw) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw}"))
        }
    }

    fn accept_sym(&mut self, s: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(x)) if *x == s) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: Sym) -> Result<()> {
        if self.accept_sym(s) {
            Ok(())
        } else {
            self.err(format!("expected '{s}'"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(w)) => Ok(w),
            other => Err(DbError::Parse(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(w)) if w == kw)
    }

    fn statement(&mut self) -> Result<Stmt> {
        if self.peek_kw("SELECT") {
            return Ok(Stmt::Select(self.select()?));
        }
        if self.accept_kw("INSERT") {
            return self.insert();
        }
        if self.accept_kw("UPDATE") {
            return self.update();
        }
        if self.accept_kw("DELETE") {
            return self.delete();
        }
        if self.accept_kw("CREATE") {
            if self.accept_kw("TABLE") {
                return self.create_table();
            }
            let unique = self.accept_kw("UNIQUE");
            self.expect_kw("INDEX")?;
            return self.create_index(unique);
        }
        if self.accept_kw("DROP") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            return Ok(Stmt::DropTable { name });
        }
        if self.accept_kw("BEGIN") {
            self.accept_kw("TRANSACTION");
            self.accept_kw("WORK");
            return Ok(Stmt::Begin);
        }
        if self.accept_kw("COMMIT") {
            self.accept_kw("WORK");
            return Ok(Stmt::Commit);
        }
        if self.accept_kw("ROLLBACK") {
            self.accept_kw("WORK");
            return Ok(Stmt::Rollback);
        }
        self.err("expected a statement")
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.accept_kw("DISTINCT");
        if distinct {
            // allow `DISTINCT` only; `ALL` explicitly resets it
        } else {
            self.accept_kw("ALL");
        }
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.accept_sym(Sym::Comma) {
                break;
            }
        }
        let mut from = None;
        let mut joins = Vec::new();
        if self.accept_kw("FROM") {
            from = Some(self.table_ref()?);
            loop {
                let kind = if self.accept_kw("INNER") {
                    self.expect_kw("JOIN")?;
                    JoinKind::Inner
                } else if self.accept_kw("LEFT") {
                    self.accept_kw("OUTER");
                    self.expect_kw("JOIN")?;
                    JoinKind::Left
                } else if self.accept_kw("JOIN") {
                    JoinKind::Inner
                } else {
                    break;
                };
                let table = self.table_ref()?;
                self.expect_kw("ON")?;
                let on = self.expr()?;
                joins.push(Join { kind, table, on });
            }
        }
        let where_clause = if self.accept_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.accept_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.accept_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let having = if self.accept_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.accept_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.accept_kw("DESC") {
                    false
                } else {
                    self.accept_kw("ASC");
                    true
                };
                order_by.push(OrderBy { expr, asc });
                if !self.accept_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.accept_kw("LIMIT") {
            match self.bump() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => return Err(DbError::Parse(format!("bad LIMIT: {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.accept_sym(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `table.*`
        if let (
            Some(Token::Ident(t)),
            Some(Token::Symbol(Sym::Dot)),
            Some(Token::Symbol(Sym::Star)),
        ) = (
            self.toks.get(self.i),
            self.toks.get(self.i + 1),
            self.toks.get(self.i + 2),
        ) {
            let t = t.clone();
            self.i += 3;
            return Ok(SelectItem::QualifiedWildcard(t));
        }
        let expr = self.expr()?;
        let alias = if self.accept_kw("AS") {
            Some(self.ident()?)
        } else {
            // Bare alias (ident not followed by a clause keyword).
            match self.peek() {
                Some(Token::Ident(w)) if !is_clause_keyword(w) => Some(self.ident()?),
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = match self.peek() {
            Some(Token::Ident(w)) if w == "AS" => {
                self.i += 1;
                Some(self.ident()?)
            }
            Some(Token::Ident(w)) if !is_clause_keyword(w) => Some(self.ident()?),
            _ => None,
        };
        Ok(TableRef { name, alias })
    }

    fn insert(&mut self) -> Result<Stmt> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.accept_sym(Sym::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.accept_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym(Sym::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.accept_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            rows.push(row);
            if !self.accept_sym(Sym::Comma) {
                break;
            }
        }
        Ok(Stmt::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Stmt> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym(Sym::Eq)?;
            let e = self.expr()?;
            sets.push((col, e));
            if !self.accept_sym(Sym::Comma) {
                break;
            }
        }
        let where_clause = if self.accept_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Stmt> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.accept_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete {
            table,
            where_clause,
        })
    }

    fn create_index(&mut self, unique: bool) -> Result<Stmt> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_sym(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if !self.accept_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        Ok(Stmt::CreateIndex {
            name,
            table,
            columns,
            unique,
        })
    }

    fn create_table(&mut self) -> Result<Stmt> {
        let name = self.ident()?;
        self.expect_sym(Sym::LParen)?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.peek_kw("PRIMARY") {
                self.bump();
                self.expect_kw("KEY")?;
                constraints.push(TableConstraint::PrimaryKey(self.paren_name_list()?));
            } else if self.peek_kw("FOREIGN") {
                self.bump();
                self.expect_kw("KEY")?;
                let cols = self.paren_name_list()?;
                self.expect_kw("REFERENCES")?;
                let ref_table = self.ident()?;
                let ref_columns = self.paren_name_list()?;
                constraints.push(TableConstraint::ForeignKey {
                    columns: cols,
                    ref_table,
                    ref_columns,
                });
            } else if self.peek_kw("UNIQUE") {
                self.bump();
                constraints.push(TableConstraint::Unique(self.paren_name_list()?));
            } else {
                columns.push(self.column_def()?);
            }
            if !self.accept_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        Ok(Stmt::CreateTable {
            name,
            columns,
            constraints,
        })
    }

    fn paren_name_list(&mut self) -> Result<Vec<String>> {
        self.expect_sym(Sym::LParen)?;
        let mut names = Vec::new();
        loop {
            names.push(self.ident()?);
            if !self.accept_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        Ok(names)
    }

    fn column_def(&mut self) -> Result<ColumnDefAst> {
        let name = self.ident()?;
        let ty = self.sql_type()?;
        let mut def = ColumnDefAst {
            name,
            ty,
            not_null: false,
            primary_key: false,
            unique: false,
            references: None,
            datalink: if ty == SqlType::Datalink {
                Some(DatalinkSpec::default())
            } else {
                None
            },
        };
        if ty == SqlType::Datalink {
            def.datalink = Some(self.datalink_options()?);
        }
        loop {
            if self.accept_kw("NOT") {
                self.expect_kw("NULL")?;
                def.not_null = true;
            } else if self.accept_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                def.primary_key = true;
            } else if self.accept_kw("UNIQUE") {
                def.unique = true;
            } else if self.accept_kw("REFERENCES") {
                let t = self.ident()?;
                self.expect_sym(Sym::LParen)?;
                let c = self.ident()?;
                self.expect_sym(Sym::RParen)?;
                def.references = Some((t, c));
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn sql_type(&mut self) -> Result<SqlType> {
        let name = self.ident()?;
        Ok(match name.as_str() {
            "INTEGER" | "INT" | "BIGINT" | "SMALLINT" => SqlType::Integer,
            "DOUBLE" | "FLOAT" | "REAL" => {
                self.accept_kw("PRECISION");
                SqlType::Double
            }
            "VARCHAR" | "CHAR" | "CHARACTER" => {
                let mut n = 255usize;
                if self.accept_sym(Sym::LParen) {
                    match self.bump() {
                        Some(Token::Int(v)) if v > 0 => n = v as usize,
                        other => return Err(DbError::Parse(format!("bad length: {other:?}"))),
                    }
                    self.expect_sym(Sym::RParen)?;
                }
                SqlType::Varchar(n)
            }
            "BOOLEAN" | "BOOL" => SqlType::Boolean,
            "TIMESTAMP" | "DATE" => SqlType::Timestamp,
            "BLOB" => SqlType::Blob,
            "CLOB" | "TEXT" => SqlType::Clob,
            "DATALINK" => SqlType::Datalink,
            other => return Err(DbError::Parse(format!("unknown type {other}"))),
        })
    }

    /// Parse SQL/MED DATALINK options:
    /// `LINKTYPE URL`, `[NO] FILE LINK CONTROL`, `INTEGRITY ALL|NONE`,
    /// `READ PERMISSION DB|FS`, `WRITE PERMISSION BLOCKED|FS`,
    /// `RECOVERY YES|NO`, `ON UNLINK RESTORE|DELETE`.
    fn datalink_options(&mut self) -> Result<DatalinkSpec> {
        let mut spec = DatalinkSpec::default();
        loop {
            if self.accept_kw("LINKTYPE") {
                self.expect_kw("URL")?;
            } else if self.accept_kw("NO") {
                self.expect_kw("FILE")?;
                self.expect_kw("LINK")?;
                self.expect_kw("CONTROL")?;
                spec = DatalinkSpec::uncontrolled();
            } else if self.accept_kw("FILE") {
                self.expect_kw("LINK")?;
                self.expect_kw("CONTROL")?;
                spec.file_link_control = true;
            } else if self.accept_kw("INTEGRITY") {
                if self.accept_kw("ALL") {
                    spec.integrity_all = true;
                } else if self.accept_kw("NONE") {
                    spec.integrity_all = false;
                } else {
                    return self.err("expected ALL or NONE after INTEGRITY");
                }
            } else if self.accept_kw("READ") {
                self.expect_kw("PERMISSION")?;
                if self.accept_kw("DB") {
                    spec.read_permission_db = true;
                } else if self.accept_kw("FS") {
                    spec.read_permission_db = false;
                } else {
                    return self.err("expected DB or FS after READ PERMISSION");
                }
            } else if self.accept_kw("WRITE") {
                self.expect_kw("PERMISSION")?;
                if self.accept_kw("BLOCKED") {
                    spec.write_permission_blocked = true;
                } else if self.accept_kw("FS") {
                    spec.write_permission_blocked = false;
                } else {
                    return self.err("expected BLOCKED or FS after WRITE PERMISSION");
                }
            } else if self.accept_kw("RECOVERY") {
                if self.accept_kw("YES") {
                    spec.recovery = true;
                } else if self.accept_kw("NO") {
                    spec.recovery = false;
                } else {
                    return self.err("expected YES or NO after RECOVERY");
                }
            } else if self.accept_kw("ON") {
                self.expect_kw("UNLINK")?;
                if self.accept_kw("RESTORE") {
                    spec.on_unlink_restore = true;
                } else if self.accept_kw("DELETE") {
                    spec.on_unlink_restore = false;
                } else {
                    return self.err("expected RESTORE or DELETE after ON UNLINK");
                }
            } else {
                break;
            }
        }
        Ok(spec)
    }

    // ---- expressions: precedence climbing ----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.accept_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(Box::new(lhs), BinaryOp::Or, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.accept_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(Box::new(lhs), BinaryOp::And, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.accept_kw("NOT") {
            let e = self.not_expr()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(e)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr> {
        let lhs = self.additive()?;
        // IS [NOT] NULL
        if self.accept_kw("IS") {
            let negated = self.accept_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let negated = self.accept_kw("NOT");
        if self.accept_kw("LIKE") {
            let pat = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pat),
                negated,
            });
        }
        if self.accept_kw("IN") {
            self.expect_sym(Sym::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.accept_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.accept_kw("BETWEEN") {
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if negated {
            return self.err("expected LIKE, IN or BETWEEN after NOT");
        }
        // Comparison operators.
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinaryOp::Eq),
            Some(Token::Symbol(Sym::NotEq)) => Some(BinaryOp::NotEq),
            Some(Token::Symbol(Sym::Lt)) => Some(BinaryOp::Lt),
            Some(Token::Symbol(Sym::LtEq)) => Some(BinaryOp::LtEq),
            Some(Token::Symbol(Sym::Gt)) => Some(BinaryOp::Gt),
            Some(Token::Symbol(Sym::GtEq)) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.additive()?;
            return Ok(Expr::Binary(Box::new(lhs), op, Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => BinaryOp::Add,
                Some(Token::Symbol(Sym::Minus)) => BinaryOp::Sub,
                Some(Token::Symbol(Sym::Concat)) => BinaryOp::Concat,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => BinaryOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => BinaryOp::Div,
                Some(Token::Symbol(Sym::Percent)) => BinaryOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.accept_sym(Sym::Minus) {
            let e = self.unary()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(e)));
        }
        if self.accept_sym(Sym::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(Token::Int(v)) => Ok(Expr::Literal(Value::Int(v))),
            Some(Token::Number(v)) => Ok(Expr::Literal(Value::Double(v))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::Symbol(Sym::Question)) => {
                self.params += 1;
                Ok(Expr::Param(self.params))
            }
            Some(Token::Symbol(Sym::LParen)) => {
                let e = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(word)) => match word.as_str() {
                "NULL" => Ok(Expr::Literal(Value::Null)),
                "TRUE" => Ok(Expr::Literal(Value::Bool(true))),
                "FALSE" => Ok(Expr::Literal(Value::Bool(false))),
                _ => {
                    // Function call?
                    if self.accept_sym(Sym::LParen) {
                        if self.accept_sym(Sym::Star) {
                            self.expect_sym(Sym::RParen)?;
                            return Ok(Expr::Function {
                                name: word,
                                args: vec![],
                                star: true,
                            });
                        }
                        let mut args = Vec::new();
                        if !self.accept_sym(Sym::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.accept_sym(Sym::Comma) {
                                    break;
                                }
                            }
                            self.expect_sym(Sym::RParen)?;
                        }
                        return Ok(Expr::Function {
                            name: word,
                            args,
                            star: false,
                        });
                    }
                    // Qualified column?
                    if self.accept_sym(Sym::Dot) {
                        let col = self.ident()?;
                        return Ok(Expr::Column {
                            table: Some(word),
                            name: col,
                        });
                    }
                    Ok(Expr::Column {
                        table: None,
                        name: word,
                    })
                }
            },
            other => Err(DbError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

fn is_clause_keyword(w: &str) -> bool {
    matches!(
        w,
        "FROM"
            | "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "JOIN"
            | "INNER"
            | "LEFT"
            | "ON"
            | "AND"
            | "OR"
            | "AS"
            | "SET"
            | "VALUES"
            | "UNION"
            | "ASC"
            | "DESC"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Stmt::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT * FROM simulation");
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
        assert_eq!(s.from.unwrap().name, "SIMULATION");
    }

    #[test]
    fn qbe_style_select() {
        let s = sel("SELECT TITLE, AUTHOR_KEY FROM SIMULATION \
             WHERE TITLE LIKE '%turbulence%' AND GRID_SIZE >= 256 \
             ORDER BY TITLE DESC LIMIT 10");
        assert_eq!(s.items.len(), 2);
        assert!(s.where_clause.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(!s.order_by[0].asc);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn joins() {
        let s = sel("SELECT s.TITLE, a.NAME FROM SIMULATION s \
             JOIN AUTHOR a ON s.AUTHOR_KEY = a.AUTHOR_KEY \
             LEFT JOIN RESULT_FILE r ON r.SIMULATION_KEY = s.SIMULATION_KEY");
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.joins[0].kind, JoinKind::Inner);
        assert_eq!(s.joins[1].kind, JoinKind::Left);
        assert_eq!(s.from.unwrap().alias.as_deref(), Some("S"));
    }

    #[test]
    fn aggregates_and_grouping() {
        let s = sel(
            "SELECT AUTHOR_KEY, COUNT(*), MAX(GRID_SIZE) FROM SIMULATION \
             GROUP BY AUTHOR_KEY HAVING COUNT(*) > 1",
        );
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        match &s.items[1] {
            SelectItem::Expr {
                expr: Expr::Function { name, star, .. },
                ..
            } => {
                assert_eq!(name, "COUNT");
                assert!(*star);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let st =
            parse("INSERT INTO author (author_key, name) VALUES ('A1', 'Mark'), ('A2', 'Jasmin')")
                .unwrap();
        match st {
            Stmt::Insert {
                table,
                columns,
                rows,
            } => {
                assert_eq!(table, "AUTHOR");
                assert_eq!(columns, vec!["AUTHOR_KEY", "NAME"]);
                assert_eq!(rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_and_delete() {
        assert!(matches!(
            parse("UPDATE t SET a = 1, b = 'x' WHERE k = 2").unwrap(),
            Stmt::Update { sets, .. } if sets.len() == 2
        ));
        assert!(matches!(
            parse("DELETE FROM t WHERE a IS NOT NULL").unwrap(),
            Stmt::Delete { .. }
        ));
    }

    #[test]
    fn create_table_with_datalink() {
        let st = parse(
            "CREATE TABLE result_file (
                file_name VARCHAR(100) NOT NULL,
                simulation_key VARCHAR(30) REFERENCES simulation(simulation_key),
                file_size INTEGER,
                download_result DATALINK LINKTYPE URL FILE LINK CONTROL
                    INTEGRITY ALL READ PERMISSION DB WRITE PERMISSION BLOCKED
                    RECOVERY YES ON UNLINK RESTORE,
                PRIMARY KEY (file_name, simulation_key)
            )",
        )
        .unwrap();
        match st {
            Stmt::CreateTable {
                name,
                columns,
                constraints,
            } => {
                assert_eq!(name, "RESULT_FILE");
                assert_eq!(columns.len(), 4);
                let dl = columns[3].datalink.as_ref().unwrap();
                assert!(dl.file_link_control && dl.read_permission_db && dl.recovery);
                assert!(matches!(
                    &constraints[0],
                    TableConstraint::PrimaryKey(cols) if cols.len() == 2
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn datalink_no_link_control() {
        let st = parse("CREATE TABLE t (d DATALINK LINKTYPE URL NO FILE LINK CONTROL)").unwrap();
        match st {
            Stmt::CreateTable { columns, .. } => {
                let dl = columns[0].datalink.as_ref().unwrap();
                assert!(!dl.file_link_control);
                assert!(!dl.read_permission_db);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn foreign_key_constraint() {
        let st = parse(
            "CREATE TABLE r (a INTEGER, b INTEGER,
             FOREIGN KEY (a, b) REFERENCES s (x, y))",
        )
        .unwrap();
        match st {
            Stmt::CreateTable { constraints, .. } => match &constraints[0] {
                TableConstraint::ForeignKey {
                    columns,
                    ref_table,
                    ref_columns,
                } => {
                    assert_eq!(columns, &vec!["A", "B"]);
                    assert_eq!(ref_table, "S");
                    assert_eq!(ref_columns, &vec!["X", "Y"]);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let s = sel("SELECT 1 + 2 * 3");
        match &s.items[0] {
            SelectItem::Expr {
                expr: Expr::Binary(_, BinaryOp::Add, rhs),
                ..
            } => assert!(matches!(**rhs, Expr::Binary(_, BinaryOp::Mul, _))),
            other => panic!("{other:?}"),
        }
        // AND binds tighter than OR.
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        assert!(matches!(
            s.where_clause.unwrap(),
            Expr::Binary(_, BinaryOp::Or, _)
        ));
    }

    #[test]
    fn predicates() {
        let s = sel("SELECT * FROM t WHERE a NOT LIKE 'x%' AND b IN (1,2) AND c BETWEEN 1 AND 5 AND d IS NULL");
        let mut likes = 0;
        let mut ins = 0;
        let mut betweens = 0;
        let mut nulls = 0;
        s.where_clause.unwrap().walk(&mut |e| match e {
            Expr::Like { negated, .. } => {
                assert!(negated);
                likes += 1;
            }
            Expr::InList { .. } => ins += 1,
            Expr::Between { .. } => betweens += 1,
            Expr::IsNull { .. } => nulls += 1,
            _ => {}
        });
        assert_eq!((likes, ins, betweens, nulls), (1, 1, 1, 1));
    }

    #[test]
    fn params_numbered() {
        let s = sel("SELECT * FROM t WHERE a = ? AND b = ?");
        let mut params = Vec::new();
        s.where_clause.unwrap().walk(&mut |e| {
            if let Expr::Param(n) = e {
                params.push(*n);
            }
        });
        assert_eq!(params, vec![1, 2]);
    }

    #[test]
    fn transactions() {
        assert_eq!(parse("BEGIN").unwrap(), Stmt::Begin);
        assert_eq!(parse("BEGIN TRANSACTION;").unwrap(), Stmt::Begin);
        assert_eq!(parse("COMMIT WORK").unwrap(), Stmt::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Stmt::Rollback);
    }

    #[test]
    fn create_index_stmt() {
        assert!(matches!(
            parse("CREATE UNIQUE INDEX idx_sim ON simulation (simulation_key)").unwrap(),
            Stmt::CreateIndex { unique: true, .. }
        ));
    }

    #[test]
    fn error_cases() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("INSERT INTO t VALUES").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra garbage garbage2").is_err());
        assert!(parse("FROB THE TABLE").is_err());
    }

    #[test]
    fn select_distinct() {
        assert!(sel("SELECT DISTINCT author_key FROM simulation").distinct);
    }

    #[test]
    fn table_less_select() {
        let s = sel("SELECT 1 + 1 AS two");
        assert!(s.from.is_none());
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr { alias: Some(a), .. } if a == "TWO"
        ));
    }

    #[test]
    fn qualified_wildcard() {
        let s = sel("SELECT s.* FROM simulation s");
        assert_eq!(s.items, vec![SelectItem::QualifiedWildcard("S".into())]);
    }
}
