//! Abstract syntax tree for the supported SQL subset.

use crate::schema::DatalinkSpec;
use crate::value::{SqlType, Value};

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference: optional table qualifier + column name.
    Column {
        /// Table or alias qualifier, if written.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary operator.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operator.
    Binary(Box<Expr>, BinaryOp, Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (`%`/`_` wildcards).
    Like {
        /// String operand.
        expr: Box<Expr>,
        /// Pattern operand.
        pattern: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// Probe operand.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi`.
    Between {
        /// Probe operand.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// Scalar or aggregate function call. `COUNT(*)` is represented with
    /// `star = true` and empty args.
    Function {
        /// Function name, upper-cased.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// True for `COUNT(*)`.
        star: bool,
    },
    /// Positional parameter `?` (1-based index assigned left to right).
    Param(usize),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

/// One item in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `table.*`
    QualifiedWildcard(String),
    /// Expression with optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
}

/// A table reference in FROM, with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub name: String,
    /// Alias, if given.
    pub alias: Option<String>,
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT [OUTER] JOIN.
    Left,
}

/// A JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join kind.
    pub kind: JoinKind,
    /// Joined table.
    pub table: TableRef,
    /// ON condition.
    pub on: Expr,
}

/// Sort direction for ORDER BY.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// Sort key expression.
    pub expr: Expr,
    /// True for ascending (default).
    pub asc: bool,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// DISTINCT flag.
    pub distinct: bool,
    /// Select list.
    pub items: Vec<SelectItem>,
    /// FROM table (None for table-less `SELECT 1+1`).
    pub from: Option<TableRef>,
    /// JOIN clauses, in order.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderBy>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDefAst {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: SqlType,
    /// NOT NULL.
    pub not_null: bool,
    /// Column-level PRIMARY KEY.
    pub primary_key: bool,
    /// UNIQUE.
    pub unique: bool,
    /// `REFERENCES table(column)`.
    pub references: Option<(String, String)>,
    /// DATALINK options, when `ty` is [`SqlType::Datalink`].
    pub datalink: Option<DatalinkSpec>,
}

/// Table-level constraint in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub enum TableConstraint {
    /// `PRIMARY KEY (c1, c2, ...)`.
    PrimaryKey(Vec<String>),
    /// `FOREIGN KEY (c...) REFERENCES t (c...)`.
    ForeignKey {
        /// Referencing columns.
        columns: Vec<String>,
        /// Referenced table.
        ref_table: String,
        /// Referenced columns.
        ref_columns: Vec<String>,
    },
    /// `UNIQUE (c1, ...)`.
    Unique(Vec<String>),
}

/// Any SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// SELECT query.
    Select(SelectStmt),
    /// INSERT INTO t [(cols)] VALUES (...), (...)
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list (empty = all columns in order).
        columns: Vec<String>,
        /// Row value lists.
        rows: Vec<Vec<Expr>>,
    },
    /// UPDATE t SET c = e, ... [WHERE p]
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Predicate.
        where_clause: Option<Expr>,
    },
    /// DELETE FROM t [WHERE p]
    Delete {
        /// Target table.
        table: String,
        /// Predicate.
        where_clause: Option<Expr>,
    },
    /// CREATE TABLE
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDefAst>,
        /// Table-level constraints.
        constraints: Vec<TableConstraint>,
    },
    /// DROP TABLE t
    DropTable {
        /// Table name.
        name: String,
    },
    /// CREATE [UNIQUE] INDEX name ON table (cols)
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Key columns.
        columns: Vec<String>,
        /// Uniqueness constraint.
        unique: bool,
    },
    /// BEGIN [TRANSACTION]
    Begin,
    /// COMMIT
    Commit,
    /// ROLLBACK
    Rollback,
}

impl Expr {
    /// Convenience: build `col = 'value'` equality predicates.
    pub fn eq_str(column: &str, value: &str) -> Expr {
        Expr::Binary(
            Box::new(Expr::Column {
                table: None,
                name: column.to_ascii_uppercase(),
            }),
            BinaryOp::Eq,
            Box::new(Expr::Literal(Value::Str(value.to_string()))),
        )
    }

    /// Walk the expression tree, visiting every node.
    pub fn walk(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary(_, e) => e.walk(f),
            Expr::Binary(l, _, r) => {
                l.walk(f);
                r.walk(f);
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.walk(f);
                lo.walk(f);
                hi.walk(f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) => {}
        }
    }

    /// True if the expression contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Function { name, .. } = e {
                if matches!(name.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX") {
                    found = true;
                }
            }
        });
        found
    }
}
