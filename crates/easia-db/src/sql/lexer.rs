//! SQL tokeniser.
//!
//! Keywords are case-insensitive; identifiers are case-folded to upper
//! case (double-quoted identifiers preserve case); string literals use
//! single quotes with `''` escaping, exactly the form the XUIS operation
//! conditions use (`<eq>'S19990110150932'</eq>`).

use crate::error::{DbError, Result};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier, upper-cased.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Number(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// Punctuation / operator.
    Symbol(Sym),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Concat,
    Semicolon,
    Question,
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Sym::LParen => "(",
            Sym::RParen => ")",
            Sym::Comma => ",",
            Sym::Dot => ".",
            Sym::Star => "*",
            Sym::Plus => "+",
            Sym::Minus => "-",
            Sym::Slash => "/",
            Sym::Percent => "%",
            Sym::Eq => "=",
            Sym::NotEq => "<>",
            Sym::Lt => "<",
            Sym::LtEq => "<=",
            Sym::Gt => ">",
            Sym::GtEq => ">=",
            Sym::Concat => "||",
            Sym::Semicolon => ";",
            Sym::Question => "?",
        };
        f.write_str(s)
    }
}

/// Tokenise SQL text.
pub fn lex(sql: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                // Line comment.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => return Err(DbError::Parse("unterminated string literal".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => {
                            return Err(DbError::Parse("unterminated quoted identifier".into()))
                        }
                    }
                }
                out.push(Token::Ident(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if matches!(chars.get(i), Some('e' | 'E')) {
                    let mut j = i + 1;
                    if matches!(chars.get(j), Some('+' | '-')) {
                        j += 1;
                    }
                    if chars.get(j).is_some_and(|c| c.is_ascii_digit()) {
                        is_float = true;
                        i = j;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| DbError::Parse(format!("bad number {text}")))?;
                    out.push(Token::Number(v));
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => out.push(Token::Int(v)),
                        Err(_) => {
                            let v = text
                                .parse::<f64>()
                                .map_err(|_| DbError::Parse(format!("bad number {text}")))?;
                            out.push(Token::Number(v));
                        }
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '$')
                {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                out.push(Token::Ident(word.to_ascii_uppercase()));
            }
            _ => {
                let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
                let (sym, adv) = match two.as_str() {
                    "<=" => (Sym::LtEq, 2),
                    ">=" => (Sym::GtEq, 2),
                    "<>" => (Sym::NotEq, 2),
                    "!=" => (Sym::NotEq, 2),
                    "||" => (Sym::Concat, 2),
                    _ => match c {
                        '(' => (Sym::LParen, 1),
                        ')' => (Sym::RParen, 1),
                        ',' => (Sym::Comma, 1),
                        '.' => (Sym::Dot, 1),
                        '*' => (Sym::Star, 1),
                        '+' => (Sym::Plus, 1),
                        '-' => (Sym::Minus, 1),
                        '/' => (Sym::Slash, 1),
                        '%' => (Sym::Percent, 1),
                        '=' => (Sym::Eq, 1),
                        '<' => (Sym::Lt, 1),
                        '>' => (Sym::Gt, 1),
                        ';' => (Sym::Semicolon, 1),
                        '?' => (Sym::Question, 1),
                        other => {
                            return Err(DbError::Parse(format!("unexpected character '{other}'")))
                        }
                    },
                };
                out.push(Token::Symbol(sym));
                i += adv;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_idents_fold_case() {
        let toks = lex("select Title from simulation").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("TITLE".into()),
                Token::Ident("FROM".into()),
                Token::Ident("SIMULATION".into()),
            ]
        );
    }

    #[test]
    fn quoted_identifier_preserves_case() {
        let toks = lex("\"MixedCase\"").unwrap();
        assert_eq!(toks, vec![Token::Ident("MixedCase".into())]);
    }

    #[test]
    fn string_literals_with_escape() {
        let toks = lex("'it''s a test'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's a test".into())]);
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn numbers() {
        let toks = lex("42 3.5 1e3 2.5e-2 9223372036854775807").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Number(3.5),
                Token::Number(1000.0),
                Token::Number(0.025),
                Token::Int(i64::MAX),
            ]
        );
    }

    #[test]
    fn operators() {
        let toks = lex("a<=b<>c||d!=e").unwrap();
        let syms: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec![Sym::LtEq, Sym::NotEq, Sym::Concat, Sym::NotEq]);
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("select -- the whole row\n *").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("SELECT".into()), Token::Symbol(Sym::Star)]
        );
    }

    #[test]
    fn dotted_names() {
        let toks = lex("SIMULATION.AUTHOR_KEY").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SIMULATION".into()),
                Token::Symbol(Sym::Dot),
                Token::Ident("AUTHOR_KEY".into()),
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("select #").is_err());
    }
}
