//! Multi-version concurrency control: versioned rows, snapshot read
//! views, and the commit-sequence-number (CSN) registry.
//!
//! The engine is single-threaded (the whole archive runs in virtual
//! time), so "concurrency" means *logically* concurrent transactions
//! and snapshots interleaved on one thread: the portal's browse
//! sessions hold snapshot read views open while ingest and DATALINK
//! linking commit underneath them. Each transaction is identified by a
//! [`TxnId`]; each commit is stamped with a monotonically increasing
//! [`Csn`]. A row version is visible to a [`ReadView`] iff its creator
//! committed at or before the view's CSN ceiling (or is the view's own
//! transaction) and its deleter did not.
//!
//! Version metadata lives *beside* the heap, not in the page format: a
//! per-table map from [`RowId`] to [`RowVersion`]. A row with **no**
//! entry is *frozen* — created by a transaction that committed before
//! every open view, deleted by nobody — which keeps the map tiny: the
//! vacuum pass removes dead versions (heap + indexes + entry) and
//! freezes entries older than the oldest open view, so in the steady
//! single-session state the map is empty and visibility checks cost one
//! empty-map probe per scan.
//!
//! Conflict detection is *first-updater-wins*, stamped eagerly at write
//! time: stamping a delete (or the delete half of an update) onto a
//! version another active transaction already stamped, or onto a
//! version committed after the writer's snapshot, fails with a write
//! conflict. In a single-threaded engine where a transaction's writes
//! are applied as its statements execute, this is observationally
//! equivalent to the first-*committer*-wins check classic snapshot
//! isolation runs at COMMIT: the first writer to reach the row always
//! also commits first or aborts.

use crate::storage::RowId;
use std::collections::BTreeMap;

/// Transaction identifier. `0` is reserved for [`FROZEN_TXN`].
pub type TxnId = u64;

/// Commit sequence number. `0` is the bootstrap commit (recovered /
/// frozen rows); real commits start at 1.
pub type Csn = u64;

/// The pseudo-transaction that owns frozen rows: committed at CSN 0,
/// before every possible view.
pub const FROZEN_TXN: TxnId = 0;

/// CSN ceiling meaning "read the latest committed state".
pub const LATEST_CSN: Csn = u64::MAX;

/// Creation/deletion stamps for one heap row version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowVersion {
    /// Transaction that created this version.
    pub xmin: TxnId,
    /// Transaction that deleted it (or replaced it, for updates).
    pub xmax: Option<TxnId>,
}

/// A visibility horizon: rows committed at or before `csn` (plus the
/// uncommitted writes of `txn`, if set) are visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadView {
    /// CSN ceiling ([`LATEST_CSN`] = everything committed so far).
    pub csn: Csn,
    /// Own transaction: its uncommitted writes are visible to itself.
    pub txn: Option<TxnId>,
}

impl ReadView {
    /// The latest-committed view (what plain autocommit statements see).
    pub fn latest() -> Self {
        ReadView {
            csn: LATEST_CSN,
            txn: None,
        }
    }
}

/// Handle for an open read-only snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SnapshotId(pub u64);

/// What the vacuum pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VacuumStats {
    /// Dead row versions physically reclaimed (heap + index entries).
    pub versions_removed: usize,
    /// Live versions whose stamps aged past every open view and were
    /// dropped from the version map (implicitly frozen).
    pub versions_frozen: usize,
}

/// The MVCC registries: transaction status, open snapshots, and the
/// per-table version map.
#[derive(Debug)]
pub struct MvccState {
    next_txn: TxnId,
    next_csn: Csn,
    /// Committed transactions still referenced by version entries.
    /// Vacuum prunes stamps at or below the horizon.
    committed: BTreeMap<TxnId, Csn>,
    /// Active transactions and the CSN ceiling of their read view
    /// ([`LATEST_CSN`] for read-latest legacy sessions).
    active: BTreeMap<TxnId, Csn>,
    /// Open snapshots and their pinned CSN.
    snapshots: BTreeMap<u64, Csn>,
    next_snapshot: u64,
    /// table name -> RowId -> version stamps (missing entry = frozen).
    versions: BTreeMap<String, BTreeMap<RowId, RowVersion>>,
}

impl Default for MvccState {
    fn default() -> Self {
        Self::new()
    }
}

impl MvccState {
    /// Fresh state: no transactions, no snapshots, everything frozen.
    pub fn new() -> Self {
        MvccState {
            next_txn: 1,
            next_csn: 1,
            committed: BTreeMap::new(),
            active: BTreeMap::new(),
            snapshots: BTreeMap::new(),
            next_snapshot: 1,
            versions: BTreeMap::new(),
        }
    }

    /// CSN of the most recent commit (0 if none since open).
    pub fn last_csn(&self) -> Csn {
        self.next_csn - 1
    }

    /// The read view of a hypothetical reader starting right now:
    /// everything committed up to the horizon, belonging to no
    /// transaction. Checkpoints write exactly this view, which is what
    /// lets them run under open snapshots and in-flight transactions.
    pub fn committed_view(&self) -> ReadView {
        ReadView {
            csn: self.last_csn(),
            txn: None,
        }
    }

    /// Recovery saw a commit marker: future commits must order after it.
    pub fn observe_recovered_csn(&mut self, csn: Csn) {
        if csn != LATEST_CSN {
            self.next_csn = self.next_csn.max(csn + 1);
        }
    }

    // ---- transactions ----

    /// Start a transaction whose reads are pinned at `view_csn`
    /// ([`LATEST_CSN`] to read the latest committed state).
    pub fn begin_txn(&mut self, view_csn: Csn) -> TxnId {
        let id = self.next_txn;
        self.next_txn += 1;
        self.active.insert(id, view_csn);
        id
    }

    /// The read-view CSN ceiling `txn` was started with.
    pub fn txn_view_csn(&self, txn: TxnId) -> Option<Csn> {
        self.active.get(&txn).copied()
    }

    /// Is `txn` active (started, neither committed nor aborted)?
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.active.contains_key(&txn)
    }

    /// Commit `txn`, assigning the next CSN.
    pub fn commit(&mut self, txn: TxnId) -> Csn {
        self.active.remove(&txn);
        let csn = self.allocate_csn();
        self.committed.insert(txn, csn);
        csn
    }

    /// Allocate a CSN for a non-transactional commit unit (DDL).
    pub fn allocate_csn(&mut self) -> Csn {
        let csn = self.next_csn;
        self.next_csn += 1;
        csn
    }

    /// Forget `txn` without a commit stamp (rollback, or a read-only
    /// commit that left no versions behind).
    pub fn forget(&mut self, txn: TxnId) {
        self.active.remove(&txn);
    }

    /// Commit CSN of `txn` (`Some(0)` for the frozen pseudo-txn).
    pub fn csn_of(&self, txn: TxnId) -> Option<Csn> {
        if txn == FROZEN_TXN {
            return Some(0);
        }
        self.committed.get(&txn).copied()
    }

    // ---- snapshots ----

    /// Open a read-only snapshot pinned at the latest committed CSN.
    pub fn begin_snapshot(&mut self) -> SnapshotId {
        let id = self.next_snapshot;
        self.next_snapshot += 1;
        self.snapshots.insert(id, self.last_csn());
        SnapshotId(id)
    }

    /// The pinned CSN of an open snapshot.
    pub fn snapshot_csn(&self, snap: SnapshotId) -> Option<Csn> {
        self.snapshots.get(&snap.0).copied()
    }

    /// Close a snapshot. Returns true if it was open.
    pub fn release_snapshot(&mut self, snap: SnapshotId) -> bool {
        self.snapshots.remove(&snap.0).is_some()
    }

    /// Number of open snapshots.
    pub fn open_snapshots(&self) -> usize {
        self.snapshots.len()
    }

    /// Any transactions in flight?
    pub fn has_active_txns(&self) -> bool {
        !self.active.is_empty()
    }

    // ---- visibility ----

    /// Does `view` see the work of `txn`?
    fn sees(&self, view: &ReadView, txn: TxnId) -> bool {
        view.txn == Some(txn) || self.csn_of(txn).is_some_and(|c| c <= view.csn)
    }

    /// Is the row at (`table`, `rid`) visible to `view`? Rows without a
    /// version entry are frozen: visible to everyone.
    pub fn visible(&self, table: &str, rid: RowId, view: &ReadView) -> bool {
        match self.versions.get(table).and_then(|m| m.get(&rid)) {
            None => true,
            Some(v) => self.sees(view, v.xmin) && !v.xmax.is_some_and(|x| self.sees(view, x)),
        }
    }

    /// The version map for `table` (None = every row frozen). Scans
    /// grab this once so the per-row check is a map probe, not a
    /// double lookup.
    pub fn table_versions(&self, table: &str) -> Option<&BTreeMap<RowId, RowVersion>> {
        self.versions.get(table).filter(|m| !m.is_empty())
    }

    /// Version stamps for one row, if it has any.
    pub fn version(&self, table: &str, rid: RowId) -> Option<RowVersion> {
        self.versions.get(table).and_then(|m| m.get(&rid)).copied()
    }

    // ---- write stamping (callers run conflict checks first) ----

    /// Record that `txn` created the row at (`table`, `rid`).
    pub fn note_insert(&mut self, table: &str, rid: RowId, txn: TxnId) {
        self.versions.entry(table.to_string()).or_default().insert(
            rid,
            RowVersion {
                xmin: txn,
                xmax: None,
            },
        );
    }

    /// Stamp `txn` as the deleter of the row at (`table`, `rid`).
    pub fn stamp_delete(&mut self, table: &str, rid: RowId, txn: TxnId) {
        self.versions
            .entry(table.to_string())
            .or_default()
            .entry(rid)
            .or_insert(RowVersion {
                xmin: FROZEN_TXN,
                xmax: None,
            })
            .xmax = Some(txn);
    }

    /// Undo a delete stamp (rollback). No-op if the entry is gone.
    pub fn clear_delete(&mut self, table: &str, rid: RowId, txn: TxnId) {
        if let Some(v) = self.versions.get_mut(table).and_then(|m| m.get_mut(&rid)) {
            if v.xmax == Some(txn) {
                v.xmax = None;
            }
        }
    }

    /// Drop the version entry for a rolled-back insert.
    pub fn drop_version(&mut self, table: &str, rid: RowId) {
        if let Some(m) = self.versions.get_mut(table) {
            m.remove(&rid);
        }
    }

    /// Forget all versions of a dropped table.
    pub fn drop_table(&mut self, table: &str) {
        self.versions.remove(table);
    }

    /// The vacuum horizon: the oldest CSN any open view can demand.
    /// Snapshots and pinned-view transactions hold it back; read-latest
    /// sessions do not.
    pub fn horizon(&self) -> Csn {
        self.snapshots
            .values()
            .chain(self.active.values().filter(|&&c| c != LATEST_CSN))
            .copied()
            .min()
            .unwrap_or_else(|| self.last_csn())
    }

    /// Sweep the version map against `horizon`: return the dead rows to
    /// reclaim physically (the caller owns heap + indexes), freeze
    /// entries older than every open view, and prune the committed-txn
    /// registry. Entries stamped by still-active transactions are kept.
    pub fn sweep(&mut self, horizon: Csn) -> (Vec<(String, RowId)>, usize) {
        let mut dead = Vec::new();
        let mut frozen = 0usize;
        for (table, map) in &mut self.versions {
            map.retain(|rid, v| {
                let xmin_csn = if v.xmin == FROZEN_TXN {
                    Some(0)
                } else {
                    self.committed.get(&v.xmin).copied()
                };
                let xmax_csn = v.xmax.and_then(|x| {
                    if x == FROZEN_TXN {
                        Some(0)
                    } else {
                        self.committed.get(&x).copied()
                    }
                });
                if let Some(c) = xmax_csn {
                    if c <= horizon {
                        // Dead to every open view: reclaim.
                        dead.push((table.clone(), *rid));
                        return false;
                    }
                }
                if let Some(c) = xmin_csn {
                    if c <= horizon {
                        if v.xmax.is_none() {
                            // Live and visible to every open view: the
                            // entry is equivalent to no entry.
                            frozen += 1;
                            return false;
                        }
                        // Keep the delete stamp but freeze the creator.
                        v.xmin = FROZEN_TXN;
                    }
                }
                true
            });
        }
        self.versions.retain(|_, m| !m.is_empty());
        // Every surviving stamp at or below the horizon was rewritten to
        // FROZEN_TXN above, so commit records up to the horizon are
        // unreferenced.
        self.committed.retain(|_, c| *c > horizon);
        (dead, frozen)
    }

    /// Total non-frozen version entries (telemetry / tests).
    pub fn version_entries(&self) -> usize {
        self.versions.values().map(|m| m.len()).sum()
    }

    /// Whether any non-frozen version entries exist at all (vacuum is a
    /// no-op otherwise).
    pub fn has_versions(&self) -> bool {
        self.versions.values().any(|m| !m.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_rows_visible_to_everyone() {
        let s = MvccState::new();
        let latest = ReadView::latest();
        let pinned = ReadView { csn: 0, txn: None };
        assert!(s.visible("T", RowId(1), &latest));
        assert!(s.visible("T", RowId(1), &pinned));
    }

    #[test]
    fn uncommitted_insert_visible_only_to_owner() {
        let mut s = MvccState::new();
        let t = s.begin_txn(LATEST_CSN);
        s.note_insert("T", RowId(1), t);
        let own = ReadView {
            csn: LATEST_CSN,
            txn: Some(t),
        };
        assert!(s.visible("T", RowId(1), &own));
        assert!(!s.visible("T", RowId(1), &ReadView::latest()));
        let csn = s.commit(t);
        assert!(s.visible("T", RowId(1), &ReadView::latest()));
        // A snapshot pinned before the commit still cannot see it.
        let before = ReadView {
            csn: csn - 1,
            txn: None,
        };
        assert!(!s.visible("T", RowId(1), &before));
    }

    #[test]
    fn delete_stamp_hides_row_after_commit_only() {
        let mut s = MvccState::new();
        let t = s.begin_txn(LATEST_CSN);
        s.stamp_delete("T", RowId(7), t);
        let own = ReadView {
            csn: LATEST_CSN,
            txn: Some(t),
        };
        assert!(!s.visible("T", RowId(7), &own), "own delete hides the row");
        assert!(
            s.visible("T", RowId(7), &ReadView::latest()),
            "others still see it"
        );
        let csn = s.commit(t);
        assert!(!s.visible("T", RowId(7), &ReadView::latest()));
        let before = ReadView {
            csn: csn - 1,
            txn: None,
        };
        assert!(s.visible("T", RowId(7), &before), "old snapshots keep it");
    }

    #[test]
    fn sweep_reclaims_dead_and_freezes_live() {
        let mut s = MvccState::new();
        let t1 = s.begin_txn(LATEST_CSN);
        s.note_insert("T", RowId(1), t1);
        s.stamp_delete("T", RowId(2), t1);
        s.commit(t1);
        let (dead, frozen) = s.sweep(s.horizon());
        assert_eq!(dead, vec![("T".to_string(), RowId(2))]);
        assert_eq!(frozen, 1);
        assert_eq!(s.version_entries(), 0);
        assert!(s.visible("T", RowId(1), &ReadView::latest()));
    }

    #[test]
    fn sweep_respects_snapshot_horizon() {
        let mut s = MvccState::new();
        let snap = s.begin_snapshot(); // pinned at CSN 0
        let t1 = s.begin_txn(LATEST_CSN);
        s.stamp_delete("T", RowId(2), t1);
        s.commit(t1);
        let (dead, _) = s.sweep(s.horizon());
        assert!(dead.is_empty(), "snapshot still reads the deleted row");
        let view = ReadView {
            csn: s.snapshot_csn(snap).unwrap(),
            txn: None,
        };
        assert!(s.visible("T", RowId(2), &view));
        s.release_snapshot(snap);
        let (dead, _) = s.sweep(s.horizon());
        assert_eq!(dead.len(), 1);
    }

    #[test]
    fn frozen_xmin_survives_commit_pruning() {
        // Row created by t1 (committed), delete-stamped by a still-active
        // t2; sweep must keep the row visible to latest even after the
        // committed map is pruned — the xmin freezes to FROZEN_TXN.
        let mut s = MvccState::new();
        let t1 = s.begin_txn(LATEST_CSN);
        s.note_insert("T", RowId(3), t1);
        s.commit(t1);
        let t2 = s.begin_txn(LATEST_CSN);
        s.stamp_delete("T", RowId(3), t2);
        let (dead, _) = s.sweep(s.horizon());
        assert!(dead.is_empty());
        assert!(
            s.visible("T", RowId(3), &ReadView::latest()),
            "uncommitted delete must not hide the row"
        );
        assert_eq!(s.version("T", RowId(3)).unwrap().xmin, FROZEN_TXN);
    }

    #[test]
    fn horizon_tracks_oldest_reader() {
        let mut s = MvccState::new();
        let t = s.begin_txn(LATEST_CSN);
        s.note_insert("T", RowId(1), t);
        s.commit(t); // csn 1
        let s1 = s.begin_snapshot(); // pinned 1
        let t2 = s.begin_txn(LATEST_CSN);
        s.note_insert("T", RowId(2), t2);
        s.commit(t2); // csn 2
        let _s2 = s.begin_snapshot(); // pinned 2
        assert_eq!(s.horizon(), 1);
        s.release_snapshot(s1);
        assert_eq!(s.horizon(), 2);
        let pinned = s.begin_txn(1);
        assert_eq!(s.horizon(), 1, "pinned-view txn holds the horizon");
        s.forget(pinned);
        assert_eq!(s.horizon(), 2);
    }
}
