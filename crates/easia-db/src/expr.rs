//! Expression evaluation with SQL three-valued logic.

use crate::error::{DbError, Result};
use crate::sql::ast::{BinaryOp, Expr, UnaryOp};
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::rc::Rc;

/// A resolved column slot in a row: optional table alias + column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Table name or alias that qualifies this slot.
    pub table: Option<String>,
    /// Column name.
    pub name: String,
}

/// The shape of rows flowing through the executor.
#[derive(Debug, Clone, Default)]
pub struct RowSchema {
    /// Slots in positional order.
    pub columns: Vec<ColumnRef>,
}

impl RowSchema {
    /// Build a schema for a single table's columns.
    pub fn for_table(table: &str, column_names: &[String]) -> Self {
        RowSchema {
            columns: column_names
                .iter()
                .map(|c| ColumnRef {
                    table: Some(table.to_ascii_uppercase()),
                    name: c.clone(),
                })
                .collect(),
        }
    }

    /// Concatenate two schemas (for joins).
    pub fn join(&self, other: &RowSchema) -> RowSchema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        RowSchema { columns }
    }

    /// Resolve a column reference to a slot index.
    ///
    /// Unqualified names must be unambiguous across the schema; qualified
    /// names match on both alias and column.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let name = name.to_ascii_uppercase();
        let table = table.map(|t| t.to_ascii_uppercase());
        let mut hit = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.name != name {
                continue;
            }
            if let Some(t) = &table {
                if c.table.as_deref() != Some(t.as_str()) {
                    continue;
                }
            }
            if hit.is_some() {
                return Err(DbError::Eval(format!("ambiguous column reference {name}")));
            }
            hit = Some(i);
        }
        hit.ok_or_else(|| {
            let full = match &table {
                Some(t) => format!("{t}.{name}"),
                None => name.clone(),
            };
            DbError::Eval(format!("unknown column {full}"))
        })
    }
}

/// A scalar function implementation.
pub type ScalarFn = Rc<dyn Fn(&[Value]) -> Result<Value>>;

/// Registry of scalar functions, keyed by upper-case name.
///
/// The `easia-datalink` crate registers the SQL/MED `DL*` functions here
/// (`DLVALUE`, `DLURLCOMPLETE`, `DLURLPATH`, `DLURLSERVER`, ...).
#[derive(Clone, Default)]
pub struct FnRegistry {
    fns: HashMap<String, ScalarFn>,
}

impl FnRegistry {
    /// Registry preloaded with the built-in scalar functions.
    pub fn with_builtins() -> Self {
        let mut r = FnRegistry::default();
        r.register("LENGTH", |args| {
            expect_args("LENGTH", args, 1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                v => match v.as_text() {
                    Some(s) => Value::Int(s.chars().count() as i64),
                    None => match v.lob_size() {
                        Some(n) => Value::Int(n as i64),
                        None => return Err(DbError::Eval("LENGTH expects a string or LOB".into())),
                    },
                },
            })
        });
        r.register("UPPER", |args| {
            expect_args("UPPER", args, 1)?;
            string_fn(&args[0], |s| s.to_uppercase())
        });
        r.register("LOWER", |args| {
            expect_args("LOWER", args, 1)?;
            string_fn(&args[0], |s| s.to_lowercase())
        });
        r.register("TRIM", |args| {
            expect_args("TRIM", args, 1)?;
            string_fn(&args[0], |s| s.trim().to_string())
        });
        r.register("SUBSTR", |args| {
            if args.len() != 2 && args.len() != 3 {
                return Err(DbError::Eval("SUBSTR expects 2 or 3 arguments".into()));
            }
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let s = args[0]
                .as_text()
                .ok_or_else(|| DbError::Eval("SUBSTR expects a string".into()))?;
            let start = args[1]
                .as_int()
                .ok_or_else(|| DbError::Eval("SUBSTR start must be an integer".into()))?;
            let chars: Vec<char> = s.chars().collect();
            // SQL SUBSTR is 1-based.
            let from = (start.max(1) as usize - 1).min(chars.len());
            let len = match args.get(2) {
                Some(v) => v
                    .as_int()
                    .ok_or_else(|| DbError::Eval("SUBSTR length must be an integer".into()))?
                    .max(0) as usize,
                None => chars.len(),
            };
            Ok(Value::Str(chars[from..].iter().take(len).collect()))
        });
        r.register("ABS", |args| {
            expect_args("ABS", args, 1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(i.abs()),
                Value::Double(d) => Value::Double(d.abs()),
                _ => return Err(DbError::Eval("ABS expects a number".into())),
            })
        });
        r.register("ROUND", |args| {
            expect_args("ROUND", args, 1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(*i),
                Value::Double(d) => Value::Double(d.round()),
                _ => return Err(DbError::Eval("ROUND expects a number".into())),
            })
        });
        r.register("COALESCE", |args| {
            for a in args {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        });
        r
    }

    /// Register (or replace) a function.
    pub fn register(&mut self, name: &str, f: impl Fn(&[Value]) -> Result<Value> + 'static) {
        self.fns.insert(name.to_ascii_uppercase(), Rc::new(f));
    }

    /// Look up a function.
    pub fn get(&self, name: &str) -> Option<&ScalarFn> {
        self.fns.get(&name.to_ascii_uppercase())
    }
}

fn expect_args(name: &str, args: &[Value], n: usize) -> Result<()> {
    if args.len() != n {
        return Err(DbError::Eval(format!(
            "{name} expects {n} argument(s), got {}",
            args.len()
        )));
    }
    Ok(())
}

fn string_fn(v: &Value, f: impl Fn(&str) -> String) -> Result<Value> {
    Ok(match v {
        Value::Null => Value::Null,
        v => match v.as_text() {
            Some(s) => Value::Str(f(s)),
            None => return Err(DbError::Eval("expected a string argument".into())),
        },
    })
}

/// Everything needed to evaluate an expression against one row.
pub struct EvalContext<'a> {
    /// Shape of `row`.
    pub schema: &'a RowSchema,
    /// The current row.
    pub row: &'a [Value],
    /// Positional parameter values (1-based indices into this slice + 1).
    pub params: &'a [Value],
    /// Scalar functions.
    pub functions: &'a FnRegistry,
}

impl EvalContext<'_> {
    /// Evaluate `expr` to a value.
    pub fn eval(&self, expr: &Expr) -> Result<Value> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Param(n) => self
                .params
                .get(*n - 1)
                .cloned()
                .ok_or_else(|| DbError::Eval(format!("missing parameter ?{n}"))),
            Expr::Column { table, name } => {
                let idx = self.schema.resolve(table.as_deref(), name)?;
                Ok(self.row[idx].clone())
            }
            Expr::Unary(op, e) => {
                let v = self.eval(e)?;
                match op {
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Double(d) => Ok(Value::Double(-d)),
                        other => Err(DbError::Eval(format!(
                            "cannot negate {}",
                            other.type_name()
                        ))),
                    },
                    UnaryOp::Not => Ok(match truth(&v) {
                        Some(b) => Value::Bool(!b),
                        None => Value::Null,
                    }),
                }
            }
            Expr::Binary(l, op, r) => self.eval_binary(l, *op, r),
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval(expr)?;
                let p = self.eval(pattern)?;
                if v.is_null() || p.is_null() {
                    return Ok(Value::Null);
                }
                let s = v
                    .as_text()
                    .ok_or_else(|| DbError::Eval("LIKE expects strings".into()))?;
                let pat = p
                    .as_text()
                    .ok_or_else(|| DbError::Eval("LIKE pattern must be a string".into()))?;
                Ok(Value::Bool(like_match(s, pat) != *negated))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.eval(expr)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let w = self.eval(item)?;
                    if w.is_null() {
                        saw_null = true;
                        continue;
                    }
                    if v.sql_cmp(&w) == Some(Ordering::Equal) {
                        return Ok(Value::Bool(!negated));
                    }
                }
                if saw_null {
                    // x IN (..., NULL) is UNKNOWN when no match was found.
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let v = self.eval(expr)?;
                let lo = self.eval(lo)?;
                let hi = self.eval(hi)?;
                let ge = match v.sql_cmp(&lo) {
                    Some(o) => o != Ordering::Less,
                    None => return Ok(Value::Null),
                };
                let le = match v.sql_cmp(&hi) {
                    Some(o) => o != Ordering::Greater,
                    None => return Ok(Value::Null),
                };
                Ok(Value::Bool((ge && le) != *negated))
            }
            Expr::Function { name, args, star } => {
                if *star {
                    return Err(DbError::Eval(format!(
                        "{name}(*) is only valid as an aggregate"
                    )));
                }
                let f = self
                    .functions
                    .get(name)
                    .ok_or_else(|| DbError::Eval(format!("unknown function {name}")))?
                    .clone();
                let vals: Vec<Value> = args.iter().map(|a| self.eval(a)).collect::<Result<_>>()?;
                f(&vals)
            }
        }
    }

    fn eval_binary(&self, l: &Expr, op: BinaryOp, r: &Expr) -> Result<Value> {
        // Logical operators get SQL 3VL short-circuit treatment.
        if op == BinaryOp::And {
            let lv = truth(&self.eval(l)?);
            if lv == Some(false) {
                return Ok(Value::Bool(false));
            }
            let rv = truth(&self.eval(r)?);
            return Ok(match (lv, rv) {
                (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            });
        }
        if op == BinaryOp::Or {
            let lv = truth(&self.eval(l)?);
            if lv == Some(true) {
                return Ok(Value::Bool(true));
            }
            let rv = truth(&self.eval(r)?);
            return Ok(match (lv, rv) {
                (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            });
        }
        let lv = self.eval(l)?;
        let rv = self.eval(r)?;
        match op {
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => {
                let ord = match lv.sql_cmp(&rv) {
                    Some(o) => o,
                    None => {
                        if lv.is_null() || rv.is_null() {
                            return Ok(Value::Null);
                        }
                        return Err(DbError::Type(format!(
                            "cannot compare {} with {}",
                            lv.type_name(),
                            rv.type_name()
                        )));
                    }
                };
                let b = match op {
                    BinaryOp::Eq => ord == Ordering::Equal,
                    BinaryOp::NotEq => ord != Ordering::Equal,
                    BinaryOp::Lt => ord == Ordering::Less,
                    BinaryOp::LtEq => ord != Ordering::Greater,
                    BinaryOp::Gt => ord == Ordering::Greater,
                    BinaryOp::GtEq => ord != Ordering::Less,
                    _ => unreachable!(),
                };
                Ok(Value::Bool(b))
            }
            BinaryOp::Concat => {
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Str(format!("{lv}{rv}")))
            }
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                arith(&lv, op, &rv)
            }
            BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
        }
    }
}

fn arith(l: &Value, op: BinaryOp, r: &Value) -> Result<Value> {
    // Integer arithmetic stays integral; anything else is double.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            BinaryOp::Add => Value::Int(a.wrapping_add(*b)),
            BinaryOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinaryOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinaryOp::Div => {
                if *b == 0 {
                    return Err(DbError::Eval("division by zero".into()));
                }
                Value::Int(a / b)
            }
            BinaryOp::Mod => {
                if *b == 0 {
                    return Err(DbError::Eval("division by zero".into()));
                }
                Value::Int(a % b)
            }
            _ => unreachable!(),
        });
    }
    let (a, b) = match (l.numeric(), r.numeric()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(DbError::Type(format!(
                "arithmetic on {} and {}",
                l.type_name(),
                r.type_name()
            )))
        }
    };
    Ok(match op {
        BinaryOp::Add => Value::Double(a + b),
        BinaryOp::Sub => Value::Double(a - b),
        BinaryOp::Mul => Value::Double(a * b),
        BinaryOp::Div => {
            if b == 0.0 {
                return Err(DbError::Eval("division by zero".into()));
            }
            Value::Double(a / b)
        }
        BinaryOp::Mod => {
            if b == 0.0 {
                return Err(DbError::Eval("division by zero".into()));
            }
            Value::Double(a % b)
        }
        _ => unreachable!(),
    })
}

/// SQL truth of a value: `Some(bool)` or `None` for UNKNOWN.
pub fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Null => None,
        // Any other value in a boolean position is an error elsewhere;
        // treating non-empty as true would mask bugs, so be strict.
        _ => None,
    }
}

/// SQL LIKE matching: `%` matches any run (including empty), `_` matches
/// exactly one character. Matching is case-sensitive, per the standard.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Collapse consecutive % and try all split points.
                let rest = &p[1..];
                (0..=s.len()).any(|k| rec(&s[k..], rest))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::Expr as E;
    use crate::sql::ast::{SelectItem, Stmt};
    use crate::sql::parse;

    fn eval_str(sql_expr: &str) -> Result<Value> {
        // Parse `SELECT <expr>` and evaluate against an empty row.
        let stmt = parse(&format!("SELECT {sql_expr}"))?;
        let expr = match stmt {
            Stmt::Select(s) => match s.items.into_iter().next().unwrap() {
                SelectItem::Expr { expr, .. } => expr,
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        };
        let schema = RowSchema::default();
        let fns = FnRegistry::with_builtins();
        let ctx = EvalContext {
            schema: &schema,
            row: &[],
            params: &[],
            functions: &fns,
        };
        ctx.eval(&expr)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_str("1 + 2 * 3").unwrap(), Value::Int(7));
        assert_eq!(eval_str("7 / 2").unwrap(), Value::Int(3));
        assert_eq!(eval_str("7.0 / 2").unwrap(), Value::Double(3.5));
        assert_eq!(eval_str("7 % 4").unwrap(), Value::Int(3));
        assert_eq!(eval_str("-(3 - 5)").unwrap(), Value::Int(2));
        assert!(eval_str("1 / 0").is_err());
        assert!(eval_str("1.5 % 0").is_err());
    }

    #[test]
    fn null_propagation() {
        assert_eq!(eval_str("NULL + 1").unwrap(), Value::Null);
        assert_eq!(eval_str("NULL = NULL").unwrap(), Value::Null);
        assert_eq!(eval_str("1 < NULL").unwrap(), Value::Null);
        assert_eq!(eval_str("'a' || NULL").unwrap(), Value::Null);
        assert_eq!(eval_str("NULL IS NULL").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("1 IS NOT NULL").unwrap(), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval_str("TRUE AND NULL").unwrap(), Value::Null);
        assert_eq!(eval_str("FALSE AND NULL").unwrap(), Value::Bool(false));
        assert_eq!(eval_str("TRUE OR NULL").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("FALSE OR NULL").unwrap(), Value::Null);
        assert_eq!(eval_str("NOT NULL").unwrap(), Value::Null);
        assert_eq!(eval_str("NOT FALSE").unwrap(), Value::Bool(true));
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_str("2 >= 2").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("2 <> 3").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("'abc' < 'abd'").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("2 = 2.0").unwrap(), Value::Bool(true));
        assert!(eval_str("'a' > 1").is_err(), "incomparable non-null types");
    }

    #[test]
    fn concat() {
        assert_eq!(
            eval_str("'tur' || 'bulence'").unwrap(),
            Value::Str("turbulence".into())
        );
        assert_eq!(eval_str("'v' || 42").unwrap(), Value::Str("v42".into()));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("turbulence", "%bul%"));
        assert!(like_match("turbulence", "tur%"));
        assert!(like_match("turbulence", "%ence"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
        assert!(like_match("S19990110150932", "S1999%"));
        assert!(!like_match("ABC", "abc"), "case-sensitive");
        assert!(like_match("aaa", "%%a%"));
    }

    #[test]
    fn like_via_eval() {
        assert_eq!(
            eval_str("'Channel flow' LIKE '%flow'").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval_str("'x' NOT LIKE 'y%'").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("NULL LIKE '%'").unwrap(), Value::Null);
    }

    #[test]
    fn in_list_semantics() {
        assert_eq!(eval_str("2 IN (1, 2, 3)").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("5 IN (1, 2)").unwrap(), Value::Bool(false));
        assert_eq!(eval_str("5 NOT IN (1, 2)").unwrap(), Value::Bool(true));
        // NULL in the list makes a non-match UNKNOWN.
        assert_eq!(eval_str("5 IN (1, NULL)").unwrap(), Value::Null);
        assert_eq!(eval_str("1 IN (1, NULL)").unwrap(), Value::Bool(true));
    }

    #[test]
    fn between_semantics() {
        assert_eq!(eval_str("5 BETWEEN 1 AND 10").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("0 BETWEEN 1 AND 10").unwrap(), Value::Bool(false));
        assert_eq!(
            eval_str("0 NOT BETWEEN 1 AND 10").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval_str("5 BETWEEN NULL AND 10").unwrap(), Value::Null);
    }

    #[test]
    fn builtin_functions() {
        assert_eq!(eval_str("LENGTH('abc')").unwrap(), Value::Int(3));
        assert_eq!(eval_str("UPPER('abc')").unwrap(), Value::Str("ABC".into()));
        assert_eq!(eval_str("LOWER('ABC')").unwrap(), Value::Str("abc".into()));
        assert_eq!(
            eval_str("SUBSTR('turbulence', 4, 3)").unwrap(),
            Value::Str("bul".into())
        );
        assert_eq!(
            eval_str("SUBSTR('abc', 2)").unwrap(),
            Value::Str("bc".into())
        );
        assert_eq!(eval_str("ABS(-4)").unwrap(), Value::Int(4));
        assert_eq!(eval_str("ROUND(2.6)").unwrap(), Value::Double(3.0));
        assert_eq!(eval_str("COALESCE(NULL, NULL, 7)").unwrap(), Value::Int(7));
        assert_eq!(eval_str("TRIM('  x ')").unwrap(), Value::Str("x".into()));
        assert_eq!(eval_str("LENGTH(NULL)").unwrap(), Value::Null);
        assert!(eval_str("NO_SUCH_FN(1)").is_err());
        assert!(eval_str("LENGTH(1, 2)").is_err());
    }

    #[test]
    fn column_resolution() {
        let schema = RowSchema {
            columns: vec![
                ColumnRef {
                    table: Some("S".into()),
                    name: "KEY".into(),
                },
                ColumnRef {
                    table: Some("A".into()),
                    name: "KEY".into(),
                },
                ColumnRef {
                    table: Some("A".into()),
                    name: "NAME".into(),
                },
            ],
        };
        assert_eq!(schema.resolve(Some("s"), "key").unwrap(), 0);
        assert_eq!(schema.resolve(Some("A"), "KEY").unwrap(), 1);
        assert_eq!(schema.resolve(None, "NAME").unwrap(), 2);
        assert!(schema.resolve(None, "KEY").is_err(), "ambiguous");
        assert!(schema.resolve(None, "MISSING").is_err());
    }

    #[test]
    fn column_eval_and_params() {
        let schema = RowSchema::for_table("T", &["A".into(), "B".into()]);
        let fns = FnRegistry::with_builtins();
        let row = vec![Value::Int(10), Value::Str("x".into())];
        let params = vec![Value::Int(10)];
        let ctx = EvalContext {
            schema: &schema,
            row: &row,
            params: &params,
            functions: &fns,
        };
        let e = E::Binary(
            Box::new(E::Column {
                table: None,
                name: "A".into(),
            }),
            BinaryOp::Eq,
            Box::new(E::Param(1)),
        );
        assert_eq!(ctx.eval(&e).unwrap(), Value::Bool(true));
        assert!(ctx.eval(&E::Param(2)).is_err(), "missing param");
    }
}
