//! Error type shared across the engine.

use std::fmt;

/// Any error the database can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// SQL text could not be tokenised or parsed.
    Parse(String),
    /// Catalog problems: unknown/duplicate tables, columns, indexes.
    Catalog(String),
    /// Type mismatch or unrepresentable coercion.
    Type(String),
    /// Constraint violation (NOT NULL, PRIMARY KEY, UNIQUE, FOREIGN KEY).
    Constraint(String),
    /// Runtime evaluation error (division by zero, bad function args...).
    Eval(String),
    /// Transaction misuse (nested BEGIN, COMMIT without BEGIN...).
    Txn(String),
    /// An external-data (DATALINK) observer vetoed the operation.
    Link(String),
    /// Persistence / recovery failure.
    Storage(String),
    /// WAL damage detected by checksum verification: bytes were changed
    /// (bit rot, overwrite), not merely cut short by a crash. Recovery
    /// never replays a record at or past `offset`.
    WalCorrupt {
        /// File offset of the damaged batch frame.
        offset: u64,
        /// Highest commit CSN replayable from the clean prefix.
        csn_horizon: u64,
        /// Classification detail (bad magic, header/payload CRC...).
        detail: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
            DbError::Type(m) => write!(f, "type error: {m}"),
            DbError::Constraint(m) => write!(f, "constraint violation: {m}"),
            DbError::Eval(m) => write!(f, "evaluation error: {m}"),
            DbError::Txn(m) => write!(f, "transaction error: {m}"),
            DbError::Link(m) => write!(f, "datalink error: {m}"),
            DbError::Storage(m) => write!(f, "storage error: {m}"),
            DbError::WalCorrupt {
                offset,
                csn_horizon,
                detail,
            } => write!(
                f,
                "wal corruption at byte {offset} (csn horizon {csn_horizon}): {detail}"
            ),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DbError>;
