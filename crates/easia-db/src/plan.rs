//! Access-path selection.
//!
//! The QBE interface generates WHERE clauses that are conjunctions of
//! per-column restrictions; the planner recognises equality conjuncts on
//! indexed columns and turns full scans into index lookups.

use crate::db::Table;
use crate::error::Result;
use crate::exec::eval_const;
use crate::sql::ast::{BinaryOp, Expr};
use crate::value::Value;
use crate::Database;

/// How the executor will fetch a table's rows.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan every live row.
    FullScan,
    /// Probe `index_name` with `key` (single leading column equality).
    IndexEq {
        /// The chosen index name (for EXPLAIN-style reporting).
        index_name: String,
        /// Position of the index in `Table::indexes`.
        index_pos: usize,
        /// The probe key (single leading column).
        key: Value,
    },
}

/// Split a predicate into top-level AND conjuncts.
pub fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn rec<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary(l, BinaryOp::And, r) = e {
            rec(l, out);
            rec(r, out);
        } else {
            out.push(e);
        }
    }
    rec(expr, &mut out);
    out
}

/// A `col = constant` equality extracted from a conjunct, if the conjunct
/// has that shape (either orientation) and the constant side is
/// row-independent (literal, parameter, or constant function).
fn column_equality(
    db: &Database,
    e: &Expr,
    params: &[Value],
    table_alias: &str,
) -> Result<Option<(String, Value)>> {
    let Expr::Binary(l, BinaryOp::Eq, r) = e else {
        return Ok(None);
    };
    let (col, konst) = match (l.as_ref(), r.as_ref()) {
        (Expr::Column { table, name }, rhs) if is_const(rhs) => {
            if table
                .as_deref()
                .is_some_and(|t| !t.eq_ignore_ascii_case(table_alias))
            {
                return Ok(None);
            }
            (name.clone(), rhs)
        }
        (lhs, Expr::Column { table, name }) if is_const(lhs) => {
            if table
                .as_deref()
                .is_some_and(|t| !t.eq_ignore_ascii_case(table_alias))
            {
                return Ok(None);
            }
            (name.clone(), lhs)
        }
        _ => return Ok(None),
    };
    let v = eval_const(db, konst, params)?;
    Ok(Some((col, v)))
}

fn is_const(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Param(_) => true,
        Expr::Unary(_, inner) => is_const(inner),
        Expr::Binary(l, op, r) => {
            !matches!(op, BinaryOp::And | BinaryOp::Or) && is_const(l) && is_const(r)
        }
        Expr::Function { args, star, .. } => !star && args.iter().all(is_const),
        _ => false,
    }
}

/// Choose an access path for `table` given an optional WHERE clause.
///
/// Picks the first conjunct of the form `col = const` where `col` is the
/// leading column of some index; the full predicate is still applied by
/// the executor afterwards (the index narrows, the filter decides).
pub fn choose_access_path(
    db: &Database,
    table: &Table,
    table_alias: &str,
    where_clause: Option<&Expr>,
    params: &[Value],
) -> Result<AccessPath> {
    let Some(pred) = where_clause else {
        return Ok(AccessPath::FullScan);
    };
    for c in conjuncts(pred) {
        if let Some((col, v)) = column_equality(db, c, params, table_alias)? {
            if v.is_null() {
                continue; // `col = NULL` never matches; let the filter handle it
            }
            if let Some(pos) = table.schema.column_index(&col) {
                for (i, ix) in table.indexes.iter().enumerate() {
                    if ix.col_indices.first() == Some(&pos) {
                        return Ok(AccessPath::IndexEq {
                            index_name: ix.name.clone(),
                            index_pos: i,
                            key: v,
                        });
                    }
                }
            }
        }
    }
    Ok(AccessPath::FullScan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let stmt = crate::sql::parse("SELECT * FROM t WHERE a = 1 AND b = 2 AND (c = 3 OR d = 4)")
            .unwrap();
        let w = match stmt {
            crate::sql::ast::Stmt::Select(s) => s.where_clause.unwrap(),
            _ => unreachable!(),
        };
        assert_eq!(conjuncts(&w).len(), 3);
    }

    #[test]
    fn const_detection() {
        assert!(is_const(&Expr::Literal(Value::Int(1))));
        assert!(is_const(&Expr::Param(1)));
        assert!(!is_const(&Expr::Column {
            table: None,
            name: "A".into()
        }));
    }

    #[test]
    fn index_path_chosen() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (k VARCHAR(10) PRIMARY KEY, v INTEGER)")
            .unwrap();
        db.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
            .unwrap();
        let stmt = crate::sql::parse("SELECT * FROM t WHERE v > 0 AND k = 'a'").unwrap();
        let w = match stmt {
            crate::sql::ast::Stmt::Select(s) => s.where_clause.unwrap(),
            _ => unreachable!(),
        };
        let table = db.table("T").unwrap();
        let path = choose_access_path(&db, table, "T", Some(&w), &[]).unwrap();
        assert!(
            matches!(path, AccessPath::IndexEq { ref index_name, ref key, .. }
                if index_name == "PK_T" && *key == Value::Str("a".into())),
            "{path:?}"
        );
    }

    #[test]
    fn full_scan_without_usable_conjunct() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (k VARCHAR(10) PRIMARY KEY, v INTEGER)")
            .unwrap();
        let stmt = crate::sql::parse("SELECT * FROM t WHERE v = 5 OR k = 'a'").unwrap();
        let w = match stmt {
            crate::sql::ast::Stmt::Select(s) => s.where_clause.unwrap(),
            _ => unreachable!(),
        };
        let table = db.table("T").unwrap();
        let path = choose_access_path(&db, table, "T", Some(&w), &[]).unwrap();
        assert_eq!(path, AccessPath::FullScan, "OR blocks index use");
    }

    #[test]
    fn alias_qualifier_respected() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE t (k VARCHAR(10) PRIMARY KEY)")
            .unwrap();
        let stmt = crate::sql::parse("SELECT * FROM t x WHERE y.k = 'a'").unwrap();
        let w = match stmt {
            crate::sql::ast::Stmt::Select(s) => s.where_clause.unwrap(),
            _ => unreachable!(),
        };
        let table = db.table("T").unwrap();
        // Qualifier `y` does not match alias `x`: no index use.
        let path = choose_access_path(&db, table, "X", Some(&w), &[]).unwrap();
        assert_eq!(path, AccessPath::FullScan);
    }
}
