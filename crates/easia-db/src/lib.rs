//! An embedded object-relational database engine.
//!
//! EASIA stores "the relatively small simulation result metadata, and the
//! large result files, in a unified way" in an object-relational DBMS: the
//! metadata lives in ordinary rows, small uploadable objects live in
//! BLOB/CLOB columns, and the multi-gigabyte result files live *outside*
//! the database behind SQL/MED DATALINK columns. The original system used
//! a commercial ORDBMS via JDBC; this crate is that substrate rebuilt from
//! scratch:
//!
//! * [`value`] — the SQL type system, including `BLOB`, `CLOB` and
//!   `DATALINK` values, with SQL three-valued-logic comparisons,
//! * [`schema`] — catalog: tables, columns, primary/foreign keys, the
//!   referential-integrity metadata that DBbrowse/EASIA mine to generate
//!   the browsing interface,
//! * [`storage`] — slotted 8 KiB pages and heap tables,
//! * [`index`] — B+tree secondary/primary indexes,
//! * [`sql`] — lexer, AST and recursive-descent parser for the SQL subset
//!   the EASIA interface generates (DDL with DATALINK options, DML, joins,
//!   aggregates, `LIKE` searches),
//! * [`expr`] — expression evaluation with NULL semantics,
//! * [`plan`]/[`exec`] — planning (index selection) and execution,
//! * [`txn`] — transactions with a logical write-ahead log, rollback, and
//!   crash recovery by snapshot + replay,
//! * [`db`] — the [`Database`] facade, scalar-function registry, and the
//!   [`db::LinkObserver`] hook through which the `easia-datalink` crate
//!   attaches SQL/MED link-control semantics to DML on DATALINK columns.

pub mod crc;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod index;
pub mod mvcc;
pub mod obs;
pub mod plan;
pub mod schema;
pub mod scrub;
pub mod sql;
pub mod storage;
pub mod txn;
pub mod value;

pub use db::{Database, LinkObserver, RecoveryReport, ResultSet};
pub use error::DbError;
pub use mvcc::{Csn, ReadView, SnapshotId, TxnId, VacuumStats};
pub use obs::DbMetrics;
pub use schema::{ColumnDef, DatalinkSpec, ForeignKey, TableSchema};
pub use scrub::{ScrubError, ScrubReport};
pub use storage::{DiskFault, DiskFaultInjector};
pub use txn::{WalCorruption, WalParse};
pub use value::{SqlType, Value};
