//! Checksum scrub: proactive verification of everything behind the
//! commit horizon.
//!
//! Archive-scale stores treat silent on-disk corruption as a
//! when-not-if event; waiting for recovery to trip over a rotted byte
//! means discovering the damage at the worst possible moment. The scrub
//! pass re-reads the durable artifacts — the heap snapshot and the
//! write-ahead log — and verifies every checksum the v2 formats carry:
//! the snapshot body CRC, each WAL batch frame's header and payload
//! CRCs, and each record frame inside. Only complete batches are
//! checked: they are exactly the bytes behind the commit horizon (a
//! torn tail, by construction, was never acknowledged).
//!
//! Drive it with [`crate::Database::scrub`], which also feeds the
//! `easia_db_scrub_frames_verified_total` / `easia_db_scrub_errors_total`
//! metric families. See DESIGN.md §12.

use crate::crc::crc32;
use crate::error::{DbError, Result};
use crate::txn::Wal;
use std::path::Path;

/// One checksum failure found by the scrub pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubError {
    /// Which durable artifact (`snapshot.db` or `wal.log`).
    pub file: String,
    /// Byte offset of the damaged region (0 for whole-file damage).
    pub offset: u64,
    /// What failed to verify.
    pub detail: String,
}

/// Outcome of one scrub pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScrubReport {
    /// A snapshot file exists.
    pub snapshot_present: bool,
    /// The snapshot body CRC verified (false when absent, legacy v1, or
    /// damaged — damaged additionally reports an error).
    pub snapshot_verified: bool,
    /// Complete WAL batch frames whose checksums verified.
    pub wal_batches_verified: usize,
    /// WAL record frames whose individual CRCs verified.
    pub wal_frames_verified: u64,
    /// Every checksum failure found (empty = all clean).
    pub errors: Vec<ScrubError>,
}

/// Scrub the durable artifacts in `dir`. IO failures are errors;
/// checksum failures are *findings*, reported inside the [`ScrubReport`].
pub(crate) fn scrub_dir(dir: &Path) -> Result<ScrubReport> {
    let mut report = ScrubReport::default();
    let snap = dir.join("snapshot.db");
    if snap.exists() {
        report.snapshot_present = true;
        let bytes =
            std::fs::read(&snap).map_err(|e| DbError::Storage(format!("scrub snapshot: {e}")))?;
        scrub_snapshot(&bytes, &mut report);
    }
    let wal = dir.join("wal.log");
    if wal.exists() {
        let bytes = std::fs::read(&wal).map_err(|e| DbError::Storage(format!("scrub wal: {e}")))?;
        scrub_wal(&bytes, &mut report);
    }
    Ok(report)
}

/// Verify a snapshot image in memory (v2 only; legacy v1 carries no
/// checksum and is reported unverified without an error).
fn scrub_snapshot(bytes: &[u8], report: &mut ScrubReport) {
    if bytes.get(..8) == Some(b"EASNAP2\0".as_slice()) {
        match bytes.get(8..12) {
            Some(crc_b) => {
                let want = u32::from_le_bytes(crc_b.try_into().expect("4 bytes"));
                if crc32(&bytes[12..]) == want {
                    report.snapshot_verified = true;
                } else {
                    report.errors.push(ScrubError {
                        file: "snapshot.db".into(),
                        offset: 12,
                        detail: "snapshot body checksum mismatch".into(),
                    });
                }
            }
            None => report.errors.push(ScrubError {
                file: "snapshot.db".into(),
                offset: 0,
                detail: "snapshot header truncated".into(),
            }),
        }
    } else if bytes.get(..8) == Some(b"EASNAP1\0".as_slice()) {
        // Legacy image: nothing to verify. A checkpoint will upgrade it.
    } else {
        report.errors.push(ScrubError {
            file: "snapshot.db".into(),
            offset: 0,
            detail: "bad snapshot magic".into(),
        });
    }
}

/// Verify a WAL image in memory via the same classifier recovery uses:
/// every complete batch (header CRC, payload CRC, per-record CRCs) is
/// behind the commit horizon and must verify; a clean torn tail is not
/// a finding.
fn scrub_wal(bytes: &[u8], report: &mut ScrubReport) {
    let parse = Wal::parse(bytes);
    report.wal_batches_verified = parse.batches;
    report.wal_frames_verified = parse.frames;
    if let Some(c) = parse.corruption {
        report.errors.push(ScrubError {
            file: "wal.log".into(),
            offset: c.offset,
            detail: c.detail,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::{seal_batch, WalRecord, WAL_MAGIC_V2};
    use crate::value::Value;

    fn wal_image() -> Vec<u8> {
        let mut img = WAL_MAGIC_V2.to_vec();
        for csn in 1..=3u64 {
            let mut p = Vec::new();
            WalRecord::Insert {
                table: "T".into(),
                row: vec![Value::Int(csn as i64)],
            }
            .encode_framed(&mut p);
            WalRecord::Commit { csn }.encode_framed(&mut p);
            img.extend_from_slice(&seal_batch(&p));
        }
        img
    }

    #[test]
    fn clean_wal_scrubs_clean() {
        let mut report = ScrubReport::default();
        scrub_wal(&wal_image(), &mut report);
        assert_eq!(report.wal_batches_verified, 3);
        assert_eq!(report.wal_frames_verified, 6);
        assert!(report.errors.is_empty());
    }

    #[test]
    fn rotted_wal_is_a_finding() {
        let mut img = wal_image();
        let mid = img.len() / 2;
        img[mid] ^= 0x01;
        let mut report = ScrubReport::default();
        scrub_wal(&img, &mut report);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].file, "wal.log");
        assert!(report.errors[0].offset <= mid as u64);
    }

    #[test]
    fn torn_tail_is_not_a_finding() {
        let mut img = wal_image();
        img.truncate(img.len() - 7);
        let mut report = ScrubReport::default();
        scrub_wal(&img, &mut report);
        assert_eq!(report.wal_batches_verified, 2);
        assert!(report.errors.is_empty());
    }

    #[test]
    fn snapshot_crc_checked() {
        let body = b"not a real body but crc'd all the same".to_vec();
        let mut img = b"EASNAP2\0".to_vec();
        img.extend_from_slice(&crc32(&body).to_le_bytes());
        img.extend_from_slice(&body);
        let mut report = ScrubReport::default();
        scrub_snapshot(&img, &mut report);
        assert!(report.snapshot_verified);
        assert!(report.errors.is_empty());
        img[20] ^= 0x80;
        let mut report = ScrubReport::default();
        scrub_snapshot(&img, &mut report);
        assert!(!report.snapshot_verified);
        assert_eq!(report.errors.len(), 1);
    }
}
