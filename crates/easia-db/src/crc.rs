//! CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! The durability layer checksums every WAL batch frame, every record
//! frame inside a batch, and the heap snapshot body (DESIGN.md §12).
//! The build environment is offline, so this is a small local
//! implementation — the standard table-driven byte-at-a-time variant —
//! rather than an external crate. It matches the ubiquitous zlib/PNG
//! CRC32, which makes the on-disk format checkable with standard tools.

/// 256-entry lookup table for the reflected IEEE polynomial.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// CRC32 of `data` (initial value 0, i.e. the plain one-shot checksum).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0, data)
}

/// Continue a CRC32 over `data`, starting from a previous checksum
/// (`crc32_update(crc32(a), b) == crc32(a ++ b)`).
pub fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    let mut c = crc ^ 0xFFFF_FFFF;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC32 check values (zlib-compatible).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"easia durability frame";
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32_update(crc32(a), b), crc32(data));
        }
    }

    #[test]
    fn single_bit_flips_change_checksum() {
        let base = b"group commit batch payload".to_vec();
        let want = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
