//! Heap tables: an append-friendly collection of slotted pages, plus an
//! overflow area for records too large for one page (big BLOB/CLOB rows —
//! the "small files that can be uploaded over the Internet").

use super::page::{Page, SlotId, PAGE_SIZE};
use crate::error::{DbError, Result};
use crate::value::{decode_row, encode_row, Value};

/// Stable address of a row in a heap table.
///
/// Encoding: the high bit selects the overflow area; otherwise the value
/// is `page << 16 | slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

const OVERFLOW_BIT: u64 = 1 << 63;
/// Records above this size go to the overflow area rather than a page.
const MAX_INLINE: usize = PAGE_SIZE / 2;

impl RowId {
    fn paged(page: u32, slot: SlotId) -> Self {
        RowId((u64::from(page) << 16) | u64::from(slot))
    }

    fn overflow(idx: u64) -> Self {
        RowId(OVERFLOW_BIT | idx)
    }

    fn decode(self) -> RowAddr {
        if self.0 & OVERFLOW_BIT != 0 {
            RowAddr::Overflow((self.0 & !OVERFLOW_BIT) as usize)
        } else {
            RowAddr::Paged((self.0 >> 16) as u32, (self.0 & 0xffff) as SlotId)
        }
    }
}

enum RowAddr {
    Paged(u32, SlotId),
    Overflow(usize),
}

/// A heap table of encoded rows.
#[derive(Debug, Default)]
pub struct HeapTable {
    pages: Vec<Page>,
    /// Oversized records; `None` = deleted.
    overflow: Vec<Option<Vec<u8>>>,
    /// Live row count.
    len: usize,
}

impl HeapTable {
    /// New empty heap.
    pub fn new() -> Self {
        HeapTable::default()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live rows remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated pages (for stats/benchmarks).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Insert a row; returns its stable id.
    pub fn insert(&mut self, row: &[Value]) -> RowId {
        let mut rec = Vec::new();
        encode_row(row, &mut rec);
        self.len += 1;
        if rec.len() > MAX_INLINE {
            self.overflow.push(Some(rec));
            return RowId::overflow(self.overflow.len() as u64 - 1);
        }
        // Append to the last page with room; otherwise a new page. A
        // free-space map would avoid the linear tail check; with
        // append-mostly metadata tables the last page almost always fits.
        if let Some((i, page)) = self.pages.iter_mut().enumerate().next_back() {
            if page.fits(rec.len()) {
                let slot = page.insert(&rec);
                return RowId::paged(i as u32, slot);
            }
        }
        let mut page = Page::new();
        let slot = page.insert(&rec);
        self.pages.push(page);
        RowId::paged(self.pages.len() as u32 - 1, slot)
    }

    /// Fetch and decode the row at `id`; `None` if deleted/never existed.
    pub fn get(&self, id: RowId) -> Option<Vec<Value>> {
        let rec: &[u8] = match id.decode() {
            RowAddr::Paged(p, s) => self.pages.get(p as usize)?.get(s)?,
            RowAddr::Overflow(i) => self.overflow.get(i)?.as_deref()?,
        };
        let mut pos = 0;
        decode_row(rec, &mut pos).ok()
    }

    /// Delete the row at `id`; returns true if it was live.
    pub fn delete(&mut self, id: RowId) -> bool {
        let deleted = match id.decode() {
            RowAddr::Paged(p, s) => self
                .pages
                .get_mut(p as usize)
                .map(|pg| pg.delete(s))
                .unwrap_or(false),
            RowAddr::Overflow(i) => self
                .overflow
                .get_mut(i)
                .map(|slot| slot.take().is_some())
                .unwrap_or(false),
        };
        if deleted {
            self.len -= 1;
        }
        deleted
    }

    /// Replace the row at `id` with `row`. The row moves (delete +
    /// re-insert), so the returned id supersedes the old one.
    pub fn update(&mut self, id: RowId, row: &[Value]) -> Result<RowId> {
        if !self.delete(id) {
            return Err(DbError::Storage(format!("update of missing row {id:?}")));
        }
        Ok(self.insert(row))
    }

    /// Iterate `(RowId, row)` over all live rows in storage order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, Vec<Value>)> + '_ {
        let paged = self.pages.iter().enumerate().flat_map(|(pi, page)| {
            page.iter().map(move |(slot, rec)| {
                let mut pos = 0;
                let row = decode_row(rec, &mut pos).expect("stored rows decode");
                (RowId::paged(pi as u32, slot), row)
            })
        });
        let over = self.overflow.iter().enumerate().filter_map(|(i, rec)| {
            rec.as_ref().map(|r| {
                let mut pos = 0;
                let row = decode_row(r, &mut pos).expect("stored rows decode");
                (RowId::overflow(i as u64), row)
            })
        });
        paged.chain(over)
    }

    /// Serialise the whole heap for a snapshot.
    pub fn snapshot(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.pages.len() as u32).to_le_bytes());
        for p in &self.pages {
            out.extend_from_slice(p.as_bytes());
        }
        out.extend_from_slice(&(self.overflow.len() as u32).to_le_bytes());
        for rec in &self.overflow {
            match rec {
                Some(r) => {
                    out.extend_from_slice(&(r.len() as u32 + 1).to_le_bytes());
                    out.extend_from_slice(r);
                }
                None => out.extend_from_slice(&0u32.to_le_bytes()),
            }
        }
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
    }

    /// Rebuild a heap from snapshot bytes, advancing `pos`.
    pub fn restore(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let trunc = || DbError::Storage("heap snapshot truncated".into());
        let read_u32 = |buf: &[u8], pos: &mut usize| -> Result<u32> {
            let s = buf.get(*pos..*pos + 4).ok_or_else(trunc)?;
            *pos += 4;
            Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
        };
        let npages = read_u32(buf, pos)? as usize;
        let mut pages = Vec::with_capacity(npages);
        for _ in 0..npages {
            let bytes = buf.get(*pos..*pos + PAGE_SIZE).ok_or_else(trunc)?;
            *pos += PAGE_SIZE;
            pages.push(Page::from_bytes(bytes).ok_or_else(trunc)?);
        }
        let nover = read_u32(buf, pos)? as usize;
        let mut overflow = Vec::with_capacity(nover);
        for _ in 0..nover {
            let marker = read_u32(buf, pos)? as usize;
            if marker == 0 {
                overflow.push(None);
            } else {
                let len = marker - 1;
                let rec = buf.get(*pos..*pos + len).ok_or_else(trunc)?.to_vec();
                *pos += len;
                overflow.push(Some(rec));
            }
        }
        let len_bytes = buf.get(*pos..*pos + 8).ok_or_else(trunc)?;
        *pos += 8;
        let len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes")) as usize;
        Ok(HeapTable {
            pages,
            overflow,
            len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: i64) -> Vec<Value> {
        vec![Value::Int(i), Value::Str(format!("row-{i}"))]
    }

    #[test]
    fn insert_get_delete() {
        let mut h = HeapTable::new();
        let a = h.insert(&row(1));
        let b = h.insert(&row(2));
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(a).unwrap()[0], Value::Int(1));
        assert!(h.delete(a));
        assert!(h.get(a).is_none());
        assert!(!h.delete(a));
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(b).unwrap()[0], Value::Int(2));
    }

    #[test]
    fn update_moves_row() {
        let mut h = HeapTable::new();
        let a = h.insert(&row(1));
        let a2 = h.update(a, &row(99)).unwrap();
        assert!(h.get(a).is_none());
        assert_eq!(h.get(a2).unwrap()[0], Value::Int(99));
        assert_eq!(h.len(), 1);
        assert!(h.update(a, &row(5)).is_err(), "stale id rejected");
    }

    #[test]
    fn spans_multiple_pages() {
        let mut h = HeapTable::new();
        let ids: Vec<RowId> = (0..2000).map(|i| h.insert(&row(i))).collect();
        assert!(h.page_count() > 1);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(h.get(*id).unwrap()[0], Value::Int(i as i64));
        }
        assert_eq!(h.scan().count(), 2000);
    }

    #[test]
    fn large_rows_use_overflow() {
        let mut h = HeapTable::new();
        let big = vec![Value::Blob(vec![7u8; 100_000])];
        let id = h.insert(&big);
        assert_eq!(h.page_count(), 0, "big row bypasses pages");
        assert_eq!(h.get(id).unwrap(), big);
        assert!(h.delete(id));
        assert!(h.get(id).is_none());
    }

    #[test]
    fn scan_covers_pages_and_overflow() {
        let mut h = HeapTable::new();
        h.insert(&row(1));
        h.insert(&[Value::Blob(vec![1u8; 50_000])]);
        h.insert(&row(2));
        let rows: Vec<_> = h.scan().collect();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn snapshot_round_trip() {
        let mut h = HeapTable::new();
        let a = h.insert(&row(1));
        let b = h.insert(&[Value::Blob(vec![9u8; 20_000])]);
        let c = h.insert(&row(3));
        h.delete(c);
        let mut buf = Vec::new();
        h.snapshot(&mut buf);
        let mut pos = 0;
        let h2 = HeapTable::restore(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(h2.len(), 2);
        assert_eq!(h2.get(a).unwrap()[0], Value::Int(1));
        assert_eq!(h2.get(b).unwrap()[0], Value::Blob(vec![9u8; 20_000]));
        assert!(h2.get(c).is_none());
    }

    #[test]
    fn restore_rejects_truncation() {
        let mut h = HeapTable::new();
        h.insert(&row(1));
        let mut buf = Vec::new();
        h.snapshot(&mut buf);
        let mut pos = 0;
        assert!(HeapTable::restore(&buf[..buf.len() - 4], &mut pos).is_err());
    }
}
