//! Seeded disk-fault injection.
//!
//! The durability tests and the E16 crash-point harness need to damage
//! on-disk artifacts the way real storage does — torn writes that cut a
//! flush short, bit rot that silently changes bytes, whole files gone —
//! and they need to do it *reproducibly*, with the same deterministic
//! seed discipline the network simulator uses (`easia-net`'s
//! `FaultSchedule`: every draw comes from SplitMix64 over the scenario
//! seed, so the same seed yields the same faults, byte for byte).
//!
//! Faults are either constructed explicitly ([`DiskFault`]) or drawn
//! from the injector's seeded stream ([`DiskFaultInjector::draw_rot`],
//! [`DiskFaultInjector::draw_torn`]); [`DiskFaultInjector::apply`]
//! performs the damage on a real file.

use crate::error::{DbError, Result};
use std::path::Path;

/// One injectable storage fault.
#[derive(Debug, Clone, PartialEq)]
pub enum DiskFault {
    /// Crash mid-write: the file is cut to `keep` bytes (everything a
    /// partially-completed flush would have left behind).
    TornWrite {
        /// Bytes surviving the torn write.
        keep: u64,
    },
    /// Silent single-bit rot: bit `bit` of the byte at `offset` flips.
    BitRot {
        /// Byte offset of the damaged byte.
        offset: u64,
        /// Which bit (0..8) flips.
        bit: u8,
    },
    /// Multi-bit rot: several independent single-bit flips.
    MultiBitRot {
        /// The individual flips, applied in order.
        flips: Vec<(u64, u8)>,
    },
    /// The file disappears entirely (lost checkpoint, deleted segment).
    LoseFile,
}

/// Deterministic, seeded source and applicator of [`DiskFault`]s.
#[derive(Debug)]
pub struct DiskFaultInjector {
    state: u64,
    applied: u64,
}

impl DiskFaultInjector {
    /// An injector whose entire fault stream is a function of `seed`.
    pub fn new(seed: u64) -> Self {
        DiskFaultInjector {
            state: seed,
            applied: 0,
        }
    }

    /// Faults applied so far (for reports).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// SplitMix64 step — the same generator `easia-net::fault` uses, so
    /// storage and network fault schedules share one seed discipline.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Draw a single-bit rot at a uniform offset in a `len`-byte file.
    pub fn draw_rot(&mut self, len: u64) -> DiskFault {
        DiskFault::BitRot {
            offset: self.below(len),
            bit: (self.next_u64() % 8) as u8,
        }
    }

    /// Draw an `n`-flip multi-bit rot over a `len`-byte file.
    pub fn draw_multi_rot(&mut self, len: u64, n: usize) -> DiskFault {
        DiskFault::MultiBitRot {
            flips: (0..n)
                .map(|_| (self.below(len), (self.next_u64() % 8) as u8))
                .collect(),
        }
    }

    /// Draw a torn write cutting a `len`-byte file at a uniform point.
    pub fn draw_torn(&mut self, len: u64) -> DiskFault {
        DiskFault::TornWrite {
            keep: self.below(len + 1),
        }
    }

    /// Apply `fault` to the file at `path`.
    pub fn apply(&mut self, path: &Path, fault: &DiskFault) -> Result<()> {
        let io = |e: std::io::Error| DbError::Storage(format!("inject fault on {path:?}: {e}"));
        match fault {
            DiskFault::TornWrite { keep } => {
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(io)?;
                f.set_len(*keep).map_err(io)?;
            }
            DiskFault::BitRot { offset, bit } => {
                flip_bits(path, &[(*offset, *bit)]).map_err(io)?;
            }
            DiskFault::MultiBitRot { flips } => {
                flip_bits(path, flips).map_err(io)?;
            }
            DiskFault::LoseFile => {
                std::fs::remove_file(path).map_err(io)?;
            }
        }
        self.applied += 1;
        Ok(())
    }
}

fn flip_bits(path: &Path, flips: &[(u64, u8)]) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    for &(offset, bit) in flips {
        let i = (offset as usize).min(bytes.len().saturating_sub(1));
        if !bytes.is_empty() {
            bytes[i] ^= 1 << (bit % 8);
        }
    }
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_file(name: &str, content: &[u8]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("easia-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn same_seed_same_faults() {
        let mut a = DiskFaultInjector::new(42);
        let mut b = DiskFaultInjector::new(42);
        for _ in 0..64 {
            assert_eq!(a.draw_rot(1000), b.draw_rot(1000));
            assert_eq!(a.draw_torn(1000), b.draw_torn(1000));
            assert_eq!(a.draw_multi_rot(1000, 3), b.draw_multi_rot(1000, 3));
        }
        let mut c = DiskFaultInjector::new(43);
        let draws_a: Vec<_> = (0..16).map(|_| a.draw_rot(1000)).collect();
        let draws_c: Vec<_> = (0..16).map(|_| c.draw_rot(1000)).collect();
        assert_ne!(draws_a, draws_c, "different seeds diverge");
    }

    #[test]
    fn faults_do_what_they_say() {
        let mut inj = DiskFaultInjector::new(7);
        let p = temp_file("torn.bin", &[0xAA; 100]);
        inj.apply(&p, &DiskFault::TornWrite { keep: 37 }).unwrap();
        assert_eq!(std::fs::read(&p).unwrap().len(), 37);

        let p = temp_file("rot.bin", &[0x00; 16]);
        inj.apply(&p, &DiskFault::BitRot { offset: 5, bit: 3 })
            .unwrap();
        let got = std::fs::read(&p).unwrap();
        assert_eq!(got[5], 0x08);
        assert!(got.iter().enumerate().all(|(i, &b)| i == 5 || b == 0));

        let p = temp_file("multi.bin", &[0x00; 16]);
        inj.apply(
            &p,
            &DiskFault::MultiBitRot {
                flips: vec![(1, 0), (2, 1)],
            },
        )
        .unwrap();
        let got = std::fs::read(&p).unwrap();
        assert_eq!((got[1], got[2]), (0x01, 0x02));

        let p = temp_file("lost.bin", b"gone");
        inj.apply(&p, &DiskFault::LoseFile).unwrap();
        assert!(!p.exists());
        assert_eq!(inj.applied(), 4);
    }

    #[test]
    fn drawn_faults_stay_in_bounds() {
        let mut inj = DiskFaultInjector::new(99);
        for _ in 0..256 {
            match inj.draw_rot(50) {
                DiskFault::BitRot { offset, bit } => {
                    assert!(offset < 50);
                    assert!(bit < 8);
                }
                other => panic!("unexpected {other:?}"),
            }
            match inj.draw_torn(50) {
                DiskFault::TornWrite { keep } => assert!(keep <= 50),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
