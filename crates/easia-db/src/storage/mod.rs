//! Row storage: slotted pages, heap tables, and seeded disk-fault
//! injection for durability testing.

pub mod fault;
pub mod heap;
pub mod page;

pub use fault::{DiskFault, DiskFaultInjector};
pub use heap::{HeapTable, RowId};
pub use page::{Page, SlotId, PAGE_SIZE};
