//! Row storage: slotted pages and heap tables.

pub mod heap;
pub mod page;

pub use heap::{HeapTable, RowId};
pub use page::{Page, SlotId, PAGE_SIZE};
