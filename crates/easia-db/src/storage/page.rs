//! Slotted pages.
//!
//! Classic layout: a slot directory grows from the front, record data grows
//! from the back. Deleting a record tombstones its slot; `compact` squeezes
//! out the dead space. Records never move between pages, so a
//! `(page, slot)` pair is a stable row address until deletion.

/// Page size in bytes. 8 KiB, as in most disk-based engines.
pub const PAGE_SIZE: usize = 8192;

/// Slot number within a page.
pub type SlotId = u16;

const HEADER: usize = 6; // slot_count: u16, free_start: u16, free_end: u16
const SLOT: usize = 4; // offset: u16, len: u16 (len 0 = tombstone)

/// An 8 KiB slotted page.
#[derive(Clone)]
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Self {
        let mut p = Page {
            buf: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_u16(0, 0); // slot count
        p.set_u16(2, HEADER as u16); // free start
        p.set_u16(4, PAGE_SIZE as u16); // free end
        p
    }

    fn u16_at(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]])
    }

    fn set_u16(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots (including tombstones).
    pub fn slot_count(&self) -> u16 {
        self.u16_at(0)
    }

    fn free_start(&self) -> usize {
        self.u16_at(2) as usize
    }

    fn free_end(&self) -> usize {
        self.u16_at(4) as usize
    }

    /// Contiguous free bytes available for one more record + slot.
    pub fn free_space(&self) -> usize {
        self.free_end().saturating_sub(self.free_start())
    }

    /// Whether a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        len > 0 && self.free_space() >= len + SLOT
    }

    /// Insert a record; returns its slot. Panics if it does not fit
    /// (callers check [`Page::fits`] first) or if the record is empty.
    pub fn insert(&mut self, record: &[u8]) -> SlotId {
        assert!(self.fits(record.len()), "record does not fit in page");
        let slot = self.slot_count();
        let new_end = self.free_end() - record.len();
        self.buf[new_end..new_end + record.len()].copy_from_slice(record);
        let slot_off = HEADER + slot as usize * SLOT;
        self.set_u16(slot_off, new_end as u16);
        self.set_u16(slot_off + 2, record.len() as u16);
        self.set_u16(0, slot + 1);
        self.set_u16(2, (slot_off + SLOT) as u16);
        self.set_u16(4, new_end as u16);
        slot
    }

    /// Read the record in `slot`; `None` for tombstones or out-of-range.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let slot_off = HEADER + slot as usize * SLOT;
        let off = self.u16_at(slot_off) as usize;
        let len = self.u16_at(slot_off + 2) as usize;
        if len == 0 {
            None
        } else {
            Some(&self.buf[off..off + len])
        }
    }

    /// Tombstone `slot`; returns true if it held a record.
    pub fn delete(&mut self, slot: SlotId) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let slot_off = HEADER + slot as usize * SLOT;
        if self.u16_at(slot_off + 2) == 0 {
            return false;
        }
        self.set_u16(slot_off + 2, 0);
        true
    }

    /// Live records as `(slot, bytes)` pairs, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }

    /// Bytes recoverable by compaction (dead record space).
    pub fn dead_space(&self) -> usize {
        let live: usize = self.iter().map(|(_, r)| r.len()).sum();
        (PAGE_SIZE - self.free_end()) - live
    }

    /// Rewrite the page, dropping tombstoned records and renumbering
    /// slots. Returns the remapping `old_slot -> new_slot` for live rows.
    /// Used offline (snapshot compaction), since it invalidates RowIds.
    pub fn compact(&mut self) -> Vec<(SlotId, SlotId)> {
        let live: Vec<(SlotId, Vec<u8>)> = self.iter().map(|(s, r)| (s, r.to_vec())).collect();
        *self = Page::new();
        let mut map = Vec::with_capacity(live.len());
        for (old, rec) in live {
            let new = self.insert(&rec);
            map.push((old, new));
        }
        map
    }

    /// Raw bytes, for snapshots.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf[..]
    }

    /// Rebuild from snapshot bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != PAGE_SIZE {
            return None;
        }
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        buf.copy_from_slice(bytes);
        Some(Page { buf })
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let a = p.insert(b"alpha");
        let b = p.insert(b"beta");
        assert_eq!(p.get(a), Some(&b"alpha"[..]));
        assert_eq!(p.get(b), Some(&b"beta"[..]));
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn delete_tombstones() {
        let mut p = Page::new();
        let a = p.insert(b"alpha");
        assert!(p.delete(a));
        assert!(!p.delete(a), "double delete is a no-op");
        assert_eq!(p.get(a), None);
        // Slot numbers of later inserts keep increasing.
        let b = p.insert(b"beta");
        assert_eq!(b, 1);
    }

    #[test]
    fn fills_until_full() {
        let mut p = Page::new();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec);
            n += 1;
        }
        // 8192 - 6 header over (100 + 4) per record ≈ 78 records.
        assert_eq!(n, (PAGE_SIZE - HEADER) / (100 + SLOT));
        assert!(!p.fits(100));
        assert!(p.fits(p.free_space() - SLOT));
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut p = Page::new();
        p.insert(b"a");
        let b = p.insert(b"b");
        p.insert(b"c");
        p.delete(b);
        let live: Vec<_> = p.iter().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(live, vec![(0, b"a".to_vec()), (2, b"c".to_vec())]);
    }

    #[test]
    fn compact_reclaims_space() {
        let mut p = Page::new();
        let a = p.insert(&[1u8; 1000]);
        p.insert(&[2u8; 1000]);
        p.delete(a);
        assert!(p.dead_space() >= 1000);
        let map = p.compact();
        assert_eq!(map, vec![(1, 0)]);
        assert_eq!(p.dead_space(), 0);
        assert_eq!(p.get(0), Some(&[2u8; 1000][..]));
    }

    #[test]
    fn snapshot_round_trip() {
        let mut p = Page::new();
        p.insert(b"persisted");
        let bytes = p.as_bytes().to_vec();
        let q = Page::from_bytes(&bytes).unwrap();
        assert_eq!(q.get(0), Some(&b"persisted"[..]));
        assert!(Page::from_bytes(&bytes[..100]).is_none());
    }

    #[test]
    fn out_of_range_slot() {
        let p = Page::new();
        assert_eq!(p.get(5), None);
    }
}
