//! SQL values and types, including the SQL/MED `DATALINK` type.

use crate::error::{DbError, Result};
use std::cmp::Ordering;
use std::fmt;

/// Column types supported by the engine.
///
/// `Blob`/`Clob` hold "small files that can be uploaded over the Internet"
/// inside the database; `Datalink` references an external file managed
/// under SQL/MED link control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlType {
    /// 64-bit signed integer (covers SMALLINT/INTEGER/BIGINT).
    Integer,
    /// 64-bit IEEE float (covers REAL/DOUBLE).
    Double,
    /// Variable-length string with a declared maximum length.
    Varchar(usize),
    /// Boolean.
    Boolean,
    /// Seconds since the archive epoch.
    Timestamp,
    /// Binary large object stored in the database.
    Blob,
    /// Character large object stored in the database.
    Clob,
    /// SQL/MED DATALINK: a URL referencing external data.
    Datalink,
}

impl SqlType {
    /// Human-readable SQL name.
    pub fn sql_name(&self) -> String {
        match self {
            SqlType::Integer => "INTEGER".into(),
            SqlType::Double => "DOUBLE".into(),
            SqlType::Varchar(n) => format!("VARCHAR({n})"),
            SqlType::Boolean => "BOOLEAN".into(),
            SqlType::Timestamp => "TIMESTAMP".into(),
            SqlType::Blob => "BLOB".into(),
            SqlType::Clob => "CLOB".into(),
            SqlType::Datalink => "DATALINK".into(),
        }
    }
}

/// A runtime SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Double.
    Double(f64),
    /// String (VARCHAR).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Timestamp (seconds).
    Timestamp(i64),
    /// Binary large object.
    Blob(Vec<u8>),
    /// Character large object.
    Clob(String),
    /// DATALINK URL, stored in its "linked" form
    /// (`http://host/path/filename`); access tokens are spliced in at
    /// SELECT time by the datalink layer.
    Datalink(String),
}

impl Value {
    /// True if this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The natural type of this value, or `None` for NULL.
    pub fn sql_type(&self) -> Option<SqlType> {
        Some(match self {
            Value::Null => return None,
            Value::Int(_) => SqlType::Integer,
            Value::Double(_) => SqlType::Double,
            Value::Str(_) => SqlType::Varchar(usize::MAX),
            Value::Bool(_) => SqlType::Boolean,
            Value::Timestamp(_) => SqlType::Timestamp,
            Value::Blob(_) => SqlType::Blob,
            Value::Clob(_) => SqlType::Clob,
            Value::Datalink(_) => SqlType::Datalink,
        })
    }

    /// Coerce this value to `ty`, or error. NULL passes through.
    pub fn coerce(self, ty: SqlType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        let err = |v: &Value| {
            Err(DbError::Type(format!(
                "cannot store {} in a {} column",
                v.type_name(),
                ty.sql_name()
            )))
        };
        Ok(match (ty, self) {
            (SqlType::Integer, Value::Int(i)) => Value::Int(i),
            (SqlType::Integer, Value::Double(d)) if d.fract() == 0.0 => Value::Int(d as i64),
            (SqlType::Double, Value::Double(d)) => Value::Double(d),
            (SqlType::Double, Value::Int(i)) => Value::Double(i as f64),
            (SqlType::Varchar(max), Value::Str(s)) => {
                if s.chars().count() > max {
                    return Err(DbError::Type(format!(
                        "value of length {} exceeds VARCHAR({max})",
                        s.chars().count()
                    )));
                }
                Value::Str(s)
            }
            (SqlType::Boolean, Value::Bool(b)) => Value::Bool(b),
            (SqlType::Timestamp, Value::Timestamp(t)) => Value::Timestamp(t),
            (SqlType::Timestamp, Value::Int(t)) => Value::Timestamp(t),
            (SqlType::Blob, Value::Blob(b)) => Value::Blob(b),
            (SqlType::Blob, Value::Str(s)) => Value::Blob(s.into_bytes()),
            (SqlType::Clob, Value::Clob(c)) => Value::Clob(c),
            (SqlType::Clob, Value::Str(s)) => Value::Clob(s),
            (SqlType::Datalink, Value::Datalink(u)) => Value::Datalink(u),
            (SqlType::Datalink, Value::Str(u)) => Value::Datalink(u),
            (_, v) => return err(&v),
        })
    }

    /// Short type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INTEGER",
            Value::Double(_) => "DOUBLE",
            Value::Str(_) => "VARCHAR",
            Value::Bool(_) => "BOOLEAN",
            Value::Timestamp(_) => "TIMESTAMP",
            Value::Blob(_) => "BLOB",
            Value::Clob(_) => "CLOB",
            Value::Datalink(_) => "DATALINK",
        }
    }

    /// SQL comparison with three-valued logic: NULL compares as unknown.
    /// Returns `None` when either side is NULL or the types are
    /// incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Int(a), Double(b)) => (*a as f64).partial_cmp(b),
            (Double(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Double(a), Double(b)) => a.partial_cmp(b),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Clob(a), Clob(b)) => Some(a.cmp(b)),
            (Str(a), Clob(b)) | (Clob(b), Str(a)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            (Timestamp(a), Int(b)) | (Int(b), Timestamp(a)) => Some(a.cmp(b)),
            (Blob(a), Blob(b)) => Some(a.cmp(b)),
            (Datalink(a), Datalink(b)) => Some(a.cmp(b)),
            (Datalink(a), Str(b)) | (Str(b), Datalink(a)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used for index keys and ORDER BY: NULLs sort first,
    /// then by type family, then by value. Unlike [`Value::sql_cmp`] this
    /// never fails, so B+trees and sorts are well-defined over mixed data.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Double(_) | Value::Timestamp(_) => 2,
                Value::Str(_) | Value::Clob(_) | Value::Datalink(_) => 3,
                Value::Blob(_) => 4,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Blob(a), Value::Blob(b)) => a.cmp(b),
            _ if ra == 2 => {
                let a = self.as_f64().expect("rank 2 is numeric");
                let b = other.as_f64().expect("rank 2 is numeric");
                a.partial_cmp(&b).unwrap_or(Ordering::Equal)
            }
            _ => self
                .as_str_like()
                .expect("rank 3 is stringy")
                .cmp(other.as_str_like().expect("rank 3 is stringy")),
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            Value::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }

    fn as_str_like(&self) -> Option<&str> {
        match self {
            Value::Str(s) | Value::Clob(s) | Value::Datalink(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string, if this is any string-like value.
    pub fn as_text(&self) -> Option<&str> {
        self.as_str_like()
    }

    /// Borrow as an integer, if numeric and integral.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) | Value::Timestamp(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view used by arithmetic and aggregates.
    pub fn numeric(&self) -> Option<f64> {
        self.as_f64()
    }

    /// Size in bytes of a large-object value, used for the interface's
    /// "hypertext link displays size of object" rendering.
    pub fn lob_size(&self) -> Option<usize> {
        match self {
            Value::Blob(b) => Some(b.len()),
            Value::Clob(c) => Some(c.len()),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) | Value::Clob(s) | Value::Datalink(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Timestamp(t) => write!(f, "{t}"),
            Value::Blob(b) => write!(f, "<blob {} bytes>", b.len()),
        }
    }
}

/// Encode a row (for heap pages, WAL records and snapshots).
pub fn encode_row(row: &[Value], out: &mut Vec<u8>) {
    out.extend_from_slice(&(row.len() as u32).to_le_bytes());
    for v in row {
        match v {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Double(d) => {
                out.push(2);
                out.extend_from_slice(&d.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                put_bytes(out, s.as_bytes());
            }
            Value::Bool(b) => out.push(if *b { 5 } else { 4 }),
            Value::Timestamp(t) => {
                out.push(6);
                out.extend_from_slice(&t.to_le_bytes());
            }
            Value::Blob(b) => {
                out.push(7);
                put_bytes(out, b);
            }
            Value::Clob(c) => {
                out.push(8);
                put_bytes(out, c.as_bytes());
            }
            Value::Datalink(u) => {
                out.push(9);
                put_bytes(out, u.as_bytes());
            }
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// Decode a row previously encoded with [`encode_row`]; advances `pos`.
pub fn decode_row(buf: &[u8], pos: &mut usize) -> Result<Vec<Value>> {
    let n = read_u32(buf, pos)? as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| DbError::Storage("row decode: truncated".into()))?;
        *pos += 1;
        let v = match tag {
            0 => Value::Null,
            1 => Value::Int(read_i64(buf, pos)?),
            2 => Value::Double(f64::from_le_bytes(read_8(buf, pos)?)),
            3 => Value::Str(read_string(buf, pos)?),
            4 => Value::Bool(false),
            5 => Value::Bool(true),
            6 => Value::Timestamp(read_i64(buf, pos)?),
            7 => {
                let len = read_u32(buf, pos)? as usize;
                let b = get_slice(buf, pos, len)?.to_vec();
                Value::Blob(b)
            }
            8 => Value::Clob(read_string(buf, pos)?),
            9 => Value::Datalink(read_string(buf, pos)?),
            t => return Err(DbError::Storage(format!("row decode: bad tag {t}"))),
        };
        row.push(v);
    }
    Ok(row)
}

fn get_slice<'a>(buf: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8]> {
    let s = buf
        .get(*pos..*pos + len)
        .ok_or_else(|| DbError::Storage("row decode: truncated".into()))?;
    *pos += len;
    Ok(s)
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    Ok(u32::from_le_bytes(
        get_slice(buf, pos, 4)?.try_into().expect("4 bytes"),
    ))
}

fn read_8(buf: &[u8], pos: &mut usize) -> Result<[u8; 8]> {
    Ok(get_slice(buf, pos, 8)?.try_into().expect("8 bytes"))
}

fn read_i64(buf: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(i64::from_le_bytes(read_8(buf, pos)?))
}

fn read_string(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = read_u32(buf, pos)? as usize;
    let s = get_slice(buf, pos, len)?;
    String::from_utf8(s.to_vec()).map_err(|_| DbError::Storage("row decode: bad utf8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Int(5).coerce(SqlType::Double).unwrap(),
            Value::Double(5.0)
        );
        assert_eq!(
            Value::Double(5.0).coerce(SqlType::Integer).unwrap(),
            Value::Int(5)
        );
        assert!(Value::Double(5.5).coerce(SqlType::Integer).is_err());
        assert_eq!(
            Value::Str("x".into()).coerce(SqlType::Clob).unwrap(),
            Value::Clob("x".into())
        );
        assert_eq!(
            Value::Str("http://h/f".into())
                .coerce(SqlType::Datalink)
                .unwrap(),
            Value::Datalink("http://h/f".into())
        );
        assert!(Value::Null.coerce(SqlType::Integer).unwrap().is_null());
    }

    #[test]
    fn varchar_length_enforced() {
        assert!(Value::Str("abcd".into())
            .coerce(SqlType::Varchar(3))
            .is_err());
        assert!(Value::Str("abc".into()).coerce(SqlType::Varchar(3)).is_ok());
    }

    #[test]
    fn sql_cmp_three_valued() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(2).sql_cmp(&Value::Int(3)), Some(Ordering::Less));
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Str("a".into()).sql_cmp(&Value::Int(1)),
            None,
            "incomparable types"
        );
    }

    #[test]
    fn total_cmp_is_total() {
        let vals = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Double(2.5),
            Value::Timestamp(100),
            Value::Str("a".into()),
            Value::Clob("b".into()),
            Value::Datalink("c".into()),
            Value::Blob(vec![1]),
        ];
        for a in &vals {
            for b in &vals {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse(), "{a:?} vs {b:?}");
            }
            assert_eq!(a.total_cmp(a), Ordering::Equal);
        }
    }

    #[test]
    fn row_codec_round_trip() {
        let row = vec![
            Value::Null,
            Value::Int(-42),
            Value::Double(3.25),
            Value::Str("héllo".into()),
            Value::Bool(true),
            Value::Bool(false),
            Value::Timestamp(123456789),
            Value::Blob(vec![0, 1, 2, 255]),
            Value::Clob("large text".into()),
            Value::Datalink("http://fs1/data/t1.edf".into()),
        ];
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        let mut pos = 0;
        let back = decode_row(&buf, &mut pos).unwrap();
        assert_eq!(back, row);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn row_codec_rejects_truncation() {
        let row = vec![Value::Str("abcdef".into())];
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        for cut in [1, 4, 6, buf.len() - 1] {
            let mut pos = 0;
            assert!(decode_row(&buf[..cut], &mut pos).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn lob_size_reporting() {
        assert_eq!(Value::Blob(vec![0; 10]).lob_size(), Some(10));
        assert_eq!(Value::Clob("abc".into()).lob_size(), Some(3));
        assert_eq!(Value::Int(1).lob_size(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
        assert_eq!(Value::Blob(vec![1, 2]).to_string(), "<blob 2 bytes>");
    }
}
