//! Query execution.

use crate::db::{Database, ResultSet};
use crate::error::{DbError, Result};
use crate::expr::{truth, EvalContext, RowSchema};
use crate::mvcc::ReadView;
use crate::plan::{choose_access_path, AccessPath};
use crate::sql::ast::{Expr, Join, JoinKind, OrderBy, SelectItem, SelectStmt};
use crate::storage::RowId;
use crate::value::{encode_row, Value};
use std::collections::HashMap;

/// Evaluate a row-independent expression (INSERT values, constants).
pub fn eval_const(db: &Database, expr: &Expr, params: &[Value]) -> Result<Value> {
    let schema = RowSchema::default();
    let ctx = EvalContext {
        schema: &schema,
        row: &[],
        params,
        functions: db.functions(),
    };
    ctx.eval(expr)
}

/// Evaluate an expression against one row of `table`.
pub fn eval_row(
    db: &Database,
    expr: &Expr,
    table: &str,
    row: &[Value],
    params: &[Value],
) -> Result<Value> {
    let names: Vec<String> = db
        .schema(table)
        .ok_or_else(|| DbError::Catalog(format!("table {table} does not exist")))?
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let schema = RowSchema::for_table(table, &names);
    let ctx = EvalContext {
        schema: &schema,
        row,
        params,
        functions: db.functions(),
    };
    ctx.eval(expr)
}

/// Fetch `(RowId, row)` pairs of `table` visible to `view` and matching
/// `where_clause` (index-accelerated when possible). Used by
/// UPDATE/DELETE.
pub fn collect_matching(
    db: &Database,
    view: &ReadView,
    table: &str,
    where_clause: Option<&Expr>,
    params: &[Value],
) -> Result<Vec<(RowId, Vec<Value>)>> {
    let t = db
        .table(table)
        .ok_or_else(|| DbError::Catalog(format!("table {table} does not exist")))?;
    let path = choose_access_path(db, t, table, where_clause, params)?;
    let index_probe = matches!(path, AccessPath::IndexEq { .. });
    let candidates: Vec<(RowId, Vec<Value>)> = match path {
        AccessPath::FullScan => t
            .heap
            .scan()
            .filter(|(rid, _)| db.row_visible(table, *rid, view))
            .collect(),
        AccessPath::IndexEq { index_pos, key, .. } => {
            let ix = &t.indexes[index_pos];
            let probe = if ix.col_indices.len() == 1 {
                ix.tree.get(std::slice::from_ref(&key))
            } else {
                // Composite index: range over entries whose first column
                // equals the probe key.
                ix.tree
                    .range(None, None)
                    .into_iter()
                    .filter(|(k, _)| k.first() == Some(&key))
                    .flat_map(|(_, rows)| rows)
                    .collect()
            };
            probe
                .into_iter()
                .filter(|rid| db.row_visible(table, *rid, view))
                .filter_map(|rid| t.heap.get(rid).map(|row| (rid, row)))
                .collect()
        }
    };
    if let Some(m) = db.metrics() {
        if index_probe {
            m.index_scans.inc();
        } else {
            m.heap_scans.inc();
        }
        m.rows_scanned.add(candidates.len() as f64);
        m.stage_scan.observe(candidates.len() as f64);
    }
    let names: Vec<String> = t.schema.columns.iter().map(|c| c.name.clone()).collect();
    let schema = RowSchema::for_table(table, &names);
    let mut out = Vec::new();
    for (rid, row) in candidates {
        let keep = match where_clause {
            None => true,
            Some(pred) => {
                let ctx = EvalContext {
                    schema: &schema,
                    row: &row,
                    params,
                    functions: db.functions(),
                };
                truth(&ctx.eval(pred)?) == Some(true)
            }
        };
        if keep {
            out.push((rid, row));
        }
    }
    Ok(out)
}

/// Execute a SELECT against a read view.
pub fn run_select(
    db: &Database,
    view: &ReadView,
    sel: &SelectStmt,
    params: &[Value],
) -> Result<ResultSet> {
    // Table-less SELECT: evaluate items against an empty row.
    let Some(from) = &sel.from else {
        let schema = RowSchema::default();
        let ctx = EvalContext {
            schema: &schema,
            row: &[],
            params,
            functions: db.functions(),
        };
        let mut columns = Vec::new();
        let mut row = Vec::new();
        for item in &sel.items {
            match item {
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| derive_name(expr)));
                    row.push(ctx.eval(expr)?);
                }
                _ => return Err(DbError::Eval("wildcard requires FROM".into())),
            }
        }
        return Ok(ResultSet {
            columns,
            rows: vec![row],
            affected: 0,
        });
    };

    // ---- base table ----
    let base_alias = from
        .alias
        .clone()
        .unwrap_or_else(|| from.name.to_ascii_uppercase());
    let mut alias_map: HashMap<String, String> = HashMap::new();
    alias_map.insert(base_alias.clone(), from.name.to_ascii_uppercase());
    let base_table = db
        .table(&from.name)
        .ok_or_else(|| DbError::Catalog(format!("table {} does not exist", from.name)))?;
    let names: Vec<String> = base_table
        .schema
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let mut schema = RowSchema::for_table(&base_alias, &names);
    let path = choose_access_path(
        db,
        base_table,
        &base_alias,
        sel.where_clause.as_ref(),
        params,
    )?;
    let index_probe = matches!(path, AccessPath::IndexEq { .. });
    let base_name = from.name.to_ascii_uppercase();
    let mut rows: Vec<Vec<Value>> = match path {
        AccessPath::FullScan => base_table
            .heap
            .scan()
            .filter(|(rid, _)| db.row_visible(&base_name, *rid, view))
            .map(|(_, r)| r)
            .collect(),
        AccessPath::IndexEq { index_pos, key, .. } => {
            let ix = &base_table.indexes[index_pos];
            let rids = if ix.col_indices.len() == 1 {
                ix.tree.get(std::slice::from_ref(&key))
            } else {
                ix.tree
                    .range(None, None)
                    .into_iter()
                    .filter(|(k, _)| k.first() == Some(&key))
                    .flat_map(|(_, r)| r)
                    .collect()
            };
            rids.into_iter()
                .filter(|rid| db.row_visible(&base_name, *rid, view))
                .filter_map(|rid| base_table.heap.get(rid))
                .collect()
        }
    };
    if let Some(m) = db.metrics() {
        if index_probe {
            m.index_scans.inc();
        } else {
            m.heap_scans.inc();
        }
        m.rows_scanned.add(rows.len() as f64);
        m.stage_scan.observe(rows.len() as f64);
    }

    // ---- joins ----
    for join in &sel.joins {
        (schema, rows) = run_join(db, view, &schema, rows, join, params, &mut alias_map)?;
    }
    if !sel.joins.is_empty() {
        if let Some(m) = db.metrics() {
            m.stage_join.observe(rows.len() as f64);
        }
    }

    // ---- WHERE ----
    if let Some(pred) = &sel.where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            let ctx = EvalContext {
                schema: &schema,
                row: &row,
                params,
                functions: db.functions(),
            };
            if truth(&ctx.eval(pred)?) == Some(true) {
                kept.push(row);
            }
        }
        rows = kept;
        if let Some(m) = db.metrics() {
            m.stage_filter.observe(rows.len() as f64);
        }
    }

    // ---- aggregation or plain projection ----
    let has_agg = sel
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || sel.having.as_ref().is_some_and(|h| h.contains_aggregate())
        || !sel.group_by.is_empty();

    let (columns, mut out_rows, sort_ctx) = if has_agg {
        let out = aggregate_pipeline(db, sel, &schema, &rows, params)?;
        if let Some(m) = db.metrics() {
            m.stage_aggregate.observe(out.1.len() as f64);
        }
        out
    } else {
        project_pipeline(db, sel, &schema, &rows, params, &alias_map)?
    };

    // ---- DISTINCT ----
    if sel.distinct {
        let mut seen = std::collections::HashSet::new();
        let mut kept_rows = Vec::new();
        let mut kept_ctx = Vec::new();
        for (row, ctx) in out_rows.into_iter().zip(sort_ctx) {
            let mut buf = Vec::new();
            encode_row(&row, &mut buf);
            if seen.insert(buf) {
                kept_rows.push(row);
                kept_ctx.push(ctx);
            }
        }
        out_rows = kept_rows;
        return finish_select(db, sel, columns, out_rows, kept_ctx, params);
    }
    finish_select(db, sel, columns, out_rows, sort_ctx, params)
}

/// Per-output-row context used to evaluate ORDER BY: the underlying
/// (joined or representative) row plus any aggregate values.
/// Projected output: column names, rows, and per-row sort context.
type Projection = (Vec<String>, Vec<Vec<Value>>, Vec<SortCtx>);

struct SortCtx {
    row: Vec<Value>,
    aggs: HashMap<String, Value>,
}

fn finish_select(
    db: &Database,
    sel: &SelectStmt,
    columns: Vec<String>,
    mut out_rows: Vec<Vec<Value>>,
    sort_ctx: Vec<SortCtx>,
    params: &[Value],
) -> Result<ResultSet> {
    if !sel.order_by.is_empty() {
        let schema = order_schema(db, sel)?;
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(out_rows.len());
        for (row, ctx) in out_rows.iter().zip(&sort_ctx) {
            let mut keys = Vec::with_capacity(sel.order_by.len());
            for ob in &sel.order_by {
                keys.push(order_key(db, ob, &schema, ctx, row, &columns, params)?);
            }
            keyed.push((keys, row.clone()));
        }
        keyed.sort_by(|a, b| {
            for (i, ob) in sel.order_by.iter().enumerate() {
                let ord = a.0[i].total_cmp(&b.0[i]);
                let ord = if ob.asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        out_rows = keyed.into_iter().map(|(_, r)| r).collect();
        if let Some(m) = db.metrics() {
            m.stage_sort.observe(out_rows.len() as f64);
        }
    }
    if let Some(limit) = sel.limit {
        out_rows.truncate(limit);
    }
    if let Some(m) = db.metrics() {
        m.rows_returned.add(out_rows.len() as f64);
    }
    Ok(ResultSet {
        columns,
        rows: out_rows,
        affected: 0,
    })
}

fn order_schema(db: &Database, sel: &SelectStmt) -> Result<RowSchema> {
    // Rebuild the joined row schema ORDER BY keys are evaluated against.
    let Some(from) = &sel.from else {
        return Ok(RowSchema::default());
    };
    let base_alias = from
        .alias
        .clone()
        .unwrap_or_else(|| from.name.to_ascii_uppercase());
    let t = db
        .table(&from.name)
        .ok_or_else(|| DbError::Catalog(format!("table {} missing", from.name)))?;
    let names: Vec<String> = t.schema.columns.iter().map(|c| c.name.clone()).collect();
    let mut schema = RowSchema::for_table(&base_alias, &names);
    for j in &sel.joins {
        let alias = j
            .table
            .alias
            .clone()
            .unwrap_or_else(|| j.table.name.to_ascii_uppercase());
        let jt = db
            .table(&j.table.name)
            .ok_or_else(|| DbError::Catalog(format!("table {} missing", j.table.name)))?;
        let jnames: Vec<String> = jt.schema.columns.iter().map(|c| c.name.clone()).collect();
        schema = schema.join(&RowSchema::for_table(&alias, &jnames));
    }
    Ok(schema)
}

fn order_key(
    db: &Database,
    ob: &OrderBy,
    schema: &RowSchema,
    ctx: &SortCtx,
    out_row: &[Value],
    columns: &[String],
    params: &[Value],
) -> Result<Value> {
    // A bare column matching an output alias sorts by the output column.
    if let Expr::Column { table: None, name } = &ob.expr {
        if let Some(pos) = columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
            return Ok(out_row[pos].clone());
        }
    }
    eval_with_aggs(db, &ob.expr, schema, &ctx.row, &ctx.aggs, params)
}

/// Derive an output column name for an unaliased select item, exactly
/// as the aggregate pipeline labels its columns.
pub fn derive_name(expr: &Expr) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        _ => "EXPR".to_string(),
    }
}

fn run_join(
    db: &Database,
    view: &ReadView,
    left_schema: &RowSchema,
    left_rows: Vec<Vec<Value>>,
    join: &Join,
    params: &[Value],
    alias_map: &mut HashMap<String, String>,
) -> Result<(RowSchema, Vec<Vec<Value>>)> {
    let alias = join
        .table
        .alias
        .clone()
        .unwrap_or_else(|| join.table.name.to_ascii_uppercase());
    let right_name = join.table.name.to_ascii_uppercase();
    alias_map.insert(alias.clone(), right_name.clone());
    let right = db
        .table(&join.table.name)
        .ok_or_else(|| DbError::Catalog(format!("table {} does not exist", join.table.name)))?;
    let rnames: Vec<String> = right
        .schema
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let right_schema = RowSchema::for_table(&alias, &rnames);
    let out_schema = left_schema.join(&right_schema);
    let right_width = rnames.len();

    // Equi-join acceleration: find `right.col = <left expr>` in the ON
    // conjuncts where the right table has an index on col.
    let mut probe: Option<(usize, Expr)> = None; // (right index pos, left expr)
    for c in crate::plan::conjuncts(&join.on) {
        let Expr::Binary(l, crate::sql::ast::BinaryOp::Eq, r) = c else {
            continue;
        };
        for (a, b) in [(l, r), (r, l)] {
            if let Expr::Column {
                table: Some(t),
                name,
            } = a.as_ref()
            {
                if t.eq_ignore_ascii_case(&alias) {
                    if let Some(cpos) = right.schema.column_index(name) {
                        if let Some(ipos) =
                            right.indexes.iter().position(|ix| ix.col_indices == [cpos])
                        {
                            // The other side must be evaluable on the left.
                            if expr_uses_only(b, left_schema) {
                                probe = Some((ipos, b.as_ref().clone()));
                            }
                        }
                    }
                }
            }
            if probe.is_some() {
                break;
            }
        }
        if probe.is_some() {
            break;
        }
    }

    let right_rows: Vec<Vec<Value>> = if probe.is_none() {
        right
            .heap
            .scan()
            .filter(|(rid, _)| db.row_visible(&right_name, *rid, view))
            .map(|(_, r)| r)
            .collect()
    } else {
        Vec::new()
    };

    let mut out = Vec::new();
    for lrow in left_rows {
        let mut matched = false;
        let candidates: Vec<Vec<Value>> = match &probe {
            Some((ipos, lexpr)) => {
                let lctx = EvalContext {
                    schema: left_schema,
                    row: &lrow,
                    params,
                    functions: db.functions(),
                };
                let key = lctx.eval(lexpr)?;
                if key.is_null() {
                    Vec::new()
                } else {
                    right.indexes[*ipos]
                        .tree
                        .get(&[key])
                        .into_iter()
                        .filter(|rid| db.row_visible(&right_name, *rid, view))
                        .filter_map(|rid| right.heap.get(rid))
                        .collect()
                }
            }
            None => right_rows.clone(),
        };
        for rrow in candidates {
            let mut combined = lrow.clone();
            combined.extend(rrow);
            let ctx = EvalContext {
                schema: &out_schema,
                row: &combined,
                params,
                functions: db.functions(),
            };
            if truth(&ctx.eval(&join.on)?) == Some(true) {
                matched = true;
                out.push(combined);
            }
        }
        if !matched && join.kind == JoinKind::Left {
            let mut combined = lrow;
            combined.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(combined);
        }
    }
    Ok((out_schema, out))
}

fn expr_uses_only(e: &Expr, schema: &RowSchema) -> bool {
    let mut ok = true;
    e.walk(&mut |n| {
        if let Expr::Column { table, name } = n {
            if schema.resolve(table.as_deref(), name).is_err() {
                ok = false;
            }
        }
    });
    ok
}

// ---- plain projection ----

fn project_pipeline(
    db: &Database,
    sel: &SelectStmt,
    schema: &RowSchema,
    rows: &[Vec<Value>],
    params: &[Value],
    alias_map: &HashMap<String, String>,
) -> Result<Projection> {
    // Expand items to (name, kind) where kind is either a slot index
    // (column passthrough, datalink-rendered) or an expression.
    enum Out {
        Slot(usize),
        Expr(Expr),
    }
    let mut columns = Vec::new();
    let mut outs = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for (i, c) in schema.columns.iter().enumerate() {
                    columns.push(c.name.clone());
                    outs.push(Out::Slot(i));
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let t = t.to_ascii_uppercase();
                let mut any = false;
                for (i, c) in schema.columns.iter().enumerate() {
                    if c.table.as_deref() == Some(t.as_str()) {
                        columns.push(c.name.clone());
                        outs.push(Out::Slot(i));
                        any = true;
                    }
                }
                if !any {
                    return Err(DbError::Eval(format!("unknown table alias {t} in {t}.*")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                columns.push(alias.clone().unwrap_or_else(|| derive_name(expr)));
                // Column refs become slots so DATALINK rendering applies.
                match expr {
                    Expr::Column { table, name } => {
                        let i = schema.resolve(table.as_deref(), name)?;
                        outs.push(Out::Slot(i));
                    }
                    other => outs.push(Out::Expr(other.clone())),
                }
            }
        }
    }
    // Slot -> datalink spec mapping for token rendering.
    let mut dl_specs: HashMap<usize, crate::schema::DatalinkSpec> = HashMap::new();
    for (i, cref) in schema.columns.iter().enumerate() {
        if let Some(alias) = &cref.table {
            if let Some(real) = alias_map.get(alias) {
                if let Some(ts) = db.schema(real) {
                    if let Some(col) = ts.column(&cref.name) {
                        if let Some(spec) = &col.datalink {
                            dl_specs.insert(i, spec.clone());
                        }
                    }
                }
            }
        }
    }
    let mut out_rows = Vec::with_capacity(rows.len());
    let mut sort_ctx = Vec::with_capacity(rows.len());
    for row in rows {
        let ctx = EvalContext {
            schema,
            row,
            params,
            functions: db.functions(),
        };
        let mut out = Vec::with_capacity(outs.len());
        for o in &outs {
            match o {
                Out::Slot(i) => {
                    let v = row[*i].clone();
                    let v = match (&v, dl_specs.get(i)) {
                        (Value::Datalink(url), Some(spec)) => {
                            Value::Datalink(db.render_datalink(spec, url))
                        }
                        _ => v,
                    };
                    out.push(v);
                }
                Out::Expr(e) => out.push(ctx.eval(e)?),
            }
        }
        out_rows.push(out);
        sort_ctx.push(SortCtx {
            row: row.clone(),
            aggs: HashMap::new(),
        });
    }
    Ok((columns, out_rows, sort_ctx))
}

// ---- aggregation ----

/// Canonical identity key for an aggregate call site, used to dedup
/// repeated occurrences of the same call (e.g. `AVG(X)` in the item
/// list and again in HAVING). Exposed so the federation layer can key
/// its partial-merge states the same way the local executor does.
pub fn agg_key(e: &Expr) -> String {
    format!("{e:?}")
}

/// True when `name` is one of the supported aggregate functions.
pub fn is_aggregate_fn(name: &str) -> bool {
    matches!(name, "COUNT" | "SUM" | "AVG" | "MIN" | "MAX")
}

/// Collect aggregate call sites from an expression, deduplicated by
/// [`agg_key`], in first-appearance order. Does not recurse into
/// aggregate arguments (nested aggregates are invalid SQL).
pub fn collect_aggs(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Function { name, .. } = e {
        if is_aggregate_fn(name) {
            if !out.iter().any(|x| agg_key(x) == agg_key(e)) {
                out.push(e.clone());
            }
            return; // nested aggregates are invalid; don't recurse
        }
    }
    match e {
        Expr::Unary(_, inner) => collect_aggs(inner, out),
        Expr::Binary(l, _, r) => {
            collect_aggs(l, out);
            collect_aggs(r, out);
        }
        Expr::IsNull { expr, .. } => collect_aggs(expr, out),
        Expr::Like { expr, pattern, .. } => {
            collect_aggs(expr, out);
            collect_aggs(pattern, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_aggs(expr, out);
            for i in list {
                collect_aggs(i, out);
            }
        }
        Expr::Between { expr, lo, hi, .. } => {
            collect_aggs(expr, out);
            collect_aggs(lo, out);
            collect_aggs(hi, out);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggs(a, out);
            }
        }
        _ => {}
    }
}

#[derive(Default)]
struct AggState {
    count: i64,
    sum: f64,
    sum_is_int: bool,
    int_sum: i64,
    min: Option<Value>,
    max: Option<Value>,
    non_null: i64,
}

fn finish_agg(name: &str, star: bool, st: &AggState) -> Value {
    match name {
        // COUNT(*) counts rows; COUNT(col) counts non-NULL values.
        // The two tallies are kept separate in AggState — conflating
        // them over-reports COUNT(col) on NULL-containing columns.
        "COUNT" => Value::Int(if star { st.count } else { st.non_null }),
        "SUM" => {
            if st.non_null == 0 {
                Value::Null
            } else if st.sum_is_int {
                Value::Int(st.int_sum)
            } else {
                Value::Double(st.sum)
            }
        }
        "AVG" => {
            if st.non_null == 0 {
                Value::Null
            } else {
                let total = if st.sum_is_int {
                    st.int_sum as f64
                } else {
                    st.sum
                };
                Value::Double(total / st.non_null as f64)
            }
        }
        "MIN" => st.min.clone().unwrap_or(Value::Null),
        "MAX" => st.max.clone().unwrap_or(Value::Null),
        _ => Value::Null,
    }
}

fn aggregate_pipeline(
    db: &Database,
    sel: &SelectStmt,
    schema: &RowSchema,
    rows: &[Vec<Value>],
    params: &[Value],
) -> Result<Projection> {
    // Discover aggregate call sites.
    let mut agg_exprs: Vec<Expr> = Vec::new();
    for item in &sel.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggs(expr, &mut agg_exprs);
        }
    }
    if let Some(h) = &sel.having {
        collect_aggs(h, &mut agg_exprs);
    }
    for ob in &sel.order_by {
        collect_aggs(&ob.expr, &mut agg_exprs);
    }

    // Group rows.
    struct Group {
        rep: Vec<Value>,
        states: Vec<AggState>,
    }
    let mut groups: Vec<Group> = Vec::new();
    let mut group_index: HashMap<Vec<u8>, usize> = HashMap::new();
    for row in rows {
        let ctx = EvalContext {
            schema,
            row,
            params,
            functions: db.functions(),
        };
        let key_vals: Vec<Value> = sel
            .group_by
            .iter()
            .map(|e| ctx.eval(e))
            .collect::<Result<_>>()?;
        let mut key = Vec::new();
        encode_row(&key_vals, &mut key);
        let gi = *group_index.entry(key).or_insert_with(|| {
            groups.push(Group {
                rep: row.clone(),
                states: (0..agg_exprs.len()).map(|_| AggState::default()).collect(),
            });
            groups.len() - 1
        });
        // Update aggregate states.
        for (ai, agg) in agg_exprs.iter().enumerate() {
            let Expr::Function { name, args, star } = agg else {
                unreachable!("collect_aggs only collects functions");
            };
            let st = &mut groups[gi].states[ai];
            if *star {
                st.count += 1;
                continue;
            }
            let v = ctx.eval(&args[0])?;
            if v.is_null() {
                continue;
            }
            st.non_null += 1;
            match name.as_str() {
                "COUNT" => {}
                "SUM" | "AVG" => match &v {
                    Value::Int(i) => {
                        if st.non_null == 1 {
                            st.sum_is_int = true;
                        }
                        if st.sum_is_int {
                            match st.int_sum.checked_add(*i) {
                                Some(s) => st.int_sum = s,
                                // i64 overflow: the aggregate promotes to
                                // DOUBLE (see DESIGN.md, "aggregate
                                // overflow policy"); the f64 running sum
                                // below keeps accumulating.
                                None => st.sum_is_int = false,
                            }
                        }
                        st.sum += *i as f64;
                    }
                    other => {
                        let n = other.numeric().ok_or_else(|| {
                            DbError::Type(format!("{name} over non-numeric {}", other.type_name()))
                        })?;
                        st.sum_is_int = false;
                        st.sum += n;
                    }
                },
                "MIN" => {
                    let better = match &st.min {
                        None => true,
                        Some(m) => v.total_cmp(m) == std::cmp::Ordering::Less,
                    };
                    if better {
                        st.min = Some(v.clone());
                    }
                }
                "MAX" => {
                    let better = match &st.max {
                        None => true,
                        Some(m) => v.total_cmp(m) == std::cmp::Ordering::Greater,
                    };
                    if better {
                        st.max = Some(v.clone());
                    }
                }
                other => return Err(DbError::Eval(format!("unknown aggregate {other}"))),
            }
        }
    }
    // A global aggregate over zero rows still yields one group.
    if groups.is_empty() && sel.group_by.is_empty() {
        groups.push(Group {
            rep: vec![Value::Null; schema.columns.len()],
            states: (0..agg_exprs.len()).map(|_| AggState::default()).collect(),
        });
    }

    // Materialise per-group aggregate values.
    let mut columns = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Expr { expr, alias } => {
                columns.push(alias.clone().unwrap_or_else(|| derive_name(expr)));
            }
            _ => {
                return Err(DbError::Eval(
                    "wildcard not allowed with GROUP BY / aggregates".into(),
                ))
            }
        }
    }
    let mut out_rows = Vec::new();
    let mut sort_ctx = Vec::new();
    for g in &groups {
        let mut aggs = HashMap::new();
        for (ai, agg) in agg_exprs.iter().enumerate() {
            let Expr::Function { name, star, .. } = agg else {
                unreachable!()
            };
            aggs.insert(agg_key(agg), finish_agg(name, *star, &g.states[ai]));
        }
        // HAVING filter.
        if let Some(h) = &sel.having {
            let v = eval_with_aggs(db, h, schema, &g.rep, &aggs, params)?;
            if truth(&v) != Some(true) {
                continue;
            }
        }
        let mut out = Vec::with_capacity(sel.items.len());
        for item in &sel.items {
            if let SelectItem::Expr { expr, .. } = item {
                out.push(eval_with_aggs(db, expr, schema, &g.rep, &aggs, params)?);
            }
        }
        out_rows.push(out);
        sort_ctx.push(SortCtx {
            row: g.rep.clone(),
            aggs,
        });
    }
    Ok((columns, out_rows, sort_ctx))
}

/// Evaluate an expression, substituting pre-computed aggregate values.
pub fn eval_with_aggs(
    db: &Database,
    e: &Expr,
    schema: &RowSchema,
    row: &[Value],
    aggs: &HashMap<String, Value>,
    params: &[Value],
) -> Result<Value> {
    if let Some(v) = aggs.get(&agg_key(e)) {
        return Ok(v.clone());
    }
    match e {
        // Rebuild composite expressions so nested aggregates resolve.
        Expr::Unary(op, inner) => {
            let v = eval_with_aggs(db, inner, schema, row, aggs, params)?;
            let ctx = EvalContext {
                schema,
                row,
                params,
                functions: db.functions(),
            };
            ctx.eval(&Expr::Unary(*op, Box::new(Expr::Literal(v))))
        }
        Expr::Binary(l, op, r) => {
            let lv = eval_with_aggs(db, l, schema, row, aggs, params)?;
            let rv = eval_with_aggs(db, r, schema, row, aggs, params)?;
            let ctx = EvalContext {
                schema,
                row,
                params,
                functions: db.functions(),
            };
            ctx.eval(&Expr::Binary(
                Box::new(Expr::Literal(lv)),
                *op,
                Box::new(Expr::Literal(rv)),
            ))
        }
        other => {
            let ctx = EvalContext {
                schema,
                row,
                params,
                functions: db.functions(),
            };
            ctx.eval(other)
        }
    }
}
