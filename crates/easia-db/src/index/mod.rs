//! Indexes.

pub mod btree;

pub use btree::BPlusTree;
