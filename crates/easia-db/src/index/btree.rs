//! An in-memory B+tree mapping composite [`Value`] keys to [`RowId`]s.
//!
//! Keys are ordered by [`Value::total_cmp`] lexicographically across the
//! key columns. Duplicate keys are allowed (secondary indexes); each leaf
//! entry carries the set of row ids for its key. Unique enforcement is the
//! caller's job (the executor checks before inserting for PK/UNIQUE
//! indexes).
//!
//! The tree uses a conventional split-on-overflow insertion and
//! borrow/merge-free deletion (leaves may underflow; with the archive's
//! append-mostly workload this is a deliberate simplification — deletes
//! only shrink entry lists, and empty entries are removed from leaves).

use crate::storage::RowId;
use crate::value::Value;
use std::cmp::Ordering;

/// Maximum entries per node before a split.
const ORDER: usize = 32;

type Key = Vec<Value>;

fn key_cmp(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.total_cmp(y) {
            Ordering::Equal => continue,
            o => return o,
        }
    }
    a.len().cmp(&b.len())
}

#[derive(Debug, Clone)]
struct Leaf {
    /// Sorted by key; each entry owns the row ids for that exact key.
    entries: Vec<(Key, Vec<RowId>)>,
}

#[derive(Debug, Clone)]
struct Internal {
    /// `keys[i]` separates `children[i]` (< key) from `children[i+1]` (>= key).
    keys: Vec<Key>,
    children: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(Leaf),
    Internal(Internal),
}

/// A B+tree index.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    root: Node,
    len: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

enum InsertResult {
    Done,
    /// Child split: promote `(separator, new_right_sibling)`.
    Split(Key, Node),
}

impl BPlusTree {
    /// New empty tree.
    pub fn new() -> Self {
        BPlusTree {
            root: Node::Leaf(Leaf {
                entries: Vec::new(),
            }),
            len: 0,
        }
    }

    /// Total number of `(key, row)` pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a `(key, row)` pair. Duplicate keys accumulate rows;
    /// inserting the same `(key, row)` twice is a no-op.
    pub fn insert(&mut self, key: Key, row: RowId) {
        let result = Self::insert_rec(&mut self.root, key, row, &mut self.len);
        if let InsertResult::Split(sep, right) = result {
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Leaf(Leaf {
                    entries: Vec::new(),
                }),
            );
            self.root = Node::Internal(Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            });
        }
    }

    fn insert_rec(node: &mut Node, key: Key, row: RowId, len: &mut usize) -> InsertResult {
        match node {
            Node::Leaf(leaf) => {
                match leaf.entries.binary_search_by(|(k, _)| key_cmp(k, &key)) {
                    Ok(i) => {
                        // Row lists stay sorted so duplicate checks are
                        // O(log k) even for heavily duplicated keys.
                        if let Err(pos) = leaf.entries[i].1.binary_search(&row) {
                            leaf.entries[i].1.insert(pos, row);
                            *len += 1;
                        }
                        InsertResult::Done
                    }
                    Err(i) => {
                        leaf.entries.insert(i, (key, vec![row]));
                        *len += 1;
                        if leaf.entries.len() > ORDER {
                            let mid = leaf.entries.len() / 2;
                            let right_entries = leaf.entries.split_off(mid);
                            let sep = right_entries[0].0.clone();
                            InsertResult::Split(
                                sep,
                                Node::Leaf(Leaf {
                                    entries: right_entries,
                                }),
                            )
                        } else {
                            InsertResult::Done
                        }
                    }
                }
            }
            Node::Internal(int) => {
                let idx = match int.keys.binary_search_by(|k| key_cmp(k, &key)) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                match Self::insert_rec(&mut int.children[idx], key, row, len) {
                    InsertResult::Done => InsertResult::Done,
                    InsertResult::Split(sep, right) => {
                        int.keys.insert(idx, sep);
                        int.children.insert(idx + 1, right);
                        if int.keys.len() > ORDER {
                            let mid = int.keys.len() / 2;
                            let promoted = int.keys[mid].clone();
                            let right_keys = int.keys.split_off(mid + 1);
                            int.keys.pop(); // the promoted separator
                            let right_children = int.children.split_off(mid + 1);
                            InsertResult::Split(
                                promoted,
                                Node::Internal(Internal {
                                    keys: right_keys,
                                    children: right_children,
                                }),
                            )
                        } else {
                            InsertResult::Done
                        }
                    }
                }
            }
        }
    }

    /// Remove a `(key, row)` pair; returns true if it was present.
    pub fn remove(&mut self, key: &[Value], row: RowId) -> bool {
        let removed = Self::remove_rec(&mut self.root, key, row);
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_rec(node: &mut Node, key: &[Value], row: RowId) -> bool {
        match node {
            Node::Leaf(leaf) => {
                if let Ok(i) = leaf.entries.binary_search_by(|(k, _)| key_cmp(k, key)) {
                    let rows = &mut leaf.entries[i].1;
                    if let Ok(p) = rows.binary_search(&row) {
                        rows.remove(p);
                        if rows.is_empty() {
                            leaf.entries.remove(i);
                        }
                        return true;
                    }
                }
                false
            }
            Node::Internal(int) => {
                let idx = match int.keys.binary_search_by(|k| key_cmp(k, key)) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                Self::remove_rec(&mut int.children[idx], key, row)
            }
        }
    }

    /// All rows with exactly `key`.
    pub fn get(&self, key: &[Value]) -> Vec<RowId> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(leaf) => {
                    return match leaf.entries.binary_search_by(|(k, _)| key_cmp(k, key)) {
                        Ok(i) => leaf.entries[i].1.clone(),
                        Err(_) => Vec::new(),
                    };
                }
                Node::Internal(int) => {
                    let idx = match int.keys.binary_search_by(|k| key_cmp(k, key)) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &int.children[idx];
                }
            }
        }
    }

    /// True if any row has exactly `key`.
    pub fn contains_key(&self, key: &[Value]) -> bool {
        !self.get(key).is_empty()
    }

    /// All `(key, rows)` with `lo <= key <= hi` (inclusive bounds; pass
    /// `None` for unbounded ends), in key order.
    pub fn range(&self, lo: Option<&[Value]>, hi: Option<&[Value]>) -> Vec<(Key, Vec<RowId>)> {
        let mut out = Vec::new();
        Self::range_rec(&self.root, lo, hi, &mut out);
        out
    }

    fn range_rec(
        node: &Node,
        lo: Option<&[Value]>,
        hi: Option<&[Value]>,
        out: &mut Vec<(Key, Vec<RowId>)>,
    ) {
        match node {
            Node::Leaf(leaf) => {
                for (k, rows) in &leaf.entries {
                    if let Some(lo) = lo {
                        if key_cmp(k, lo) == Ordering::Less {
                            continue;
                        }
                    }
                    if let Some(hi) = hi {
                        if key_cmp(k, hi) == Ordering::Greater {
                            return;
                        }
                    }
                    out.push((k.clone(), rows.clone()));
                }
            }
            Node::Internal(int) => {
                // Children that can intersect [lo, hi].
                let start = match lo {
                    Some(lo) => match int.keys.binary_search_by(|k| key_cmp(k, lo)) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    },
                    None => 0,
                };
                for (i, child) in int.children.iter().enumerate().skip(start) {
                    if let Some(hi) = hi {
                        if i > 0 && key_cmp(&int.keys[i - 1], hi) == Ordering::Greater {
                            return;
                        }
                    }
                    Self::range_rec(child, lo, hi, out);
                }
            }
        }
    }

    /// All entries in key order (full index scan).
    pub fn iter_all(&self) -> Vec<(Key, Vec<RowId>)> {
        self.range(None, None)
    }

    /// Tree height (1 = a single leaf), for tests and stats.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal(int) = node {
            h += 1;
            node = &int.children[0];
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: i64) -> Key {
        vec![Value::Int(i)]
    }

    fn rid(i: u64) -> RowId {
        RowId(i)
    }

    #[test]
    fn insert_and_get() {
        let mut t = BPlusTree::new();
        t.insert(k(5), rid(50));
        t.insert(k(3), rid(30));
        t.insert(k(8), rid(80));
        assert_eq!(t.get(&k(3)), vec![rid(30)]);
        assert_eq!(t.get(&k(5)), vec![rid(50)]);
        assert_eq!(t.get(&k(9)), Vec::<RowId>::new());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicates_accumulate() {
        let mut t = BPlusTree::new();
        t.insert(k(1), rid(10));
        t.insert(k(1), rid(11));
        t.insert(k(1), rid(10)); // duplicate pair: no-op
        let mut rows = t.get(&k(1));
        rows.sort();
        assert_eq!(rows, vec![rid(10), rid(11)]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn many_inserts_split_correctly() {
        let mut t = BPlusTree::new();
        let n = 5000i64;
        // Insert in a scrambled order.
        for i in 0..n {
            let key = (i * 2654435761u32 as i64) % n;
            t.insert(k(key), rid(key as u64));
        }
        assert!(t.height() >= 3, "tree should have split: h={}", t.height());
        for i in 0..n {
            assert_eq!(t.get(&k(i)), vec![rid(i as u64)], "key {i}");
        }
        // Full scan is sorted.
        let all = t.iter_all();
        assert_eq!(all.len(), n as usize);
        for w in all.windows(2) {
            assert_eq!(key_cmp(&w[0].0, &w[1].0), Ordering::Less);
        }
    }

    #[test]
    fn remove_entries() {
        let mut t = BPlusTree::new();
        for i in 0..100 {
            t.insert(k(i), rid(i as u64));
        }
        assert!(t.remove(&k(50), rid(50)));
        assert!(!t.remove(&k(50), rid(50)));
        assert!(!t.remove(&k(200), rid(1)));
        assert_eq!(t.get(&k(50)), Vec::<RowId>::new());
        assert_eq!(t.len(), 99);
    }

    #[test]
    fn remove_one_of_duplicates() {
        let mut t = BPlusTree::new();
        t.insert(k(1), rid(10));
        t.insert(k(1), rid(11));
        assert!(t.remove(&k(1), rid(10)));
        assert_eq!(t.get(&k(1)), vec![rid(11)]);
    }

    #[test]
    fn range_queries() {
        let mut t = BPlusTree::new();
        for i in 0..200 {
            t.insert(k(i), rid(i as u64));
        }
        let r = t.range(Some(&k(10)), Some(&k(19)));
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].0, k(10));
        assert_eq!(r[9].0, k(19));
        assert_eq!(t.range(None, Some(&k(4))).len(), 5);
        assert_eq!(t.range(Some(&k(195)), None).len(), 5);
        assert_eq!(t.range(Some(&k(500)), None).len(), 0);
    }

    #[test]
    fn composite_keys() {
        let mut t = BPlusTree::new();
        t.insert(vec![Value::Str("a".into()), Value::Int(2)], rid(1));
        t.insert(vec![Value::Str("a".into()), Value::Int(1)], rid(2));
        t.insert(vec![Value::Str("b".into()), Value::Int(0)], rid(3));
        let all = t.iter_all();
        assert_eq!(
            all.iter().map(|(_, r)| r[0]).collect::<Vec<_>>(),
            vec![rid(2), rid(1), rid(3)]
        );
    }

    #[test]
    fn null_keys_sort_first() {
        let mut t = BPlusTree::new();
        t.insert(vec![Value::Int(1)], rid(1));
        t.insert(vec![Value::Null], rid(0));
        let all = t.iter_all();
        assert_eq!(all[0].1, vec![rid(0)]);
    }

    #[test]
    fn contains_key_works() {
        let mut t = BPlusTree::new();
        t.insert(k(7), rid(1));
        assert!(t.contains_key(&k(7)));
        assert!(!t.contains_key(&k(8)));
    }
}
