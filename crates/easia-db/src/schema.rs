//! Catalog: table schemas and constraints.
//!
//! DBbrowse/EASIA generate their entire browsing interface from this
//! metadata: "relationships are inferred by referential integrity
//! constraints in the DB catalogue metadata". The catalog therefore keeps
//! primary keys and foreign keys first-class and queryable.

use crate::error::{DbError, Result};
use crate::value::SqlType;

/// SQL/MED DATALINK column options, as parsed from DDL such as:
///
/// ```sql
/// download_result DATALINK LINKTYPE URL FILE LINK CONTROL
///     INTEGRITY ALL READ PERMISSION DB WRITE PERMISSION BLOCKED
///     RECOVERY YES ON UNLINK RESTORE
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalinkSpec {
    /// `FILE LINK CONTROL` (true) vs `NO FILE LINK CONTROL` (false):
    /// whether the file's existence is checked and the file placed under
    /// link control on INSERT/UPDATE.
    pub file_link_control: bool,
    /// `INTEGRITY ALL`: linked files cannot be renamed or deleted.
    pub integrity_all: bool,
    /// `READ PERMISSION DB` (true): reads require a DB-issued token.
    /// `READ PERMISSION FS` (false): the file system's own permissions.
    pub read_permission_db: bool,
    /// `WRITE PERMISSION BLOCKED`: the file cannot be modified while
    /// linked.
    pub write_permission_blocked: bool,
    /// `RECOVERY YES`: the DBMS takes responsibility for coordinated
    /// backup and point-in-time recovery of the external file.
    pub recovery: bool,
    /// `ON UNLINK RESTORE` (true) vs `ON UNLINK DELETE` (false): what
    /// happens to the file when it is unlinked.
    pub on_unlink_restore: bool,
}

impl Default for DatalinkSpec {
    /// Defaults match the paper's example: full link control under
    /// database authority.
    fn default() -> Self {
        DatalinkSpec {
            file_link_control: true,
            integrity_all: true,
            read_permission_db: true,
            write_permission_blocked: true,
            recovery: true,
            on_unlink_restore: true,
        }
    }
}

impl DatalinkSpec {
    /// `NO FILE LINK CONTROL`: the column stores plain URLs with no
    /// coordination with the file server (the ablation baseline in E6).
    pub fn uncontrolled() -> Self {
        DatalinkSpec {
            file_link_control: false,
            integrity_all: false,
            read_permission_db: false,
            write_permission_blocked: false,
            recovery: false,
            on_unlink_restore: false,
        }
    }
}

/// One column of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name (stored uppercase; SQL identifiers are case-folded).
    pub name: String,
    /// Declared type.
    pub ty: SqlType,
    /// NOT NULL constraint.
    pub not_null: bool,
    /// Column-level UNIQUE constraint.
    pub unique: bool,
    /// Column-level REFERENCES constraint: `(table, column)`.
    pub references: Option<(String, String)>,
    /// DATALINK options (only for [`SqlType::Datalink`] columns).
    pub datalink: Option<DatalinkSpec>,
}

impl ColumnDef {
    /// Plain column with no constraints.
    pub fn new(name: impl Into<String>, ty: SqlType) -> Self {
        ColumnDef {
            name: name.into().to_ascii_uppercase(),
            ty,
            not_null: false,
            unique: false,
            references: None,
            datalink: None,
        }
    }
}

/// A (possibly composite) foreign key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing columns in this table.
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced columns (must be that table's primary key or unique).
    pub ref_columns: Vec<String>,
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name (uppercase).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Primary key column names (possibly composite, possibly empty).
    pub primary_key: Vec<String>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Create a schema; validates name/column sanity.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Result<Self> {
        let name = name.into().to_ascii_uppercase();
        if name.is_empty() {
            return Err(DbError::Catalog("empty table name".into()));
        }
        if columns.is_empty() {
            return Err(DbError::Catalog(format!("table {name} has no columns")));
        }
        let mut seen = std::collections::BTreeSet::new();
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(DbError::Catalog(format!(
                    "duplicate column {} in table {name}",
                    c.name
                )));
            }
        }
        Ok(TableSchema {
            name,
            columns,
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
        })
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let upper = name.to_ascii_uppercase();
        self.columns.iter().position(|c| c.name == upper)
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Set the primary key; the named columns become NOT NULL.
    pub fn set_primary_key(&mut self, cols: Vec<String>) -> Result<()> {
        let cols: Vec<String> = cols.into_iter().map(|c| c.to_ascii_uppercase()).collect();
        for c in &cols {
            let idx = self
                .column_index(c)
                .ok_or_else(|| DbError::Catalog(format!("primary key column {c} not found")))?;
            self.columns[idx].not_null = true;
        }
        if !self.primary_key.is_empty() {
            return Err(DbError::Catalog(format!(
                "table {} already has a primary key",
                self.name
            )));
        }
        self.primary_key = cols;
        Ok(())
    }

    /// Add a (validated-at-catalog-level) foreign key.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<()> {
        for c in &fk.columns {
            if self.column_index(c).is_none() {
                return Err(DbError::Catalog(format!(
                    "foreign key column {c} not found in {}",
                    self.name
                )));
            }
        }
        if fk.columns.len() != fk.ref_columns.len() || fk.columns.is_empty() {
            return Err(DbError::Catalog("malformed foreign key".into()));
        }
        self.foreign_keys.push(ForeignKey {
            columns: fk.columns.iter().map(|c| c.to_ascii_uppercase()).collect(),
            ref_table: fk.ref_table.to_ascii_uppercase(),
            ref_columns: fk
                .ref_columns
                .iter()
                .map(|c| c.to_ascii_uppercase())
                .collect(),
        });
        Ok(())
    }

    /// Indices of the primary-key columns.
    pub fn pk_indices(&self) -> Vec<usize> {
        self.primary_key
            .iter()
            .map(|c| self.column_index(c).expect("pk columns validated"))
            .collect()
    }

    /// All DATALINK columns `(index, spec)`.
    pub fn datalink_columns(&self) -> Vec<(usize, &DatalinkSpec)> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.datalink.as_ref().map(|s| (i, s)))
            .collect()
    }
}

/// Foreign keys *into* a table, computed across a set of schemas: the
/// "primary key browsing" direction ("SIMULATION_KEY links to three tables
/// where it appears as a foreign key").
pub fn referencing_keys<'a>(
    schemas: impl Iterator<Item = &'a TableSchema>,
    target: &str,
) -> Vec<(String, ForeignKey)> {
    let target = target.to_ascii_uppercase();
    let mut out = Vec::new();
    for s in schemas {
        for fk in &s.foreign_keys {
            if fk.ref_table == target {
                out.push((s.name.clone(), fk.clone()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulation_schema() -> TableSchema {
        let mut s = TableSchema::new(
            "simulation",
            vec![
                ColumnDef::new("simulation_key", SqlType::Varchar(30)),
                ColumnDef::new("title", SqlType::Varchar(200)),
                ColumnDef::new("author_key", SqlType::Varchar(30)),
                ColumnDef::new("description", SqlType::Clob),
            ],
        )
        .unwrap();
        s.set_primary_key(vec!["simulation_key".into()]).unwrap();
        s.add_foreign_key(ForeignKey {
            columns: vec!["author_key".into()],
            ref_table: "author".into(),
            ref_columns: vec!["author_key".into()],
        })
        .unwrap();
        s
    }

    #[test]
    fn names_are_case_folded() {
        let s = simulation_schema();
        assert_eq!(s.name, "SIMULATION");
        assert_eq!(s.column_index("Title"), Some(1));
        assert_eq!(s.column_index("TITLE"), Some(1));
        assert!(s.column("missing").is_none());
    }

    #[test]
    fn pk_sets_not_null() {
        let s = simulation_schema();
        assert!(s.column("simulation_key").unwrap().not_null);
        assert_eq!(s.pk_indices(), vec![0]);
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", SqlType::Integer),
                ColumnDef::new("A", SqlType::Integer),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, DbError::Catalog(_)));
    }

    #[test]
    fn fk_validation() {
        let mut s = simulation_schema();
        let bad = ForeignKey {
            columns: vec!["nope".into()],
            ref_table: "author".into(),
            ref_columns: vec!["author_key".into()],
        };
        assert!(s.add_foreign_key(bad).is_err());
    }

    #[test]
    fn double_pk_rejected() {
        let mut s = simulation_schema();
        assert!(s.set_primary_key(vec!["title".into()]).is_err());
    }

    #[test]
    fn referencing_keys_found() {
        let sim = simulation_schema();
        let mut author = TableSchema::new(
            "author",
            vec![ColumnDef::new("author_key", SqlType::Varchar(30))],
        )
        .unwrap();
        author.set_primary_key(vec!["author_key".into()]).unwrap();
        let refs = referencing_keys([&sim, &author].into_iter(), "AUTHOR");
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].0, "SIMULATION");
        assert_eq!(refs[0].1.columns, vec!["AUTHOR_KEY"]);
    }

    #[test]
    fn datalink_columns_listed() {
        let mut cols = vec![ColumnDef::new("file_name", SqlType::Varchar(100))];
        let mut dl = ColumnDef::new("download_result", SqlType::Datalink);
        dl.datalink = Some(DatalinkSpec::default());
        cols.push(dl);
        let s = TableSchema::new("result_file", cols).unwrap();
        let dls = s.datalink_columns();
        assert_eq!(dls.len(), 1);
        assert_eq!(dls[0].0, 1);
        assert!(dls[0].1.read_permission_db);
    }

    #[test]
    fn uncontrolled_spec() {
        let spec = DatalinkSpec::uncontrolled();
        assert!(!spec.file_link_control && !spec.integrity_all);
    }
}
