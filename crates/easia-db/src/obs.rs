//! Query-execution metrics.
//!
//! The archive hub mediates *every* statement (the SQL/MED design puts
//! the database in front of all external actions), so this is where
//! per-statement and per-stage telemetry lives. Handles are resolved
//! once at [`crate::Database::attach_metrics`] time; the execution hot
//! path only touches `Cell`s.
//!
//! Sim-time does not advance inside the hub database — queries are
//! instantaneous in simulated seconds — so "per-stage execution time"
//! is reported as a deterministic cost proxy: the number of rows each
//! pipeline stage processed (`easia_db_stage_rows`). See DESIGN.md
//! ("Observability").

use easia_obs::{exponential_buckets, Counter, Gauge, Histogram, Registry};

/// Resolved metric handles for one [`crate::Database`].
pub struct DbMetrics {
    stmt_select: Counter,
    stmt_insert: Counter,
    stmt_update: Counter,
    stmt_delete: Counter,
    stmt_ddl: Counter,
    stmt_begin: Counter,
    stmt_commit: Counter,
    stmt_rollback: Counter,
    /// Base-table rows fetched by scans (heap or index probe results).
    pub rows_scanned: Counter,
    /// Rows in final SELECT result sets.
    pub rows_returned: Counter,
    /// Access paths resolved to an index probe.
    pub index_scans: Counter,
    /// Access paths resolved to a full heap scan.
    pub heap_scans: Counter,
    /// Rows processed per pipeline stage (cost proxy for exec time).
    pub stage_scan: Histogram,
    pub stage_join: Histogram,
    pub stage_filter: Histogram,
    pub stage_aggregate: Histogram,
    pub stage_sort: Histogram,
    /// MVCC: snapshots currently pinning the vacuum horizon.
    pub open_snapshots: Gauge,
    /// MVCC: row versions created by inserts and updates.
    pub versions_created: Counter,
    /// MVCC: dead row versions reclaimed by vacuum.
    pub versions_vacuumed: Counter,
    /// MVCC: statements aborted by first-committer-wins conflicts.
    pub write_conflicts: Counter,
    /// Transactions batched per group-commit WAL flush.
    pub group_batch: Histogram,
    /// `sync_data` calls issued by the WAL (1 per flush, not per commit).
    pub wal_fsyncs: Counter,
    /// WAL checksum damage detected (at recovery or by scrub).
    pub wal_corruption_detected: Counter,
    /// Record frames whose checksums the scrub pass verified.
    pub scrub_frames_verified: Counter,
    /// Checksum failures found by the scrub pass.
    pub scrub_errors: Counter,
}

impl DbMetrics {
    /// Register every family in `registry` and resolve handles.
    pub fn register(registry: &Registry) -> Self {
        let stmt = |kind: &str| {
            registry.counter_with(
                "easia_db_statements_total",
                "SQL statements executed by the hub database, by kind",
                &[("kind", kind)],
            )
        };
        let edges = exponential_buckets(1.0, 4.0, 9); // 1 .. 65536 rows
        let stage = |name: &str| {
            registry.histogram_with(
                "easia_db_stage_rows",
                "Rows processed per query pipeline stage (deterministic cost proxy)",
                &[("stage", name)],
                &edges,
            )
        };
        DbMetrics {
            stmt_select: stmt("select"),
            stmt_insert: stmt("insert"),
            stmt_update: stmt("update"),
            stmt_delete: stmt("delete"),
            stmt_ddl: stmt("ddl"),
            stmt_begin: stmt("begin"),
            stmt_commit: stmt("commit"),
            stmt_rollback: stmt("rollback"),
            rows_scanned: registry.counter(
                "easia_db_rows_scanned_total",
                "Base-table rows fetched by table or index scans",
            ),
            rows_returned: registry.counter(
                "easia_db_rows_returned_total",
                "Rows returned to clients from SELECT statements",
            ),
            index_scans: registry.counter(
                "easia_db_index_scans_total",
                "Table accesses satisfied by an index probe",
            ),
            heap_scans: registry.counter(
                "easia_db_heap_scans_total",
                "Table accesses that fell back to a full heap scan",
            ),
            stage_scan: stage("scan"),
            stage_join: stage("join"),
            stage_filter: stage("filter"),
            stage_aggregate: stage("aggregate"),
            stage_sort: stage("sort"),
            open_snapshots: registry.gauge(
                "easia_db_mvcc_open_snapshots",
                "Snapshot-isolation read views currently open",
            ),
            versions_created: registry.counter(
                "easia_db_mvcc_versions_created_total",
                "Row versions created by inserts and updates",
            ),
            versions_vacuumed: registry.counter(
                "easia_db_mvcc_versions_vacuumed_total",
                "Dead row versions reclaimed by vacuum",
            ),
            write_conflicts: registry.counter(
                "easia_db_mvcc_write_conflicts_total",
                "Writes aborted by first-committer-wins conflict detection",
            ),
            group_batch: registry.histogram(
                "easia_db_mvcc_group_commit_batch_size",
                "Transactions batched per group-commit WAL flush",
                &exponential_buckets(1.0, 2.0, 8), // 1 .. 128 committers
            ),
            wal_fsyncs: registry.counter(
                "easia_db_wal_fsyncs_total",
                "sync_data calls issued by the WAL (one per flush, not per commit)",
            ),
            wal_corruption_detected: registry.counter(
                "easia_db_wal_corruption_detected_total",
                "WAL checksum damage detected at recovery or by the scrub pass",
            ),
            scrub_frames_verified: registry.counter(
                "easia_db_scrub_frames_verified_total",
                "WAL record frames whose checksums the scrub pass verified",
            ),
            scrub_errors: registry.counter(
                "easia_db_scrub_errors_total",
                "Checksum failures found by the scrub pass",
            ),
        }
    }

    /// Bump the statement counter for `kind` (one of the label values
    /// registered above).
    pub(crate) fn statement(&self, kind: StmtKind) {
        match kind {
            StmtKind::Select => self.stmt_select.inc(),
            StmtKind::Insert => self.stmt_insert.inc(),
            StmtKind::Update => self.stmt_update.inc(),
            StmtKind::Delete => self.stmt_delete.inc(),
            StmtKind::Ddl => self.stmt_ddl.inc(),
            StmtKind::Begin => self.stmt_begin.inc(),
            StmtKind::Commit => self.stmt_commit.inc(),
            StmtKind::Rollback => self.stmt_rollback.inc(),
        }
    }
}

/// Statement classes for `easia_db_statements_total{kind=...}`.
#[derive(Clone, Copy)]
pub(crate) enum StmtKind {
    Select,
    Insert,
    Update,
    Delete,
    Ddl,
    Begin,
    Commit,
    Rollback,
}
