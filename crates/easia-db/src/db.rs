//! The [`Database`] facade: catalog + heaps + indexes + transactions,
//! DDL/DML execution, constraint enforcement, and the SQL/MED observer
//! hook that `easia-datalink` attaches link-control semantics through.

use crate::crc::crc32;
use crate::error::{DbError, Result};
use crate::exec;
use crate::expr::FnRegistry;
use crate::index::BPlusTree;
use crate::mvcc::{Csn, MvccState, ReadView, SnapshotId, TxnId, VacuumStats, LATEST_CSN};
use crate::schema::{ColumnDef, DatalinkSpec, ForeignKey, TableSchema};
use crate::scrub::ScrubReport;
use crate::sql::ast::{ColumnDefAst, Stmt, TableConstraint};
use crate::sql::parse;
use crate::storage::{HeapTable, RowId};
use crate::txn::{Wal, WalCorruption, WalRecord};
use crate::value::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// Result of executing a statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column names (empty for DML/DDL).
    pub columns: Vec<String>,
    /// Output rows (empty for DML/DDL).
    pub rows: Vec<Vec<Value>>,
    /// Rows affected by DML.
    pub affected: usize,
}

impl ResultSet {
    /// Single value convenience accessor (first row, first column).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// Hook through which external-data managers participate in DML and
/// SELECT — the engine half of SQL/MED link control.
///
/// `on_link`/`on_unlink` fire *during* statement execution (the prepare
/// phase: the file manager verifies the file and marks it link-pending);
/// `on_commit`/`on_rollback` fire when the surrounding transaction
/// resolves. `render_datalink` lets the manager splice an access token
/// into DATALINK values as they are SELECTed.
pub trait LinkObserver {
    /// A DATALINK value is being inserted (or is the new value of an
    /// update). Returning an error vetoes the whole statement — e.g. the
    /// referenced file does not exist (`FILE LINK CONTROL`).
    fn on_link(&self, table: &str, column: &str, spec: &DatalinkSpec, url: &str) -> Result<()>;
    /// A DATALINK value is being deleted/overwritten.
    fn on_unlink(&self, table: &str, column: &str, spec: &DatalinkSpec, url: &str) -> Result<()>;
    /// The transaction containing earlier link/unlink calls committed.
    fn on_commit(&self);
    /// The transaction containing earlier link/unlink calls rolled back.
    fn on_rollback(&self);
    /// Rewrite a DATALINK value for SELECT output (token insertion).
    /// Return `None` to leave the stored form unchanged.
    fn render_datalink(&self, spec: &DatalinkSpec, url: &str) -> Option<String>;
}

/// A secondary (or primary) index.
#[derive(Debug)]
pub struct Index {
    /// Index name.
    pub name: String,
    /// Key column positions in the table's row layout.
    pub col_indices: Vec<usize>,
    /// Whether keys must be unique (NULL-free keys only).
    pub unique: bool,
    /// The tree.
    pub tree: BPlusTree,
}

impl Index {
    fn key_of(&self, row: &[Value]) -> Vec<Value> {
        self.col_indices.iter().map(|&i| row[i].clone()).collect()
    }
}

/// A table: schema + heap + indexes.
#[derive(Debug)]
pub struct Table {
    /// Schema.
    pub schema: TableSchema,
    /// Row storage.
    pub heap: HeapTable,
    /// Indexes (PK index first if present).
    pub indexes: Vec<Index>,
}

impl Table {
    /// Find an index whose first key column is `col` (used by the
    /// planner for equality lookups).
    pub fn index_on(&self, col: usize) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|ix| ix.col_indices.first() == Some(&col))
    }

    /// Find an index exactly matching `cols`.
    pub fn index_matching(&self, cols: &[usize]) -> Option<&Index> {
        self.indexes.iter().find(|ix| ix.col_indices == cols)
    }
}

/// The embedded database.
pub struct Database {
    tables: BTreeMap<String, Table>,
    functions: FnRegistry,
    observers: Vec<Rc<dyn LinkObserver>>,
    /// MVCC registry: txn/snapshot bookkeeping + row-version metadata.
    mvcc: MvccState,
    /// Per-transaction write sets (redo + created/deleted row ids).
    txns: BTreeMap<TxnId, TxnWrites>,
    /// The implicit/explicit SQL session transaction (legacy single-txn
    /// statement API: `BEGIN`/`COMMIT`/autocommit).
    session: Option<TxnId>,
    /// Whether the session transaction was opened by an explicit `BEGIN`.
    session_explicit: bool,
    /// Transaction targeted by the currently-executing statement when the
    /// caller came in through [`Database::txn_execute`].
    cur: Option<TxnId>,
    /// The one in-flight transaction allowed to hold pending DATALINK
    /// link/unlink operations (LinkObserver hooks carry no txn id, so
    /// link control stays single-writer; see DESIGN.md).
    link_owner: Option<TxnId>,
    /// Open group-commit window, if any: staged WAL bytes + commit count.
    group: Option<GroupWindow>,
    wal: Wal,
    dir: Option<PathBuf>,
    /// Suppress WAL writes and observer calls during recovery replay.
    replaying: bool,
    /// Execution telemetry (None until a registry is attached).
    metrics: Option<crate::obs::DbMetrics>,
    /// WAL corruption events detected before metrics were attached
    /// (recovery runs first); folded into the counter at attach time.
    corruption_detected: u64,
    /// Monotonic count of successful mutating statements (DML and DDL).
    /// Not persisted: reopening resets it to zero, which conservatively
    /// invalidates any remote replica keyed on it.
    writes: u64,
}

/// What recovery found and did while opening a durable database
/// (returned by [`Database::open_recovering`]).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// WAL format replayed: 0 = empty log, 1 = legacy unchecksummed
    /// (upgraded to v2 by an immediate checkpoint), 2 = checksummed.
    pub wal_format: u8,
    /// Checksum-verified batch frames replayed (v2 only).
    pub batches_replayed: usize,
    /// WAL records applied (including `Commit` markers).
    pub records_replayed: usize,
    /// Highest commit CSN recovered.
    pub recovered_csn: Csn,
    /// Bytes dropped as a clean torn tail (crash mid-flush).
    pub torn_bytes: u64,
    /// Mid-file damage, if any: replay stopped strictly before it.
    pub corruption: Option<WalCorruption>,
    /// Where the damaged log was quarantined (set iff `corruption`).
    pub quarantined: Option<PathBuf>,
}

/// Write set of one in-flight transaction.
#[derive(Default)]
struct TxnWrites {
    /// CSN ceiling of the transaction's read view (`LATEST_CSN` for the
    /// session transaction, which reads latest-committed like the legacy
    /// single-transaction engine did).
    view_csn: Csn,
    /// Logical redo, appended to the WAL in one unit at commit.
    redo: Vec<WalRecord>,
    /// Row versions this transaction created (for rollback removal).
    created: Vec<(String, RowId)>,
    /// Row versions this transaction delete-stamped (for rollback unstamp).
    deleted: Vec<(String, RowId)>,
}

/// An open group-commit window: commit records from multiple transactions
/// staged into one buffer, flushed with a single `sync_data`.
struct GroupWindow {
    buf: Vec<u8>,
    commits: u64,
}

const SNAPSHOT_FILE: &str = "snapshot.db";
const WAL_FILE: &str = "wal.log";
const QUARANTINE_FILE: &str = "wal.log.quarantined";

impl Database {
    /// A volatile in-memory database.
    pub fn new_in_memory() -> Self {
        Database {
            tables: BTreeMap::new(),
            functions: FnRegistry::with_builtins(),
            observers: Vec::new(),
            mvcc: MvccState::default(),
            txns: BTreeMap::new(),
            session: None,
            session_explicit: false,
            cur: None,
            link_owner: None,
            group: None,
            wal: Wal::memory(),
            dir: None,
            replaying: false,
            metrics: None,
            corruption_detected: 0,
            writes: 0,
        }
    }

    /// Monotonic count of successful mutating statements since this
    /// handle was opened. Federation replicas cache this alongside rows;
    /// a mismatch on a later batch header means the copy is stale.
    pub fn write_counter(&self) -> u64 {
        self.writes
    }

    /// Open (or create) a durable database in directory `dir`: loads the
    /// last snapshot, replays the committed tail of the WAL. A clean torn
    /// tail (crash mid-flush) is dropped batch-atomically; checksum
    /// damage is a typed [`DbError::WalCorrupt`] — use
    /// [`Database::open_recovering`] to salvage the clean prefix instead.
    pub fn open(dir: &Path) -> Result<Self> {
        let (db, _report) = Self::open_inner(dir, false)?;
        Ok(db)
    }

    /// Open a durable database, tolerating WAL corruption: the clean
    /// committed prefix before the damage is replayed, the damaged log is
    /// renamed aside (`wal.log.quarantined`, never deleted, never
    /// replayed past), and the salvaged state is immediately
    /// checkpointed so it is durable without the quarantined bytes.
    /// The report says exactly what was recovered; after a corruption,
    /// run `DataLinkManager::reconcile` to restore hub/file-server
    /// agreement over the rolled-back horizon.
    pub fn open_recovering(dir: &Path) -> Result<(Self, RecoveryReport)> {
        Self::open_inner(dir, true)
    }

    fn open_inner(dir: &Path, tolerate_corruption: bool) -> Result<(Self, RecoveryReport)> {
        std::fs::create_dir_all(dir)
            .map_err(|e| DbError::Storage(format!("create {dir:?}: {e}")))?;
        let mut db = Database::new_in_memory();
        db.dir = Some(dir.to_path_buf());
        let snap = dir.join(SNAPSHOT_FILE);
        if snap.exists() {
            let bytes = std::fs::read(&snap)
                .map_err(|e| DbError::Storage(format!("read snapshot: {e}")))?;
            db.load_snapshot(&bytes)?;
        }
        let wal_path = dir.join(WAL_FILE);
        let parse = Wal::read_with_info(&wal_path)?;
        if let Some(c) = &parse.corruption {
            if !tolerate_corruption {
                return Err(DbError::WalCorrupt {
                    offset: c.offset,
                    csn_horizon: c.csn_horizon,
                    detail: c.detail.clone(),
                });
            }
        }
        db.replaying = true;
        let records_replayed = parse.records.len();
        for rec in parse.records {
            db.apply_wal(rec)?;
        }
        db.replaying = false;
        let mut report = RecoveryReport {
            wal_format: parse.format,
            batches_replayed: parse.batches,
            records_replayed,
            recovered_csn: parse.last_csn,
            torn_bytes: parse.torn_bytes,
            corruption: parse.corruption,
            quarantined: None,
        };
        if report.corruption.is_some() {
            // Quarantine the damaged segment: move it aside untouched so
            // nothing ever replays past the damage, then re-persist the
            // salvaged prefix (snapshot + fresh log) so it stays durable
            // without the quarantined bytes.
            let q = dir.join(QUARANTINE_FILE);
            std::fs::rename(&wal_path, &q)
                .map_err(|e| DbError::Storage(format!("quarantine wal: {e}")))?;
            db.corruption_detected += 1;
            report.quarantined = Some(q);
            db.wal = Wal::open(&wal_path)?;
            db.checkpoint()?;
        } else {
            db.wal = Wal::open(&wal_path)?;
            if report.wal_format == 1 {
                // Legacy unchecksummed log: replayed fine, but its bytes
                // can't be scrubbed. Upgrade to v2 via a checkpoint.
                db.checkpoint()?;
            }
        }
        Ok((db, report))
    }

    /// Write a snapshot and truncate the WAL.
    ///
    /// Non-blocking: runs under open snapshots and in-flight
    /// transactions by checkpointing *at the current commit horizon* —
    /// the image holds exactly the rows a fresh reader would see now.
    /// Uncommitted work is excluded (it reaches the fresh log at its own
    /// commit), and old versions pinned only by open snapshots are
    /// excluded too (snapshots do not survive a restart). Only an open
    /// group-commit window blocks: its staged-but-unsynced commits are
    /// already visible in memory and would otherwise be persisted twice.
    pub fn checkpoint(&mut self) -> Result<()> {
        let Some(dir) = self.dir.clone() else {
            return Ok(()); // in-memory: nothing to do
        };
        if self.group.is_some() {
            return Err(DbError::Txn(
                "cannot checkpoint inside a commit window".into(),
            ));
        }
        if self.txns.is_empty() && self.mvcc.open_snapshots() == 0 {
            // Quiescent: reclaim dead versions first so the snapshot
            // (and the version map) shrink to the live rows.
            self.vacuum_internal();
        }
        let bytes = self.write_snapshot();
        let tmp = dir.join("snapshot.tmp");
        std::fs::write(&tmp, &bytes)
            .map_err(|e| DbError::Storage(format!("write snapshot: {e}")))?;
        std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))
            .map_err(|e| DbError::Storage(format!("publish snapshot: {e}")))?;
        self.wal.truncate()
    }

    /// Verify every checksum behind the commit horizon: the snapshot
    /// body CRC and each record frame of every complete WAL batch. Pure
    /// read-side pass — finds silent bit rot before recovery needs the
    /// bytes. Results also feed the `easia_db_scrub_*` metric families.
    pub fn scrub(&self) -> Result<ScrubReport> {
        let Some(dir) = &self.dir else {
            return Ok(ScrubReport::default()); // in-memory: nothing on disk
        };
        let report = crate::scrub::scrub_dir(dir)?;
        if let Some(m) = &self.metrics {
            m.scrub_frames_verified
                .add(report.wal_frames_verified as f64);
            m.scrub_errors.add(report.errors.len() as f64);
            let wal_damage = report.errors.iter().filter(|e| e.file == WAL_FILE).count();
            m.wal_corruption_detected.add(wal_damage as f64);
        }
        Ok(report)
    }

    /// Register a SQL/MED link observer.
    pub fn add_observer(&mut self, obs: Rc<dyn LinkObserver>) {
        self.observers.push(obs);
    }

    /// Attach an observability registry: registers the database's
    /// metric families and starts recording execution telemetry.
    /// Corruption detected before attachment (recovery runs first) is
    /// folded into `easia_db_wal_corruption_detected_total` here.
    pub fn attach_metrics(&mut self, registry: &easia_obs::Registry) {
        let m = crate::obs::DbMetrics::register(registry);
        if self.corruption_detected > 0 {
            m.wal_corruption_detected
                .add(self.corruption_detected as f64);
        }
        self.metrics = Some(m);
    }

    /// The attached metric handles, if any.
    pub fn metrics(&self) -> Option<&crate::obs::DbMetrics> {
        self.metrics.as_ref()
    }

    /// The scalar-function registry (register `DL*` functions etc. here).
    pub fn functions_mut(&mut self) -> &mut FnRegistry {
        &mut self.functions
    }

    /// Immutable access to the function registry.
    pub fn functions(&self) -> &FnRegistry {
        &self.functions
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_uppercase())
    }

    /// Schema of a table.
    pub fn schema(&self, name: &str) -> Option<&TableSchema> {
        self.table(name).map(|t| &t.schema)
    }

    /// All schemas (for XUIS generation and browsing metadata).
    pub fn schemas(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values().map(|t| &t.schema)
    }

    /// Execute a statement with no parameters.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet> {
        self.execute_with_params(sql, &[])
    }

    /// Execute a statement with positional `?` parameters.
    pub fn execute_with_params(&mut self, sql: &str, params: &[Value]) -> Result<ResultSet> {
        let stmt = parse(sql)?;
        self.execute_stmt(stmt, params, Some(sql))
    }

    fn execute_stmt(
        &mut self,
        stmt: Stmt,
        params: &[Value],
        sql_text: Option<&str>,
    ) -> Result<ResultSet> {
        if let Some(m) = &self.metrics {
            use crate::obs::StmtKind;
            m.statement(match &stmt {
                Stmt::Select(_) => StmtKind::Select,
                Stmt::Begin => StmtKind::Begin,
                Stmt::Commit => StmtKind::Commit,
                Stmt::Rollback => StmtKind::Rollback,
                Stmt::CreateTable { .. } | Stmt::DropTable { .. } | Stmt::CreateIndex { .. } => {
                    StmtKind::Ddl
                }
                Stmt::Insert { .. } => StmtKind::Insert,
                Stmt::Update { .. } => StmtKind::Update,
                Stmt::Delete { .. } => StmtKind::Delete,
            });
        }
        let mutates = matches!(
            stmt,
            Stmt::CreateTable { .. }
                | Stmt::DropTable { .. }
                | Stmt::CreateIndex { .. }
                | Stmt::Insert { .. }
                | Stmt::Update { .. }
                | Stmt::Delete { .. }
        );
        let is_dml = matches!(
            stmt,
            Stmt::Insert { .. } | Stmt::Update { .. } | Stmt::Delete { .. }
        );
        let result = match stmt {
            Stmt::Select(sel) => {
                let view = self.stmt_view();
                exec::run_select(self, &view, &sel, params)
            }
            Stmt::Begin => {
                if self.cur.is_some() {
                    return Err(DbError::Txn(
                        "use commit_txn/rollback_txn for API transactions".into(),
                    ));
                }
                if self.session.is_some() {
                    return Err(DbError::Txn("transaction already active".into()));
                }
                let t = self.mvcc.begin_txn(LATEST_CSN);
                self.txns.insert(t, TxnWrites::default());
                self.session = Some(t);
                self.session_explicit = true;
                Ok(ResultSet::default())
            }
            Stmt::Commit => {
                if self.cur.is_some() {
                    return Err(DbError::Txn(
                        "use commit_txn/rollback_txn for API transactions".into(),
                    ));
                }
                if !self.session_explicit {
                    return Err(DbError::Txn("COMMIT without BEGIN".into()));
                }
                let t = self.session.take().expect("explicit session has a txn");
                self.session_explicit = false;
                self.commit_txn_internal(t)?;
                Ok(ResultSet::default())
            }
            Stmt::Rollback => {
                if self.cur.is_some() {
                    return Err(DbError::Txn(
                        "use commit_txn/rollback_txn for API transactions".into(),
                    ));
                }
                if !self.session_explicit {
                    return Err(DbError::Txn("ROLLBACK without BEGIN".into()));
                }
                let t = self.session.take().expect("explicit session has a txn");
                self.session_explicit = false;
                self.rollback_txn_internal(t);
                Ok(ResultSet::default())
            }
            Stmt::CreateTable { .. } | Stmt::DropTable { .. } | Stmt::CreateIndex { .. } => {
                if self.session_explicit || self.cur.is_some() {
                    return Err(DbError::Txn(
                        "DDL inside a transaction is not supported".into(),
                    ));
                }
                // Flush any pending implicit-session work first so the WAL
                // stays ordered (DDL is its own commit unit).
                if let Some(t) = self.session.take() {
                    self.commit_txn_internal(t)?;
                }
                let text = sql_text
                    .ok_or_else(|| DbError::Txn("DDL requires statement text".into()))?
                    .to_string();
                self.apply_ddl(&stmt)?;
                if !self.replaying {
                    let csn = self.mvcc.allocate_csn();
                    self.wal.append_committed(&[WalRecord::Ddl(text)], csn)?;
                    self.note_wal_sync(1);
                }
                Ok(ResultSet::default())
            }
            Stmt::Insert {
                table,
                columns,
                rows,
            } => self
                .run_insert(&table, &columns, &rows, params)
                .map(|n| ResultSet {
                    affected: n,
                    ..Default::default()
                }),
            Stmt::Update {
                table,
                sets,
                where_clause,
            } => self
                .run_update(&table, &sets, where_clause.as_ref(), params)
                .map(|n| ResultSet {
                    affected: n,
                    ..Default::default()
                }),
            Stmt::Delete {
                table,
                where_clause,
            } => self
                .run_delete(&table, where_clause.as_ref(), params)
                .map(|n| ResultSet {
                    affected: n,
                    ..Default::default()
                }),
        };
        let result = if is_dml && self.cur.is_none() {
            match result {
                Ok(rs) => {
                    self.autocommit()?;
                    Ok(rs)
                }
                Err(e) => {
                    // A failed statement outside an explicit transaction
                    // must not leave partial work staged for the next
                    // autocommit: roll the implicit session back.
                    if !self.session_explicit {
                        if let Some(t) = self.session.take() {
                            self.rollback_txn_internal(t);
                        }
                    }
                    Err(e)
                }
            }
        } else {
            result
        };
        if mutates && result.is_ok() {
            self.writes += 1;
        }
        result
    }

    /// The read view for a plain statement: the API transaction being
    /// driven via [`Database::txn_execute`], else the session transaction
    /// (latest-committed + own writes), else latest-committed.
    fn stmt_view(&self) -> ReadView {
        match self.cur.or(self.session) {
            Some(t) => ReadView {
                csn: self.txns.get(&t).map(|w| w.view_csn).unwrap_or(LATEST_CSN),
                txn: Some(t),
            },
            None => ReadView::latest(),
        }
    }

    fn autocommit(&mut self) -> Result<()> {
        if !self.session_explicit {
            if let Some(t) = self.session.take() {
                self.commit_txn_internal(t)?;
            }
        }
        Ok(())
    }

    /// The transaction the current statement's writes belong to, creating
    /// an implicit session transaction when none is active.
    fn write_txn(&mut self) -> TxnId {
        if let Some(t) = self.cur {
            return t;
        }
        if let Some(t) = self.session {
            return t;
        }
        let t = self.mvcc.begin_txn(LATEST_CSN);
        self.txns.insert(t, TxnWrites::default());
        self.session = Some(t);
        self.session_explicit = false;
        t
    }

    fn commit_txn_internal(&mut self, id: TxnId) -> Result<Csn> {
        let tw = self
            .txns
            .remove(&id)
            .ok_or_else(|| DbError::Txn(format!("no active transaction {id}")))?;
        let csn = if tw.redo.is_empty() && tw.created.is_empty() && tw.deleted.is_empty() {
            // Read-only: no CSN consumed, nothing to log.
            self.mvcc.forget(id);
            self.mvcc.last_csn()
        } else {
            let csn = self.mvcc.commit(id);
            if !self.replaying && !tw.redo.is_empty() {
                if let Some(g) = &mut self.group {
                    // Stage into the open group-commit window; flushed
                    // with one sync_data at end_commit_window.
                    for rec in &tw.redo {
                        rec.encode_framed(&mut g.buf);
                    }
                    WalRecord::Commit { csn }.encode_framed(&mut g.buf);
                    g.commits += 1;
                } else {
                    self.wal.append_committed(&tw.redo, csn)?;
                    self.note_wal_sync(1);
                }
            }
            csn
        };
        let fire = match self.link_owner {
            Some(owner) if owner == id => {
                self.link_owner = None;
                true
            }
            Some(_) => false,
            None => true,
        };
        if fire && !self.replaying {
            for obs in &self.observers {
                obs.on_commit();
            }
        }
        self.maybe_autovacuum();
        Ok(csn)
    }

    fn rollback_txn_internal(&mut self, id: TxnId) {
        if let Some(tw) = self.txns.remove(&id) {
            // Unstamp deletes first, then physically remove created
            // versions in reverse order (an insert-then-update leaves
            // both the original stamp and the replacement version).
            for (table, rid) in &tw.deleted {
                self.mvcc.clear_delete(table, *rid, id);
            }
            for (table, rid) in tw.created.iter().rev() {
                self.physical_delete(table, *rid);
                self.mvcc.drop_version(table, *rid);
            }
        }
        self.mvcc.forget(id);
        let fire = match self.link_owner {
            Some(owner) if owner == id => {
                self.link_owner = None;
                true
            }
            Some(_) => false,
            None => true,
        };
        if fire {
            for obs in &self.observers {
                obs.on_rollback();
            }
        }
        self.maybe_autovacuum();
    }

    /// Reclaim dead versions opportunistically once nothing can see them.
    fn maybe_autovacuum(&mut self) {
        if self.txns.is_empty() && self.mvcc.open_snapshots() == 0 && self.mvcc.has_versions() {
            self.vacuum_internal();
        }
    }

    fn note_wal_sync(&self, n: u64) {
        if n > 0 {
            if let Some(m) = &self.metrics {
                m.wal_fsyncs.add(n as f64);
            }
        }
    }

    // ---- MVCC session API ----

    /// Begin a snapshot-isolation read view pinned at the current commit
    /// horizon. Release it with [`Database::release_snapshot`]; vacuum
    /// never reclaims versions a live snapshot can still see.
    pub fn begin_snapshot(&mut self) -> SnapshotId {
        let id = self.mvcc.begin_snapshot();
        if let Some(m) = &self.metrics {
            m.open_snapshots.set(self.mvcc.open_snapshots() as f64);
        }
        id
    }

    /// Release a snapshot. Returns false when the id is unknown.
    pub fn release_snapshot(&mut self, snap: SnapshotId) -> bool {
        let ok = self.mvcc.release_snapshot(snap);
        if let Some(m) = &self.metrics {
            m.open_snapshots.set(self.mvcc.open_snapshots() as f64);
        }
        self.maybe_autovacuum();
        ok
    }

    /// Run a read-only query against a snapshot's pinned view. Writers
    /// committing after the snapshot was taken are invisible.
    pub fn snapshot_query(
        &self,
        snap: SnapshotId,
        sql: &str,
        params: &[Value],
    ) -> Result<ResultSet> {
        let csn = self
            .mvcc
            .snapshot_csn(snap)
            .ok_or_else(|| DbError::Txn(format!("unknown snapshot {}", snap.0)))?;
        let stmt = parse(sql)?;
        let Stmt::Select(sel) = stmt else {
            return Err(DbError::Txn("snapshot sessions are read-only".into()));
        };
        if let Some(m) = &self.metrics {
            m.statement(crate::obs::StmtKind::Select);
        }
        let view = ReadView { csn, txn: None };
        exec::run_select(self, &view, &sel, params)
    }

    /// Begin an API transaction with a snapshot-isolation read view
    /// pinned at the current commit horizon. Drive it with
    /// [`Database::txn_execute`] and resolve it with
    /// [`Database::commit_txn`] / [`Database::rollback_txn`]. Multiple
    /// API transactions may be in flight at once (logical concurrency);
    /// first-committer-wins conflicts surface as `write conflict` errors
    /// at write time.
    pub fn begin_txn(&mut self) -> TxnId {
        let view = self.mvcc.last_csn();
        let t = self.mvcc.begin_txn(view);
        self.txns.insert(
            t,
            TxnWrites {
                view_csn: view,
                ..Default::default()
            },
        );
        t
    }

    /// Execute one statement inside an API transaction. Transaction
    /// control statements are rejected — use the commit/rollback methods.
    pub fn txn_execute(&mut self, txn: TxnId, sql: &str, params: &[Value]) -> Result<ResultSet> {
        if !self.txns.contains_key(&txn) {
            return Err(DbError::Txn(format!("no active transaction {txn}")));
        }
        let stmt = parse(sql)?;
        if matches!(stmt, Stmt::Begin | Stmt::Commit | Stmt::Rollback) {
            return Err(DbError::Txn(
                "transaction control inside txn_execute is not supported".into(),
            ));
        }
        let prev = self.cur.replace(txn);
        let result = self.execute_stmt(stmt, params, Some(sql));
        self.cur = prev;
        result
    }

    /// Commit an API transaction, returning its commit sequence number
    /// (read-only transactions return the current horizon).
    pub fn commit_txn(&mut self, txn: TxnId) -> Result<Csn> {
        if self.session == Some(txn) {
            return Err(DbError::Txn(
                "the session transaction commits via COMMIT".into(),
            ));
        }
        self.commit_txn_internal(txn)
    }

    /// Roll back an API transaction.
    pub fn rollback_txn(&mut self, txn: TxnId) -> Result<()> {
        if self.session == Some(txn) {
            return Err(DbError::Txn(
                "the session transaction rolls back via ROLLBACK".into(),
            ));
        }
        if !self.txns.contains_key(&txn) {
            return Err(DbError::Txn(format!("no active transaction {txn}")));
        }
        self.rollback_txn_internal(txn);
        Ok(())
    }

    /// Open a group-commit window: transactions committing before
    /// [`Database::end_commit_window`] stage their WAL records into one
    /// buffer, written and synced as a single unit (one `sync_data` for
    /// N committers). CSN order is pinned at commit time, so replay
    /// order is deterministic regardless of batching.
    pub fn begin_commit_window(&mut self) {
        if self.group.is_none() {
            self.group = Some(GroupWindow {
                buf: Vec::new(),
                commits: 0,
            });
        }
    }

    /// Close the group-commit window, flushing all staged commits with a
    /// single sync. Returns the number of transactions batched.
    pub fn end_commit_window(&mut self) -> Result<u64> {
        let Some(g) = self.group.take() else {
            return Ok(0);
        };
        if g.commits > 0 {
            self.wal.append_batch(&g.buf)?;
            self.note_wal_sync(1);
            if let Some(m) = &self.metrics {
                m.group_batch.observe(g.commits as f64);
            }
        }
        Ok(g.commits)
    }

    /// Reclaim row versions no open snapshot or transaction can see.
    pub fn vacuum(&mut self) -> VacuumStats {
        self.vacuum_internal()
    }

    fn vacuum_internal(&mut self) -> VacuumStats {
        let horizon = self.mvcc.horizon();
        let (dead, frozen) = self.mvcc.sweep(horizon);
        for (table, rid) in &dead {
            self.physical_delete(table, *rid);
        }
        if let Some(m) = &self.metrics {
            m.versions_vacuumed.add(dead.len() as f64);
        }
        VacuumStats {
            versions_removed: dead.len(),
            versions_frozen: frozen,
        }
    }

    /// Number of `sync_data` calls issued by the WAL so far (simulated
    /// sync points for in-memory databases).
    pub fn wal_syncs(&self) -> u64 {
        self.wal.syncs()
    }

    /// Number of open snapshots.
    pub fn open_snapshots(&self) -> usize {
        self.mvcc.open_snapshots()
    }

    /// Number of in-flight transactions (session + API).
    pub fn active_txns(&self) -> usize {
        self.txns.len()
    }

    /// The newest committed CSN.
    pub fn last_csn(&self) -> Csn {
        self.mvcc.last_csn()
    }

    /// Row-version visibility for executor scans.
    pub(crate) fn row_visible(&self, table: &str, rid: RowId, view: &ReadView) -> bool {
        self.mvcc.visible(table, rid, view)
    }

    /// The read view a statement executed right now would use (latest
    /// committed plus the session transaction's own writes). External
    /// executors driving [`exec::run_select`] directly use this.
    pub fn read_view(&self) -> ReadView {
        self.stmt_view()
    }

    // ---- DDL ----

    fn apply_ddl(&mut self, stmt: &Stmt) -> Result<()> {
        match stmt {
            Stmt::CreateTable {
                name,
                columns,
                constraints,
            } => self.create_table(name, columns, constraints),
            Stmt::DropTable { name } => self.drop_table(name),
            Stmt::CreateIndex {
                name,
                table,
                columns,
                unique,
            } => self.create_index(name, table, columns, *unique),
            _ => unreachable!("apply_ddl called with non-DDL"),
        }
    }

    fn create_table(
        &mut self,
        name: &str,
        columns: &[ColumnDefAst],
        constraints: &[TableConstraint],
    ) -> Result<()> {
        let upper = name.to_ascii_uppercase();
        if self.tables.contains_key(&upper) {
            return Err(DbError::Catalog(format!("table {upper} already exists")));
        }
        let mut defs = Vec::new();
        let mut pk_cols: Vec<String> = Vec::new();
        for c in columns {
            let mut def = ColumnDef::new(&c.name, c.ty);
            def.not_null = c.not_null;
            def.unique = c.unique;
            def.references = c
                .references
                .as_ref()
                .map(|(t, col)| (t.to_ascii_uppercase(), col.to_ascii_uppercase()));
            def.datalink = c.datalink.clone();
            if c.primary_key {
                pk_cols.push(def.name.clone());
            }
            defs.push(def);
        }
        let mut schema = TableSchema::new(&upper, defs)?;
        for tc in constraints {
            match tc {
                TableConstraint::PrimaryKey(cols) => {
                    if !pk_cols.is_empty() {
                        return Err(DbError::Catalog("multiple primary keys".into()));
                    }
                    pk_cols = cols.clone();
                }
                TableConstraint::ForeignKey {
                    columns,
                    ref_table,
                    ref_columns,
                } => schema.add_foreign_key(ForeignKey {
                    columns: columns.clone(),
                    ref_table: ref_table.clone(),
                    ref_columns: ref_columns.clone(),
                })?,
                TableConstraint::Unique(cols) => {
                    // Model table-level UNIQUE via a unique index below;
                    // record intent on single columns directly.
                    if cols.len() == 1 {
                        let idx = schema.column_index(&cols[0]).ok_or_else(|| {
                            DbError::Catalog(format!("unique column {} not found", cols[0]))
                        })?;
                        schema.columns[idx].unique = true;
                    }
                }
            }
        }
        if !pk_cols.is_empty() {
            schema.set_primary_key(pk_cols)?;
        }
        // Column-level REFERENCES become single-column foreign keys.
        let single_fks: Vec<ForeignKey> = schema
            .columns
            .iter()
            .filter_map(|c| {
                c.references.as_ref().map(|(t, rc)| ForeignKey {
                    columns: vec![c.name.clone()],
                    ref_table: t.clone(),
                    ref_columns: vec![rc.clone()],
                })
            })
            .collect();
        for fk in single_fks {
            schema.add_foreign_key(fk)?;
        }
        // Validate FK targets exist (self-references allowed).
        for fk in &schema.foreign_keys {
            if fk.ref_table != upper && !self.tables.contains_key(&fk.ref_table) {
                return Err(DbError::Catalog(format!(
                    "foreign key references unknown table {}",
                    fk.ref_table
                )));
            }
        }
        let mut table = Table {
            heap: HeapTable::new(),
            indexes: Vec::new(),
            schema,
        };
        // Implicit indexes: PK, then single-column UNIQUEs.
        if !table.schema.primary_key.is_empty() {
            let cols = table.schema.pk_indices();
            table.indexes.push(Index {
                name: format!("PK_{upper}"),
                col_indices: cols,
                unique: true,
                tree: BPlusTree::new(),
            });
        }
        let unique_cols: Vec<(String, usize)> = table
            .schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.unique)
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
        for (cname, i) in unique_cols {
            if table.index_matching(&[i]).is_none() {
                table.indexes.push(Index {
                    name: format!("UQ_{upper}_{cname}"),
                    col_indices: vec![i],
                    unique: true,
                    tree: BPlusTree::new(),
                });
            }
        }
        self.tables.insert(upper, table);
        Ok(())
    }

    fn drop_table(&mut self, name: &str) -> Result<()> {
        let upper = name.to_ascii_uppercase();
        if !self.tables.contains_key(&upper) {
            return Err(DbError::Catalog(format!("table {upper} does not exist")));
        }
        // RESTRICT: refuse when another table references this one.
        for (tname, t) in &self.tables {
            if tname == &upper {
                continue;
            }
            if t.schema.foreign_keys.iter().any(|fk| fk.ref_table == upper) {
                return Err(DbError::Constraint(format!(
                    "cannot drop {upper}: referenced by {tname}"
                )));
            }
        }
        // Refuse while an in-flight transaction holds uncommitted changes
        // on the table; its rollback would dangle. (DDL itself is not
        // versioned — open snapshots lose access to a dropped table.)
        let dirty = self.txns.values().any(|tw| {
            tw.created
                .iter()
                .chain(tw.deleted.iter())
                .any(|(t, _)| t == &upper)
        });
        if dirty {
            return Err(DbError::Txn(format!(
                "cannot drop {upper}: uncommitted changes in an active transaction"
            )));
        }
        self.tables.remove(&upper);
        self.mvcc.drop_table(&upper);
        Ok(())
    }

    fn create_index(
        &mut self,
        name: &str,
        table: &str,
        columns: &[String],
        unique: bool,
    ) -> Result<()> {
        let tname = table.to_ascii_uppercase();
        let iname = name.to_ascii_uppercase();
        let t = self
            .tables
            .get_mut(&tname)
            .ok_or_else(|| DbError::Catalog(format!("table {tname} does not exist")))?;
        if t.indexes.iter().any(|ix| ix.name == iname) {
            return Err(DbError::Catalog(format!("index {iname} already exists")));
        }
        let mut col_indices = Vec::new();
        for c in columns {
            col_indices.push(
                t.schema
                    .column_index(c)
                    .ok_or_else(|| DbError::Catalog(format!("column {c} not found in {tname}")))?,
            );
        }
        let mut ix = Index {
            name: iname,
            col_indices,
            unique,
            tree: BPlusTree::new(),
        };
        // Index every heap row (older read views must still find their
        // versions through the new index), but enforce uniqueness only
        // across currently-visible rows.
        let mvcc = &self.mvcc;
        let view = ReadView::latest();
        let mut seen: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
        for (rid, row) in t.heap.scan() {
            let key = ix.key_of(&row);
            let mut enc = Vec::new();
            crate::value::encode_row(&key, &mut enc);
            if unique
                && !key.iter().any(Value::is_null)
                && mvcc.visible(&tname, rid, &view)
                && !seen.insert(enc)
            {
                return Err(DbError::Constraint(format!(
                    "duplicate key for unique index {}",
                    ix.name
                )));
            }
            ix.tree.insert(key, rid);
        }
        t.indexes.push(ix);
        Ok(())
    }

    // ---- DML ----

    fn run_insert(
        &mut self,
        table: &str,
        columns: &[String],
        rows: &[Vec<crate::sql::ast::Expr>],
        params: &[Value],
    ) -> Result<usize> {
        let tname = table.to_ascii_uppercase();
        let schema = self
            .schema(&tname)
            .ok_or_else(|| DbError::Catalog(format!("table {tname} does not exist")))?
            .clone();
        // Map insert columns to positions.
        let positions: Vec<usize> = if columns.is_empty() {
            (0..schema.columns.len()).collect()
        } else {
            columns
                .iter()
                .map(|c| {
                    schema
                        .column_index(c)
                        .ok_or_else(|| DbError::Catalog(format!("column {c} not found in {tname}")))
                })
                .collect::<Result<_>>()?
        };
        let mut inserted = 0usize;
        for exprs in rows {
            if exprs.len() != positions.len() {
                return Err(DbError::Type(format!(
                    "INSERT has {} values for {} columns",
                    exprs.len(),
                    positions.len()
                )));
            }
            let mut row = vec![Value::Null; schema.columns.len()];
            for (expr, &pos) in exprs.iter().zip(&positions) {
                let v = exec::eval_const(self, expr, params)?;
                row[pos] = v;
            }
            self.insert_row(&tname, row)?;
            inserted += 1;
        }
        Ok(inserted)
    }

    /// Typed row insert (used by DML, the datalink layer and tests).
    pub fn insert_row(&mut self, table: &str, row: Vec<Value>) -> Result<()> {
        let tname = table.to_ascii_uppercase();
        let schema = self
            .schema(&tname)
            .ok_or_else(|| DbError::Catalog(format!("table {tname} does not exist")))?
            .clone();
        let row = self.check_row(&schema, row)?;
        let txn = self.write_txn();
        self.check_unique(&tname, &row, None, txn)?;
        self.check_fk_child(&schema, &row, txn)?;
        // Observers: link every non-null DATALINK value.
        if !self.replaying {
            for (i, spec) in schema.datalink_columns() {
                if let Value::Datalink(url) = &row[i] {
                    self.claim_links(txn)?;
                    for obs in &self.observers {
                        obs.on_link(&tname, &schema.columns[i].name, spec, url)?;
                    }
                }
            }
        }
        let rid = self.physical_insert(&tname, &row);
        self.mvcc.note_insert(&tname, rid, txn);
        let tw = self.txns.get_mut(&txn).expect("write txn is active");
        tw.created.push((tname.clone(), rid));
        tw.redo.push(WalRecord::Insert { table: tname, row });
        if let Some(m) = &self.metrics {
            m.versions_created.inc();
        }
        self.writes += 1;
        Ok(())
    }

    /// LinkObserver hooks carry no transaction id, so only one in-flight
    /// transaction may hold pending DATALINK operations at a time.
    fn claim_links(&mut self, txn: TxnId) -> Result<()> {
        if self.observers.is_empty() {
            return Ok(());
        }
        match self.link_owner {
            None => {
                self.link_owner = Some(txn);
                Ok(())
            }
            Some(owner) if owner == txn => Ok(()),
            Some(_) => Err(DbError::Txn(
                "another in-flight transaction holds pending DATALINK operations; \
                 commit or roll it back first"
                    .into(),
            )),
        }
    }

    fn run_update(
        &mut self,
        table: &str,
        sets: &[(String, crate::sql::ast::Expr)],
        where_clause: Option<&crate::sql::ast::Expr>,
        params: &[Value],
    ) -> Result<usize> {
        let tname = table.to_ascii_uppercase();
        let schema = self
            .schema(&tname)
            .ok_or_else(|| DbError::Catalog(format!("table {tname} does not exist")))?
            .clone();
        let view = self.stmt_view();
        let targets = exec::collect_matching(self, &view, &tname, where_clause, params)?;
        let mut set_pos = Vec::new();
        for (c, e) in sets {
            let pos = schema
                .column_index(c)
                .ok_or_else(|| DbError::Catalog(format!("column {c} not found in {tname}")))?;
            set_pos.push((pos, e.clone()));
        }
        let mut affected = 0usize;
        for (rid, old_row) in targets {
            let mut new_row = old_row.clone();
            for (pos, e) in &set_pos {
                new_row[*pos] = exec::eval_row(self, e, &tname, &old_row, params)?;
            }
            self.update_row(&tname, rid, old_row, new_row)?;
            affected += 1;
        }
        Ok(affected)
    }

    /// Typed row update.
    pub fn update_row(
        &mut self,
        table: &str,
        rid: RowId,
        old_row: Vec<Value>,
        new_row: Vec<Value>,
    ) -> Result<()> {
        let tname = table.to_ascii_uppercase();
        let schema = self.schema(&tname).expect("caller validated table").clone();
        let new_row = self.check_row(&schema, new_row)?;
        let txn = self.write_txn();
        self.check_write_conflict(&tname, rid, txn)?;
        self.check_unique(&tname, &new_row, Some(rid), txn)?;
        self.check_fk_child(&schema, &new_row, txn)?;
        self.check_fk_parent(&tname, &schema, &old_row, Some(&new_row), txn)?;
        if !self.replaying {
            for (i, spec) in schema.datalink_columns() {
                let old_url = match &old_row[i] {
                    Value::Datalink(u) => Some(u.clone()),
                    _ => None,
                };
                let new_url = match &new_row[i] {
                    Value::Datalink(u) => Some(u.clone()),
                    _ => None,
                };
                if old_url != new_url {
                    self.claim_links(txn)?;
                    let col = &schema.columns[i].name;
                    if let Some(u) = &old_url {
                        for obs in &self.observers {
                            obs.on_unlink(&tname, col, spec, u)?;
                        }
                    }
                    if let Some(u) = &new_url {
                        for obs in &self.observers {
                            obs.on_link(&tname, col, spec, u)?;
                        }
                    }
                }
            }
        }
        // MVCC update = delete-stamp the old version + insert the new row
        // as a fresh version; readers pinned before our commit keep
        // seeing the old row until vacuum reclaims it.
        self.mvcc.stamp_delete(&tname, rid, txn);
        let new_id = self.physical_insert(&tname, &new_row);
        self.mvcc.note_insert(&tname, new_id, txn);
        let tw = self.txns.get_mut(&txn).expect("write txn is active");
        tw.deleted.push((tname.clone(), rid));
        tw.created.push((tname.clone(), new_id));
        tw.redo.push(WalRecord::Update {
            table: tname,
            old_id: rid,
            old: old_row,
            new: new_row,
        });
        if let Some(m) = &self.metrics {
            m.versions_created.inc();
        }
        Ok(())
    }

    fn run_delete(
        &mut self,
        table: &str,
        where_clause: Option<&crate::sql::ast::Expr>,
        params: &[Value],
    ) -> Result<usize> {
        let tname = table.to_ascii_uppercase();
        if self.schema(&tname).is_none() {
            return Err(DbError::Catalog(format!("table {tname} does not exist")));
        }
        let view = self.stmt_view();
        let targets = exec::collect_matching(self, &view, &tname, where_clause, params)?;
        let mut affected = 0usize;
        for (rid, row) in targets {
            self.delete_row(&tname, rid, row)?;
            affected += 1;
        }
        Ok(affected)
    }

    /// Typed row delete.
    pub fn delete_row(&mut self, table: &str, rid: RowId, row: Vec<Value>) -> Result<()> {
        let tname = table.to_ascii_uppercase();
        let schema = self.schema(&tname).expect("caller validated table").clone();
        let txn = self.write_txn();
        self.check_write_conflict(&tname, rid, txn)?;
        self.check_fk_parent(&tname, &schema, &row, None, txn)?;
        if !self.replaying {
            for (i, spec) in schema.datalink_columns() {
                if let Value::Datalink(url) = &row[i] {
                    self.claim_links(txn)?;
                    for obs in &self.observers {
                        obs.on_unlink(&tname, &schema.columns[i].name, spec, url)?;
                    }
                }
            }
        }
        // MVCC delete: stamp only — the heap row survives for older read
        // views until vacuum reclaims it after our commit passes the
        // horizon.
        self.mvcc.stamp_delete(&tname, rid, txn);
        let tw = self.txns.get_mut(&txn).expect("write txn is active");
        tw.deleted.push((tname.clone(), rid));
        tw.redo.push(WalRecord::Delete {
            table: tname,
            row_id: rid,
            row,
        });
        Ok(())
    }

    /// First-committer-wins gate for delete/update of `rid`: refuse when
    /// the row was created or delete-stamped by a concurrent transaction,
    /// or modified by a commit newer than this transaction's snapshot.
    fn check_write_conflict(&self, table: &str, rid: RowId, txn: TxnId) -> Result<()> {
        let Some(v) = self.mvcc.version(table, rid) else {
            return Ok(()); // frozen: visible to everyone, never contended
        };
        if let Some(x) = v.xmax {
            if x == txn {
                return Err(self.conflict(table, "row already deleted in this transaction"));
            }
            if self.mvcc.is_active(x) {
                return Err(self.conflict(table, "row deleted by a concurrent transaction"));
            }
            if self.mvcc.csn_of(x).is_some() {
                return Err(self.conflict(table, "row deleted by a later commit"));
            }
        }
        if v.xmin != txn {
            if self.mvcc.is_active(v.xmin) {
                return Err(self.conflict(table, "row created by a concurrent transaction"));
            }
            let snap = self
                .txns
                .get(&txn)
                .map(|w| w.view_csn)
                .unwrap_or(LATEST_CSN);
            if self.mvcc.csn_of(v.xmin).is_some_and(|c| c > snap) {
                return Err(self.conflict(table, "row modified since this transaction's snapshot"));
            }
        }
        Ok(())
    }

    fn conflict(&self, table: &str, what: &str) -> DbError {
        if let Some(m) = &self.metrics {
            m.write_conflicts.inc();
        }
        DbError::Txn(format!(
            "write conflict on {table}: {what} (first committer wins)"
        ))
    }

    // ---- constraint checks ----

    fn check_row(&self, schema: &TableSchema, row: Vec<Value>) -> Result<Vec<Value>> {
        if row.len() != schema.columns.len() {
            return Err(DbError::Type(format!(
                "row has {} values, table {} has {} columns",
                row.len(),
                schema.name,
                schema.columns.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, col) in row.into_iter().zip(&schema.columns) {
            let v = v
                .coerce(col.ty)
                .map_err(|e| DbError::Type(format!("column {}: {e}", col.name)))?;
            if v.is_null() && col.not_null {
                return Err(DbError::Constraint(format!(
                    "column {}.{} may not be NULL",
                    schema.name, col.name
                )));
            }
            out.push(v);
        }
        Ok(out)
    }

    fn check_unique(
        &self,
        table: &str,
        row: &[Value],
        exclude: Option<RowId>,
        txn: TxnId,
    ) -> Result<()> {
        let t = self.tables.get(table).expect("caller validated table");
        for ix in &t.indexes {
            if !ix.unique {
                continue;
            }
            let key = ix.key_of(row);
            if key.iter().any(Value::is_null) {
                continue; // NULLs are exempt from uniqueness
            }
            for hit in ix.tree.get(&key) {
                if Some(hit) == exclude {
                    continue;
                }
                // Classify the index hit against the version metadata:
                // dead versions don't collide, but rows touched by a
                // concurrent transaction are eager write conflicts (its
                // abort could resurrect the duplicate).
                let Some(v) = self.mvcc.version(table, hit) else {
                    return Err(self.duplicate(table, &ix.name)); // frozen = live
                };
                match v.xmax {
                    Some(x) if x == txn || self.mvcc.csn_of(x).is_some() => continue,
                    Some(_) => {
                        return Err(
                            self.conflict(table, "duplicate key held by a concurrent delete")
                        );
                    }
                    None => {
                        if v.xmin == txn || self.mvcc.csn_of(v.xmin).is_some() {
                            return Err(self.duplicate(table, &ix.name));
                        }
                        return Err(self.conflict(
                            table,
                            "duplicate key inserted by a concurrent transaction",
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn duplicate(&self, table: &str, index: &str) -> DbError {
        DbError::Constraint(format!("duplicate key in unique index {index} of {table}"))
    }

    /// Child-side FK check: every FK value combination must exist in the
    /// referenced table (NULLs exempt a key). Only rows visible to the
    /// writing transaction count.
    fn check_fk_child(&self, schema: &TableSchema, row: &[Value], txn: TxnId) -> Result<()> {
        let view = ReadView {
            csn: LATEST_CSN,
            txn: Some(txn),
        };
        for fk in &schema.foreign_keys {
            let vals: Vec<Value> = fk
                .columns
                .iter()
                .map(|c| row[schema.column_index(c).expect("fk validated")].clone())
                .collect();
            if vals.iter().any(Value::is_null) {
                continue;
            }
            let parent = self.tables.get(&fk.ref_table).ok_or_else(|| {
                DbError::Catalog(format!("fk target table {} missing", fk.ref_table))
            })?;
            let ref_idx: Vec<usize> =
                fk.ref_columns
                    .iter()
                    .map(|c| {
                        parent.schema.column_index(c).ok_or_else(|| {
                            DbError::Catalog(format!("fk target column {c} missing"))
                        })
                    })
                    .collect::<Result<_>>()?;
            let found = if let Some(ix) = parent.index_matching(&ref_idx) {
                ix.tree
                    .get(&vals)
                    .iter()
                    .any(|&prid| self.mvcc.visible(&fk.ref_table, prid, &view))
            } else {
                parent.heap.scan().any(|(prid, prow)| {
                    self.mvcc.visible(&fk.ref_table, prid, &view)
                        && ref_idx.iter().zip(&vals).all(|(&i, v)| &prow[i] == v)
                })
            };
            if !found {
                return Err(DbError::Constraint(format!(
                    "foreign key violation: {}({}) -> {}({}) value not found",
                    schema.name,
                    fk.columns.join(","),
                    fk.ref_table,
                    fk.ref_columns.join(",")
                )));
            }
        }
        Ok(())
    }

    /// Parent-side FK check (RESTRICT): refuse deleting/changing a key
    /// that child rows visible to the writing transaction still reference.
    fn check_fk_parent(
        &self,
        table: &str,
        schema: &TableSchema,
        old_row: &[Value],
        new_row: Option<&[Value]>,
        txn: TxnId,
    ) -> Result<()> {
        let view = ReadView {
            csn: LATEST_CSN,
            txn: Some(txn),
        };
        for (child_name, child) in &self.tables {
            for fk in &child.schema.foreign_keys {
                if fk.ref_table != table {
                    continue;
                }
                let ref_idx: Vec<usize> = fk
                    .ref_columns
                    .iter()
                    .filter_map(|c| schema.column_index(c))
                    .collect();
                if ref_idx.len() != fk.ref_columns.len() {
                    continue;
                }
                let old_key: Vec<&Value> = ref_idx.iter().map(|&i| &old_row[i]).collect();
                if old_key.iter().any(|v| v.is_null()) {
                    continue;
                }
                if let Some(new_row) = new_row {
                    let unchanged = ref_idx.iter().all(|&i| old_row[i] == new_row[i]);
                    if unchanged {
                        continue;
                    }
                }
                let child_idx: Vec<usize> = fk
                    .columns
                    .iter()
                    .map(|c| child.schema.column_index(c).expect("fk validated"))
                    .collect();
                let referenced = child.heap.scan().any(|(crid, crow)| {
                    self.mvcc.visible(child_name, crid, &view)
                        && child_idx
                            .iter()
                            .zip(&old_key)
                            .all(|(&ci, &pv)| &crow[ci] == pv)
                });
                if referenced {
                    return Err(DbError::Constraint(format!(
                        "cannot modify {table}: key referenced by {child_name}"
                    )));
                }
            }
        }
        Ok(())
    }

    // ---- physical operations (heap + index maintenance only) ----

    fn physical_insert(&mut self, table: &str, row: &[Value]) -> RowId {
        let t = self.tables.get_mut(table).expect("caller validated table");
        let rid = t.heap.insert(row);
        for ix in &mut t.indexes {
            let key = ix.col_indices.iter().map(|&i| row[i].clone()).collect();
            ix.tree.insert(key, rid);
        }
        rid
    }

    fn physical_delete(&mut self, table: &str, rid: RowId) {
        let t = self.tables.get_mut(table).expect("caller validated table");
        if let Some(row) = t.heap.get(rid) {
            for ix in &mut t.indexes {
                let key = ix.key_of(&row);
                ix.tree.remove(&key, rid);
            }
            t.heap.delete(rid);
        }
    }

    fn physical_update(
        &mut self,
        table: &str,
        rid: RowId,
        old: &[Value],
        new: &[Value],
    ) -> Result<RowId> {
        let t = self.tables.get_mut(table).expect("caller validated table");
        for ix in &mut t.indexes {
            let key = ix.key_of(old);
            ix.tree.remove(&key, rid);
        }
        let new_id = t.heap.update(rid, new)?;
        for ix in &mut t.indexes {
            let key = ix.key_of(new);
            ix.tree.insert(key, new_id);
        }
        Ok(new_id)
    }

    /// Find a live row equal to `row` (used by WAL replay, where physical
    /// RowIds may differ from the original execution).
    fn find_row_by_value(&self, table: &str, row: &[Value]) -> Option<RowId> {
        let t = self.tables.get(table)?;
        t.heap.scan().find(|(_, r)| r == row).map(|(rid, _)| rid)
    }

    fn apply_wal(&mut self, rec: WalRecord) -> Result<()> {
        match rec {
            WalRecord::Ddl(sql) => {
                let stmt = parse(&sql)?;
                self.apply_ddl(&stmt)
            }
            WalRecord::Insert { table, row } => {
                let schema = self
                    .schema(&table)
                    .ok_or_else(|| DbError::Storage(format!("wal replay: no table {table}")))?
                    .clone();
                let row = self.check_row(&schema, row)?;
                self.physical_insert(&table, &row);
                Ok(())
            }
            WalRecord::Delete { table, row, .. } => {
                let rid = self.find_row_by_value(&table, &row).ok_or_else(|| {
                    DbError::Storage(format!("wal replay: row not found in {table}"))
                })?;
                self.physical_delete(&table, rid);
                Ok(())
            }
            WalRecord::Update {
                table, old, new, ..
            } => {
                let rid = self.find_row_by_value(&table, &old).ok_or_else(|| {
                    DbError::Storage(format!("wal replay: row not found in {table}"))
                })?;
                self.physical_update(&table, rid, &old, &new)?;
                Ok(())
            }
            WalRecord::Commit { csn } => {
                // Pin the CSN counter past every recovered commit so
                // post-recovery commits continue the sequence.
                self.mvcc.observe_recovered_csn(csn);
                Ok(())
            }
        }
    }

    // ---- snapshotting ----

    /// Serialise the committed state as a v2 snapshot:
    /// `EASNAP2\0` + body CRC32 + body. Rows are filtered to the commit
    /// horizon's read view, so a checkpoint taken under in-flight
    /// transactions or open snapshots writes exactly what a fresh reader
    /// would see (uncommitted and merely-pinned versions excluded; heap
    /// RowIds are not preserved, which is fine — indexes are rebuilt on
    /// load and WAL replay matches rows by value).
    fn write_snapshot(&self) -> Vec<u8> {
        let view = self.mvcc.committed_view();
        let mut body = Vec::new();
        body.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for (name, t) in &self.tables {
            let ddl = schema_to_ddl(&t.schema);
            body.extend_from_slice(&(ddl.len() as u32).to_le_bytes());
            body.extend_from_slice(ddl.as_bytes());
            // Extra (non-implicit) indexes as DDL too.
            let extra: Vec<String> = t
                .indexes
                .iter()
                .filter(|ix| !ix.name.starts_with("PK_") && !ix.name.starts_with("UQ_"))
                .map(|ix| index_to_ddl(&t.schema, ix))
                .collect();
            body.extend_from_slice(&(extra.len() as u32).to_le_bytes());
            for ddl in extra {
                body.extend_from_slice(&(ddl.len() as u32).to_le_bytes());
                body.extend_from_slice(ddl.as_bytes());
            }
            let mut committed = HeapTable::new();
            for (rid, row) in t.heap.scan() {
                if self.mvcc.visible(name, rid, &view) {
                    committed.insert(&row);
                }
            }
            committed.snapshot(&mut body);
        }
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(b"EASNAP2\0");
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Load a snapshot image: v2 (`EASNAP2\0`, CRC-verified) or legacy
    /// v1 (`EASNAP1\0`, unchecksummed). A v2 body failing its CRC is a
    /// typed storage error — recovery must not build on rotted pages.
    fn load_snapshot(&mut self, full: &[u8]) -> Result<()> {
        let trunc = || DbError::Storage("snapshot truncated".into());
        let bytes: &[u8] = if full.get(..8) == Some(b"EASNAP2\0".as_slice()) {
            let want = u32::from_le_bytes(
                full.get(8..12)
                    .ok_or_else(trunc)?
                    .try_into()
                    .expect("4 bytes"),
            );
            let body = &full[12..];
            if crc32(body) != want {
                return Err(DbError::Storage(
                    "snapshot checksum mismatch (crc32): refusing to load rotted image".into(),
                ));
            }
            body
        } else if full.get(..8) == Some(b"EASNAP1\0".as_slice()) {
            &full[8..] // legacy, unchecksummed
        } else {
            return Err(DbError::Storage("bad snapshot magic".into()));
        };
        let mut pos = 0usize;
        let read_u32 = |pos: &mut usize| -> Result<u32> {
            let s = bytes.get(*pos..*pos + 4).ok_or_else(trunc)?;
            *pos += 4;
            Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
        };
        let read_str = |pos: &mut usize| -> Result<String> {
            let len = {
                let s = bytes.get(*pos..*pos + 4).ok_or_else(trunc)?;
                *pos += 4;
                u32::from_le_bytes(s.try_into().expect("4 bytes")) as usize
            };
            let s = bytes.get(*pos..*pos + len).ok_or_else(trunc)?;
            *pos += len;
            String::from_utf8(s.to_vec()).map_err(|_| DbError::Storage("snapshot utf8".into()))
        };
        let ntables = read_u32(&mut pos)? as usize;
        self.replaying = true;
        for _ in 0..ntables {
            let ddl = read_str(&mut pos)?;
            let stmt = parse(&ddl)?;
            self.apply_ddl(&stmt)?;
            let nextra = read_u32(&mut pos)? as usize;
            for _ in 0..nextra {
                let iddl = read_str(&mut pos)?;
                let stmt = parse(&iddl)?;
                self.apply_ddl(&stmt)?;
            }
            // Replace the fresh heap with the snapshotted one and rebuild
            // index contents from it.
            let tname = match parse(&ddl)? {
                Stmt::CreateTable { name, .. } => name.to_ascii_uppercase(),
                _ => return Err(DbError::Storage("snapshot: expected CREATE TABLE".into())),
            };
            let heap = HeapTable::restore(bytes, &mut pos)?;
            let t = self.tables.get_mut(&tname).expect("just created");
            t.heap = heap;
            let rows: Vec<(RowId, Vec<Value>)> = t.heap.scan().collect();
            for ix in &mut t.indexes {
                for (rid, row) in &rows {
                    let key = ix.col_indices.iter().map(|&i| row[i].clone()).collect();
                    ix.tree.insert(key, *rid);
                }
            }
        }
        self.replaying = false;
        Ok(())
    }

    /// Render DATALINK values for output via the registered observers.
    pub(crate) fn render_datalink(&self, spec: &DatalinkSpec, url: &str) -> String {
        for obs in &self.observers {
            if let Some(rendered) = obs.render_datalink(spec, url) {
                return rendered;
            }
        }
        url.to_string()
    }
}

/// Reconstruct CREATE TABLE DDL from a schema (used by snapshots; also
/// handy for introspection tools).
pub fn schema_to_ddl(s: &TableSchema) -> String {
    let mut parts = Vec::new();
    for c in &s.columns {
        let mut p = format!("{} {}", c.name, c.ty.sql_name());
        if let Some(dl) = &c.datalink {
            p = format!("{} DATALINK LINKTYPE URL", c.name);
            if dl.file_link_control {
                p.push_str(" FILE LINK CONTROL");
            } else {
                p.push_str(" NO FILE LINK CONTROL");
            }
            if dl.file_link_control {
                p.push_str(if dl.integrity_all {
                    " INTEGRITY ALL"
                } else {
                    " INTEGRITY NONE"
                });
                p.push_str(if dl.read_permission_db {
                    " READ PERMISSION DB"
                } else {
                    " READ PERMISSION FS"
                });
                p.push_str(if dl.write_permission_blocked {
                    " WRITE PERMISSION BLOCKED"
                } else {
                    " WRITE PERMISSION FS"
                });
                p.push_str(if dl.recovery {
                    " RECOVERY YES"
                } else {
                    " RECOVERY NO"
                });
                p.push_str(if dl.on_unlink_restore {
                    " ON UNLINK RESTORE"
                } else {
                    " ON UNLINK DELETE"
                });
            }
        }
        if c.not_null && !s.primary_key.contains(&c.name) {
            p.push_str(" NOT NULL");
        }
        if c.unique {
            p.push_str(" UNIQUE");
        }
        parts.push(p);
    }
    if !s.primary_key.is_empty() {
        parts.push(format!("PRIMARY KEY ({})", s.primary_key.join(", ")));
    }
    for fk in &s.foreign_keys {
        parts.push(format!(
            "FOREIGN KEY ({}) REFERENCES {} ({})",
            fk.columns.join(", "),
            fk.ref_table,
            fk.ref_columns.join(", ")
        ));
    }
    format!("CREATE TABLE {} ({})", s.name, parts.join(", "))
}

fn index_to_ddl(schema: &TableSchema, ix: &Index) -> String {
    let cols: Vec<&str> = ix
        .col_indices
        .iter()
        .map(|&i| schema.columns[i].name.as_str())
        .collect();
    format!(
        "CREATE {}INDEX {} ON {} ({})",
        if ix.unique { "UNIQUE " } else { "" },
        ix.name,
        schema.name,
        cols.join(", ")
    )
}
