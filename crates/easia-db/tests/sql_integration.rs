//! End-to-end SQL tests against the embedded engine, modelled on the
//! paper's five-table turbulence schema.

use easia_db::{Database, DbError, Value};

fn turbulence_db() -> Database {
    let mut db = Database::new_in_memory();
    db.execute(
        "CREATE TABLE author (
            author_key VARCHAR(30) PRIMARY KEY,
            name VARCHAR(100) NOT NULL,
            email VARCHAR(100),
            institution VARCHAR(200)
        )",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE simulation (
            simulation_key VARCHAR(30) PRIMARY KEY,
            title VARCHAR(200) NOT NULL,
            author_key VARCHAR(30) REFERENCES author(author_key),
            grid_size INTEGER,
            reynolds DOUBLE,
            description CLOB
        )",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE result_file (
            file_name VARCHAR(100),
            simulation_key VARCHAR(30) REFERENCES simulation(simulation_key),
            timestep INTEGER,
            measurement VARCHAR(20),
            file_format VARCHAR(10),
            file_size INTEGER,
            download_result DATALINK LINKTYPE URL NO FILE LINK CONTROL,
            PRIMARY KEY (file_name, simulation_key)
        )",
    )
    .unwrap();
    db.execute("INSERT INTO author VALUES ('A1', 'Mark Papiani', 'mp@soton', 'Southampton')")
        .unwrap();
    db.execute("INSERT INTO author VALUES ('A2', 'Jasmin Wason', NULL, 'Southampton')")
        .unwrap();
    db.execute(
        "INSERT INTO simulation VALUES
         ('S1', 'Channel flow Re360', 'A1', 256, 360.0, 'DNS of channel flow'),
         ('S2', 'Isotropic decay', 'A1', 512, 1200.0, 'Decaying turbulence'),
         ('S3', 'Boundary layer', 'A2', 128, 300.0, NULL)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO result_file VALUES
         ('t000.edf', 'S1', 0, 'u,v,w,p', 'EDF', 85000000, 'http://fs1/data/S1/t000.edf'),
         ('t001.edf', 'S1', 1, 'u,v,w,p', 'EDF', 85000000, 'http://fs1/data/S1/t001.edf'),
         ('t000.edf', 'S2', 0, 'u,v,w,p', 'HDF', 544000000, 'http://fs2/data/S2/t000.edf')",
    )
    .unwrap();
    db
}

#[test]
fn select_all() {
    let mut db = turbulence_db();
    let rs = db.execute("SELECT * FROM simulation").unwrap();
    assert_eq!(rs.columns.len(), 6);
    assert_eq!(rs.rows.len(), 3);
}

#[test]
fn where_with_like_and_comparison() {
    let mut db = turbulence_db();
    let rs = db
        .execute("SELECT title FROM simulation WHERE title LIKE '%flow%' AND grid_size >= 200")
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Str("Channel flow Re360".into())]]);
}

#[test]
fn pk_index_lookup() {
    let mut db = turbulence_db();
    let rs = db
        .execute("SELECT title FROM simulation WHERE simulation_key = 'S2'")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Str("Isotropic decay".into()));
}

#[test]
fn parameterised_query() {
    let mut db = turbulence_db();
    let rs = db
        .execute_with_params(
            "SELECT COUNT(*) FROM result_file WHERE simulation_key = ?",
            &[Value::Str("S1".into())],
        )
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
}

#[test]
fn join_fk_browsing() {
    // The FK-browsing query: simulation rows with their author details.
    let mut db = turbulence_db();
    let rs = db
        .execute(
            "SELECT s.title, a.name FROM simulation s \
             JOIN author a ON s.author_key = a.author_key \
             ORDER BY s.title",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(rs.rows[0][1], Value::Str("Jasmin Wason".into()));
    assert_eq!(rs.columns, vec!["TITLE", "NAME"]);
}

#[test]
fn left_join_keeps_unmatched() {
    let mut db = turbulence_db();
    // S3 has no result files.
    let rs = db
        .execute(
            "SELECT s.simulation_key, r.file_name FROM simulation s \
             LEFT JOIN result_file r ON r.simulation_key = s.simulation_key \
             ORDER BY s.simulation_key, r.file_name",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 4);
    let last = rs.rows.last().unwrap();
    assert_eq!(last[0], Value::Str("S3".into()));
    assert_eq!(last[1], Value::Null);
}

#[test]
fn aggregates_group_by_having() {
    let mut db = turbulence_db();
    let rs = db
        .execute(
            "SELECT author_key, COUNT(*) AS n, MAX(grid_size) FROM simulation \
             GROUP BY author_key HAVING COUNT(*) > 1",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(
        rs.rows[0],
        vec![Value::Str("A1".into()), Value::Int(2), Value::Int(512)]
    );
}

#[test]
fn global_aggregates() {
    let mut db = turbulence_db();
    let rs = db
        .execute(
            "SELECT COUNT(*), SUM(file_size), AVG(timestep), MIN(file_format) FROM result_file",
        )
        .unwrap();
    assert_eq!(
        rs.rows[0],
        vec![
            Value::Int(3),
            Value::Int(714_000_000),
            Value::Double(1.0 / 3.0),
            Value::Str("EDF".into())
        ]
    );
}

#[test]
fn aggregate_over_empty_table() {
    let mut db = turbulence_db();
    db.execute("CREATE TABLE empty_t (x INTEGER)").unwrap();
    let rs = db.execute("SELECT COUNT(*), SUM(x) FROM empty_t").unwrap();
    assert_eq!(rs.rows[0], vec![Value::Int(0), Value::Null]);
}

#[test]
fn distinct_and_order_and_limit() {
    let mut db = turbulence_db();
    let rs = db
        .execute("SELECT DISTINCT measurement FROM result_file")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    let rs = db
        .execute("SELECT title FROM simulation ORDER BY grid_size DESC LIMIT 2")
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][0], Value::Str("Isotropic decay".into()));
}

#[test]
fn order_by_expression_and_alias() {
    let mut db = turbulence_db();
    let rs = db
        .execute("SELECT title, grid_size * 2 AS doubled FROM simulation ORDER BY doubled")
        .unwrap();
    assert_eq!(rs.rows[0][1], Value::Int(256));
    let rs = db
        .execute("SELECT title FROM simulation ORDER BY reynolds + 1 DESC")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Str("Isotropic decay".into()));
}

#[test]
fn update_rows() {
    let mut db = turbulence_db();
    let rs = db
        .execute("UPDATE simulation SET grid_size = 1024 WHERE author_key = 'A1'")
        .unwrap();
    assert_eq!(rs.affected, 2);
    let rs = db
        .execute("SELECT COUNT(*) FROM simulation WHERE grid_size = 1024")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
}

#[test]
fn delete_rows() {
    let mut db = turbulence_db();
    let rs = db
        .execute("DELETE FROM result_file WHERE simulation_key = 'S1'")
        .unwrap();
    assert_eq!(rs.affected, 2);
    let rs = db.execute("SELECT COUNT(*) FROM result_file").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(1)));
}

#[test]
fn not_null_enforced() {
    let mut db = turbulence_db();
    let err = db
        .execute("INSERT INTO author VALUES ('A3', NULL, NULL, NULL)")
        .unwrap_err();
    assert!(matches!(err, DbError::Constraint(_)), "{err}");
}

#[test]
fn primary_key_enforced() {
    let mut db = turbulence_db();
    let err = db
        .execute("INSERT INTO author VALUES ('A1', 'Dup', NULL, NULL)")
        .unwrap_err();
    assert!(matches!(err, DbError::Constraint(_)), "{err}");
    // Composite PK: same file name under a different simulation is fine.
    db.execute("INSERT INTO result_file VALUES ('t000.edf', 'S3', 0, 'u', 'EDF', 1, NULL)")
        .unwrap();
    let err = db
        .execute("INSERT INTO result_file VALUES ('t000.edf', 'S3', 9, 'u', 'EDF', 1, NULL)")
        .unwrap_err();
    assert!(matches!(err, DbError::Constraint(_)), "{err}");
}

#[test]
fn foreign_key_enforced_on_insert() {
    let mut db = turbulence_db();
    let err = db
        .execute("INSERT INTO simulation VALUES ('S9', 'Ghost', 'NOBODY', 1, 1.0, NULL)")
        .unwrap_err();
    assert!(matches!(err, DbError::Constraint(_)), "{err}");
    // NULL FK is allowed.
    db.execute("INSERT INTO simulation VALUES ('S9', 'Ghost', NULL, 1, 1.0, NULL)")
        .unwrap();
}

#[test]
fn foreign_key_restricts_parent_delete() {
    let mut db = turbulence_db();
    let err = db
        .execute("DELETE FROM author WHERE author_key = 'A1'")
        .unwrap_err();
    assert!(matches!(err, DbError::Constraint(_)), "{err}");
    // Remove children first, then the parent delete succeeds.
    db.execute("DELETE FROM result_file WHERE simulation_key IN ('S1','S2')")
        .unwrap();
    db.execute("DELETE FROM simulation WHERE author_key = 'A1'")
        .unwrap();
    db.execute("DELETE FROM author WHERE author_key = 'A1'")
        .unwrap();
}

#[test]
fn foreign_key_restricts_parent_key_update() {
    let mut db = turbulence_db();
    let err = db
        .execute("UPDATE author SET author_key = 'AX' WHERE author_key = 'A1'")
        .unwrap_err();
    assert!(matches!(err, DbError::Constraint(_)), "{err}");
    // Updating a non-key column of the parent is fine.
    db.execute("UPDATE author SET name = 'M. Papiani' WHERE author_key = 'A1'")
        .unwrap();
}

#[test]
fn varchar_length_enforced() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE t (s VARCHAR(3))").unwrap();
    assert!(db.execute("INSERT INTO t VALUES ('abcd')").is_err());
    db.execute("INSERT INTO t VALUES ('abc')").unwrap();
}

#[test]
fn transactions_commit_and_rollback() {
    let mut db = turbulence_db();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO author VALUES ('A3', 'Denis Nicole', NULL, NULL)")
        .unwrap();
    db.execute("UPDATE simulation SET grid_size = 1 WHERE simulation_key = 'S1'")
        .unwrap();
    db.execute("ROLLBACK").unwrap();
    let rs = db.execute("SELECT COUNT(*) FROM author").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)), "insert rolled back");
    let rs = db
        .execute("SELECT grid_size FROM simulation WHERE simulation_key = 'S1'")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(256)), "update rolled back");

    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO author VALUES ('A3', 'Denis Nicole', NULL, NULL)")
        .unwrap();
    db.execute("COMMIT").unwrap();
    let rs = db.execute("SELECT COUNT(*) FROM author").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(3)));
}

#[test]
fn rollback_restores_deleted_rows() {
    let mut db = turbulence_db();
    db.execute("BEGIN").unwrap();
    db.execute("DELETE FROM result_file WHERE simulation_key = 'S1'")
        .unwrap();
    db.execute("ROLLBACK").unwrap();
    let rs = db.execute("SELECT COUNT(*) FROM result_file").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(3)));
    // Indexes are restored too: PK lookup still works.
    let rs = db
        .execute("SELECT COUNT(*) FROM result_file WHERE file_name = 't001.edf'")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(1)));
}

#[test]
fn nested_begin_rejected() {
    let mut db = turbulence_db();
    db.execute("BEGIN").unwrap();
    assert!(matches!(db.execute("BEGIN").unwrap_err(), DbError::Txn(_)));
    assert!(matches!(
        db.execute("CREATE TABLE x (a INTEGER)").unwrap_err(),
        DbError::Txn(_)
    ));
    db.execute("ROLLBACK").unwrap();
    assert!(matches!(db.execute("COMMIT").unwrap_err(), DbError::Txn(_)));
}

#[test]
fn secondary_index_used_and_maintained() {
    let mut db = turbulence_db();
    db.execute("CREATE INDEX idx_rf_sim ON result_file (simulation_key)")
        .unwrap();
    let rs = db
        .execute("SELECT file_name FROM result_file WHERE simulation_key = 'S1' ORDER BY file_name")
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    db.execute("DELETE FROM result_file WHERE file_name = 't000.edf' AND simulation_key = 'S1'")
        .unwrap();
    let rs = db
        .execute("SELECT file_name FROM result_file WHERE simulation_key = 'S1'")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
}

#[test]
fn unique_index_rejects_duplicates() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 1), (2, 2)").unwrap();
    db.execute("CREATE UNIQUE INDEX uq_a ON t (a)").unwrap();
    assert!(db.execute("INSERT INTO t VALUES (1, 3)").is_err());
    // Building a unique index over existing duplicates fails.
    db.execute("INSERT INTO t VALUES (9, 2)").unwrap();
    assert!(db.execute("CREATE UNIQUE INDEX uq_b ON t (b)").is_err());
}

#[test]
fn drop_table_respects_references() {
    let mut db = turbulence_db();
    let err = db.execute("DROP TABLE author").unwrap_err();
    assert!(matches!(err, DbError::Constraint(_)), "{err}");
    db.execute("DROP TABLE result_file").unwrap();
    assert!(db.execute("SELECT * FROM result_file").is_err());
}

#[test]
fn clob_and_blob_round_trip() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE lobs (k INTEGER PRIMARY KEY, doc CLOB, bin BLOB)")
        .unwrap();
    let big_text = "x".repeat(50_000);
    db.execute_with_params(
        "INSERT INTO lobs VALUES (1, ?, ?)",
        &[
            Value::Clob(big_text.clone()),
            Value::Blob(vec![7u8; 30_000]),
        ],
    )
    .unwrap();
    let rs = db.execute("SELECT doc, bin FROM lobs WHERE k = 1").unwrap();
    assert_eq!(rs.rows[0][0], Value::Clob(big_text));
    assert_eq!(rs.rows[0][1], Value::Blob(vec![7u8; 30_000]));
    let rs = db.execute("SELECT LENGTH(doc) FROM lobs").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(50_000)));
}

#[test]
fn persistence_snapshot_and_wal_recovery() {
    let dir = std::env::temp_dir().join(format!("easia-db-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR(50))")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
            .unwrap();
        db.checkpoint().unwrap();
        // Post-checkpoint work lives only in the WAL.
        db.execute("INSERT INTO t VALUES (3, 'three')").unwrap();
        db.execute("UPDATE t SET v = 'TWO' WHERE k = 2").unwrap();
        db.execute("DELETE FROM t WHERE k = 1").unwrap();
        // Explicit transaction that rolls back: must not reappear.
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO t VALUES (99, 'phantom')").unwrap();
        db.execute("ROLLBACK").unwrap();
        // Drop without checkpoint: recovery must replay the WAL.
    }
    {
        let mut db = Database::open(&dir).unwrap();
        let rs = db.execute("SELECT k, v FROM t ORDER BY k").unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Int(2), Value::Str("TWO".into())],
                vec![Value::Int(3), Value::Str("three".into())],
            ]
        );
        // PK index rebuilt and enforced after recovery.
        assert!(db.execute("INSERT INTO t VALUES (2, 'dup')").is_err());
        db.execute("INSERT INTO t VALUES (4, 'four')").unwrap();
    }
    {
        // One more cycle: snapshot + wal compose.
        let mut db = Database::open(&dir).unwrap();
        let rs = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(3)));
        db.checkpoint().unwrap();
    }
    {
        let mut db = Database::open(&dir).unwrap();
        let rs = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(3)));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn persistence_preserves_datalink_schema() {
    let dir = std::env::temp_dir().join(format!("easia-db-dl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute(
            "CREATE TABLE rf (f VARCHAR(50) PRIMARY KEY,
             d DATALINK LINKTYPE URL FILE LINK CONTROL INTEGRITY ALL
               READ PERMISSION DB WRITE PERMISSION BLOCKED RECOVERY YES
               ON UNLINK RESTORE)",
        )
        .unwrap();
    }
    {
        let db = Database::open(&dir).unwrap();
        let schema = db.schema("rf").unwrap();
        let dls = schema.datalink_columns();
        assert_eq!(dls.len(), 1);
        assert!(dls[0].1.file_link_control);
        assert!(dls[0].1.read_permission_db);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn three_valued_where() {
    let mut db = turbulence_db();
    // S3 has NULL description: `description = 'x'` is UNKNOWN, excluded
    // from both the positive and negated queries.
    let a = db
        .execute("SELECT COUNT(*) FROM simulation WHERE description = 'zzz'")
        .unwrap();
    let b = db
        .execute("SELECT COUNT(*) FROM simulation WHERE NOT (description = 'zzz')")
        .unwrap();
    assert_eq!(a.scalar(), Some(&Value::Int(0)));
    assert_eq!(b.scalar(), Some(&Value::Int(2)));
    let c = db
        .execute("SELECT COUNT(*) FROM simulation WHERE description IS NULL")
        .unwrap();
    assert_eq!(c.scalar(), Some(&Value::Int(1)));
}

#[test]
fn in_between_queries() {
    let mut db = turbulence_db();
    let rs = db
        .execute("SELECT COUNT(*) FROM simulation WHERE simulation_key IN ('S1', 'S3')")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
    let rs = db
        .execute("SELECT COUNT(*) FROM simulation WHERE grid_size BETWEEN 200 AND 600")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
}

#[test]
fn qualified_wildcard_select() {
    let mut db = turbulence_db();
    let rs = db
        .execute(
            "SELECT a.* FROM simulation s JOIN author a ON s.author_key = a.author_key \
             WHERE s.simulation_key = 'S1'",
        )
        .unwrap();
    assert_eq!(rs.columns.len(), 4);
    assert_eq!(rs.rows[0][0], Value::Str("A1".into()));
}

#[test]
fn multi_statement_workflow() {
    // A QBE-ish session: search, browse via PK, count related files.
    let mut db = turbulence_db();
    let hits = db
        .execute("SELECT simulation_key FROM simulation WHERE title LIKE 'Channel%'")
        .unwrap();
    let key = hits.rows[0][0].clone();
    let files = db
        .execute_with_params(
            "SELECT file_name, file_size FROM result_file WHERE simulation_key = ? ORDER BY timestep",
            &[key],
        )
        .unwrap();
    assert_eq!(files.rows.len(), 2);
    assert_eq!(files.rows[0][0], Value::Str("t000.edf".into()));
}

#[test]
fn count_star_vs_count_col_with_nulls() {
    // author.email is NULL for A2; simulation.description is NULL for S3.
    let mut db = turbulence_db();
    let rs = db
        .execute("SELECT COUNT(*), COUNT(email) FROM author")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(2), "COUNT(*) counts rows");
    assert_eq!(
        rs.rows[0][1],
        Value::Int(1),
        "COUNT(col) must skip NULL values"
    );
    let rs = db
        .execute("SELECT COUNT(*), COUNT(description) FROM simulation")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(3));
    assert_eq!(rs.rows[0][1], Value::Int(2));
}

#[test]
fn count_col_with_nulls_per_group() {
    let mut db = turbulence_db();
    let rs = db
        .execute(
            "SELECT author_key, COUNT(*), COUNT(description) FROM simulation \
             GROUP BY author_key ORDER BY author_key",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    // A1 owns S1+S2 (both described); A2 owns S3 (NULL description).
    assert_eq!(rs.rows[0][1], Value::Int(2));
    assert_eq!(rs.rows[0][2], Value::Int(2));
    assert_eq!(rs.rows[1][1], Value::Int(1));
    assert_eq!(rs.rows[1][2], Value::Int(0));
}

#[test]
fn int_sum_within_range_stays_int() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE n (v BIGINT)").unwrap();
    db.execute("INSERT INTO n VALUES (9223372036854775806), (1)")
        .unwrap();
    let rs = db.execute("SELECT SUM(v) FROM n").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(i64::MAX)));
}

#[test]
fn int_sum_overflow_promotes_to_double() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE n (v BIGINT)").unwrap();
    db.execute("INSERT INTO n VALUES (9223372036854775807), (9223372036854775807)")
        .unwrap();
    let rs = db.execute("SELECT SUM(v) FROM n").unwrap();
    // Overflowing i64 must not wrap to -2: the aggregate promotes to
    // DOUBLE and returns the IEEE-754 approximation of 2^64 - 2.
    match rs.scalar() {
        Some(Value::Double(d)) => {
            assert!((d - 2.0 * i64::MAX as f64).abs() <= 4096.0, "got {d}");
        }
        other => panic!("expected Double, got {other:?}"),
    }
    // AVG over the same path also survives overflow.
    let rs = db.execute("SELECT AVG(v) FROM n").unwrap();
    match rs.scalar() {
        Some(Value::Double(d)) => {
            assert!((d - i64::MAX as f64).abs() <= 2048.0, "got {d}");
        }
        other => panic!("expected Double, got {other:?}"),
    }
}

#[test]
fn int_sum_negative_overflow_promotes_to_double() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE n (v BIGINT)").unwrap();
    db.execute("INSERT INTO n VALUES (-9223372036854775808), (-9223372036854775807)")
        .unwrap();
    let rs = db.execute("SELECT SUM(v) FROM n").unwrap();
    match rs.scalar() {
        Some(Value::Double(d)) => {
            assert!(*d < -1.8e19, "must not wrap positive: got {d}");
        }
        other => panic!("expected Double, got {other:?}"),
    }
}

#[test]
fn aggregates_over_empty_and_all_null_groups() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE n (k VARCHAR(5), v BIGINT)")
        .unwrap();
    // Global aggregates over an empty table: COUNT = 0, others NULL.
    let rs = db
        .execute("SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM n")
        .unwrap();
    assert_eq!(
        rs.rows[0],
        vec![
            Value::Int(0),
            Value::Int(0),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null
        ]
    );
    // A group whose values are all NULL behaves the same way, except
    // COUNT(*) still counts its rows.
    db.execute("INSERT INTO n VALUES ('g', NULL), ('g', NULL)")
        .unwrap();
    let rs = db
        .execute("SELECT k, COUNT(*), COUNT(v), SUM(v), AVG(v) FROM n GROUP BY k")
        .unwrap();
    assert_eq!(
        rs.rows[0],
        vec![
            Value::Str("g".into()),
            Value::Int(2),
            Value::Int(0),
            Value::Null,
            Value::Null
        ]
    );
}
