//! MVCC snapshot isolation, group-commit WAL, and crash recovery.
//!
//! The paper's archive hub mediates every statement, so browse/scan
//! queries must not block behind metadata ingest. These tests pin the
//! semantics that make that safe: snapshot reads are repeatable while
//! writers commit, first committer wins on write-write conflicts,
//! vacuum only reclaims behind the oldest open snapshot, a group-commit
//! window turns N committers into one sync, and replay after a torn
//! group-commit tail recovers exactly the committed prefix.

use std::collections::BTreeMap;

use easia_db::{Database, Value};
use proptest::prelude::*;

fn mk(db: &mut Database) {
    db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)")
        .unwrap();
}

fn keys(db: &Database, rs: &easia_db::ResultSet) -> Vec<i64> {
    let _ = db;
    rs.rows
        .iter()
        .map(|r| match &r[0] {
            Value::Int(k) => *k,
            other => panic!("non-integer key {other:?}"),
        })
        .collect()
}

#[test]
fn snapshot_reads_are_pinned_while_writers_commit() {
    let mut db = Database::new_in_memory();
    mk(&mut db);
    db.execute("INSERT INTO T VALUES (1, 10)").unwrap();
    db.execute("INSERT INTO T VALUES (2, 20)").unwrap();

    let snap = db.begin_snapshot();

    // A logically concurrent writer inserts, updates, and deletes.
    let w = db.begin_txn();
    db.txn_execute(w, "INSERT INTO T VALUES (3, 30)", &[])
        .unwrap();
    db.txn_execute(w, "UPDATE T SET V = 11 WHERE K = 1", &[])
        .unwrap();
    db.txn_execute(w, "DELETE FROM T WHERE K = 2", &[]).unwrap();
    db.commit_txn(w).unwrap();

    // The snapshot still sees the pre-write world...
    let rs = db
        .snapshot_query(snap, "SELECT K, V FROM T ORDER BY K", &[])
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
        ]
    );
    // ...while latest reads see the committed writer.
    let rs = db.execute("SELECT K, V FROM T ORDER BY K").unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(1), Value::Int(11)],
            vec![Value::Int(3), Value::Int(30)],
        ]
    );

    assert!(db.release_snapshot(snap));
    assert!(!db.release_snapshot(snap), "double release must fail");
}

#[test]
fn first_committer_wins_on_write_conflicts() {
    let mut db = Database::new_in_memory();
    mk(&mut db);
    db.execute("INSERT INTO T VALUES (1, 10)").unwrap();

    let a = db.begin_txn();
    let b = db.begin_txn();
    db.txn_execute(a, "UPDATE T SET V = 100 WHERE K = 1", &[])
        .unwrap();
    // B touches the same row while A's update is in flight.
    let err = db
        .txn_execute(b, "UPDATE T SET V = 200 WHERE K = 1", &[])
        .unwrap_err();
    assert!(
        err.to_string().contains("write conflict"),
        "expected write conflict, got: {err}"
    );
    db.commit_txn(a).unwrap();
    db.rollback_txn(b).unwrap();

    let rs = db.execute("SELECT V FROM T WHERE K = 1").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(100)));
}

#[test]
fn vacuum_respects_the_snapshot_horizon() {
    let mut db = Database::new_in_memory();
    mk(&mut db);
    db.execute("INSERT INTO T VALUES (1, 10)").unwrap();

    let snap = db.begin_snapshot();
    db.execute("DELETE FROM T WHERE K = 1").unwrap();

    // The dead version is invisible to latest readers but still pinned
    // physically for the snapshot.
    assert_eq!(db.execute("SELECT K FROM T").unwrap().rows.len(), 0);
    assert_eq!(
        db.snapshot_query(snap, "SELECT K FROM T", &[])
            .unwrap()
            .rows
            .len(),
        1
    );
    let stats = db.vacuum();
    assert_eq!(stats.versions_removed, 0, "snapshot pins the horizon");
    assert_eq!(db.table("T").unwrap().heap.len(), 1);

    // Releasing the last snapshot auto-vacuums the dead version away.
    db.release_snapshot(snap);
    assert_eq!(db.table("T").unwrap().heap.len(), 0);
}

#[test]
fn group_commit_batches_n_committers_into_one_sync() {
    let mut db = Database::new_in_memory();
    mk(&mut db);

    // Ablation: three solo committers cost three syncs.
    let before = db.wal_syncs();
    for k in 0..3 {
        let t = db.begin_txn();
        db.txn_execute(t, &format!("INSERT INTO T VALUES ({k}, 0)"), &[])
            .unwrap();
        db.commit_txn(t).unwrap();
    }
    assert_eq!(db.wal_syncs() - before, 3);

    // Group window: three committers share one sync.
    let txns: Vec<_> = (10..13)
        .map(|k| {
            let t = db.begin_txn();
            db.txn_execute(t, &format!("INSERT INTO T VALUES ({k}, 0)"), &[])
                .unwrap();
            t
        })
        .collect();
    let before = db.wal_syncs();
    db.begin_commit_window();
    let mut csns = Vec::new();
    for t in txns {
        csns.push(db.commit_txn(t).unwrap());
    }
    assert_eq!(db.end_commit_window().unwrap(), 3);
    assert_eq!(db.wal_syncs() - before, 1, "one sync for the whole batch");
    assert!(csns.windows(2).all(|w| w[0] < w[1]), "CSN order pinned");

    // An empty window costs nothing.
    let before = db.wal_syncs();
    db.begin_commit_window();
    assert_eq!(db.end_commit_window().unwrap(), 0);
    assert_eq!(db.wal_syncs() - before, 0);

    assert_eq!(db.execute("SELECT K FROM T").unwrap().rows.len(), 6);
}

#[test]
fn crash_mid_group_commit_recovers_the_committed_prefix() {
    let dir = std::env::temp_dir().join(format!("easia-db-mvcc-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    {
        let mut db = Database::open(&dir).unwrap();
        mk(&mut db);
        // Batch 1: fully durable.
        let a = db.begin_txn();
        let b = db.begin_txn();
        db.txn_execute(a, "INSERT INTO T VALUES (1, 10)", &[])
            .unwrap();
        db.txn_execute(b, "INSERT INTO T VALUES (2, 20)", &[])
            .unwrap();
        db.begin_commit_window();
        db.commit_txn(a).unwrap();
        db.commit_txn(b).unwrap();
        assert_eq!(db.end_commit_window().unwrap(), 2);
        // Batch 2: the crash will tear off its tail mid-flush.
        let c = db.begin_txn();
        let d = db.begin_txn();
        db.txn_execute(c, "INSERT INTO T VALUES (3, 30)", &[])
            .unwrap();
        db.txn_execute(d, "INSERT INTO T VALUES (4, 40)", &[])
            .unwrap();
        db.begin_commit_window();
        db.commit_txn(c).unwrap();
        db.commit_txn(d).unwrap();
        db.end_commit_window().unwrap();
    }

    // Simulate the crash: chop bytes off the WAL tail so batch 2's
    // frame is incomplete. Group commit acknowledges c and d only after
    // the batch's single sync_data, so neither was ever reported
    // durable — recovery drops the torn batch *whole* (the
    // committed-batch-prefix invariant), never a partial batch.
    let wal = dir.join("wal.log");
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);

    {
        let mut db = Database::open(&dir).unwrap();
        let rs = db.execute("SELECT K FROM T ORDER BY K").unwrap();
        // Batch 1 only: the torn batch 2 (c and d) is dropped whole.
        assert_eq!(keys(&db, &rs), vec![1, 2]);

        // The recovered CSN counter continues past the replayed prefix:
        // a fresh commit must order after everything recovered.
        let before = db.last_csn();
        let t = db.begin_txn();
        db.txn_execute(t, "INSERT INTO T VALUES (5, 50)", &[])
            .unwrap();
        let csn = db.commit_txn(t).unwrap();
        assert!(csn > before);
        let rs = db.execute("SELECT K FROM T ORDER BY K").unwrap();
        assert_eq!(keys(&db, &rs), vec![1, 2, 5]);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

// ---- serial-oracle interleaving ----

/// One step of a randomized schedule of logically concurrent writers
/// and snapshot readers.
#[derive(Debug, Clone)]
enum Op {
    Begin,
    /// kind 0 = insert, 1 = update, 2 = delete.
    Write {
        w: usize,
        kind: u8,
        k: i64,
        v: i64,
    },
    Commit {
        w: usize,
    },
    Rollback {
        w: usize,
    },
    Snap,
    ReadSnap {
        s: usize,
    },
    ReleaseSnap {
        s: usize,
    },
    Vacuum,
    LatestRead,
}

/// A buffered write that succeeded against the engine; replayed into
/// the oracle map when its transaction commits.
#[derive(Debug, Clone)]
enum BufOp {
    Put(i64, i64),
    Del(i64),
}

/// Decode one raw generated tuple into an [`Op`]. The vendored
/// proptest stub has no `prop_oneof`/`prop_map`, so weighting lives in
/// the opcode ranges here (writes get the biggest share).
fn decode_op((opcode, slot, kind, k, v): (u8, u8, u8, i64, i64)) -> Op {
    let s = slot as usize % 3;
    match opcode % 24 {
        0 | 1 => Op::Begin,
        2..=9 => Op::Write {
            w: s,
            kind: kind % 3,
            k,
            v,
        },
        10..=13 => Op::Commit { w: s },
        14 => Op::Rollback { w: s },
        15 | 16 => Op::Snap,
        17..=19 => Op::ReadSnap { s },
        20 | 21 => Op::ReleaseSnap { s },
        22 => Op::Vacuum,
        _ => Op::LatestRead,
    }
}

fn oracle_rows(map: &BTreeMap<i64, i64>) -> Vec<Vec<Value>> {
    map.iter()
        .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)])
        .collect()
}

proptest! {
    /// Any interleaving of snapshot readers and committing writers
    /// yields reader rows identical to a serial oracle that applies
    /// each transaction's successful writes atomically at its commit
    /// point, and snapshot reads that are repeatable (pinned at the
    /// commit horizon when the snapshot was taken).
    #[test]
    fn interleaved_snapshots_match_serial_oracle(
        raw in proptest::collection::vec(
            (0u8..24, 0u8..3, 0u8..3, 0i64..8, 0i64..1000), 1..60)
    ) {
        let ops: Vec<Op> = raw.into_iter().map(decode_op).collect();
        let mut db = Database::new_in_memory();
        mk(&mut db);

        // Engine-side writer slots and their oracle-side write buffers.
        let mut writers: Vec<Option<(easia_db::TxnId, Vec<BufOp>)>> =
            vec![None, None, None];
        // Snapshot slots: engine snapshot id + the oracle state frozen
        // when the snapshot was taken.
        let mut snaps: Vec<Option<(easia_db::SnapshotId, BTreeMap<i64, i64>)>> =
            vec![None, None, None];
        // Serial oracle: the committed state.
        let mut committed: BTreeMap<i64, i64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Begin => {
                    if let Some(slot) = writers.iter_mut().find(|w| w.is_none()) {
                        *slot = Some((db.begin_txn(), Vec::new()));
                    }
                }
                Op::Write { w, kind, k, v } => {
                    let Some((t, buf)) = writers[w].as_mut() else { continue };
                    let t = *t;
                    let (sql, ok_buf): (String, BufOp) = match kind {
                        0 => (format!("INSERT INTO T VALUES ({k}, {v})"), BufOp::Put(k, v)),
                        1 => (format!("UPDATE T SET V = {v} WHERE K = {k}"), BufOp::Put(k, v)),
                        _ => (format!("DELETE FROM T WHERE K = {k}"), BufOp::Del(k)),
                    };
                    // Mirror outcomes: the engine decides (uniqueness,
                    // visibility, first-committer-wins); the oracle
                    // buffers exactly the writes the engine accepted.
                    match db.txn_execute(t, &sql, &[]) {
                        Ok(rs) if kind == 0 || rs.affected > 0 => buf.push(ok_buf),
                        Ok(_) => {}   // update/delete matched nothing
                        Err(_) => {}  // conflict or duplicate: rejected both sides
                    }
                }
                Op::Commit { w } => {
                    if let Some((t, buf)) = writers[w].take() {
                        db.commit_txn(t).unwrap();
                        // Serial point: apply the buffer atomically.
                        for b in buf {
                            match b {
                                BufOp::Put(k, v) => { committed.insert(k, v); }
                                BufOp::Del(k) => { committed.remove(&k); }
                            }
                        }
                    }
                }
                Op::Rollback { w } => {
                    if let Some((t, _)) = writers[w].take() {
                        db.rollback_txn(t).unwrap();
                    }
                }
                Op::Snap => {
                    if let Some(slot) = snaps.iter_mut().find(|s| s.is_none()) {
                        *slot = Some((db.begin_snapshot(), committed.clone()));
                    }
                }
                Op::ReadSnap { s } => {
                    let Some((snap, frozen)) = snaps[s].as_ref() else { continue };
                    let rs = db
                        .snapshot_query(*snap, "SELECT K, V FROM T ORDER BY K", &[])
                        .unwrap();
                    prop_assert_eq!(&rs.rows, &oracle_rows(frozen));
                }
                Op::ReleaseSnap { s } => {
                    if let Some((snap, _)) = snaps[s].take() {
                        prop_assert!(db.release_snapshot(snap));
                    }
                }
                Op::Vacuum => {
                    // Vacuum at arbitrary points must never disturb a
                    // snapshot or latest read (checked by later ops).
                    db.vacuum();
                }
                Op::LatestRead => {
                    // All writes go through API txns, so a latest read
                    // sees exactly the oracle's committed state.
                    let rs = db.execute("SELECT K, V FROM T ORDER BY K").unwrap();
                    prop_assert_eq!(&rs.rows, &oracle_rows(&committed));
                }
            }
        }

        // Drain: roll back in-flight writers, release snapshots, vacuum
        // to the clean steady state, and check the final image.
        for w in writers.iter_mut() {
            if let Some((t, _)) = w.take() {
                db.rollback_txn(t).unwrap();
            }
        }
        for s in snaps.iter_mut() {
            if let Some((snap, _)) = s.take() {
                db.release_snapshot(snap);
            }
        }
        db.vacuum();
        let rs = db.execute("SELECT K, V FROM T ORDER BY K").unwrap();
        prop_assert_eq!(&rs.rows, &oracle_rows(&committed));
        // Steady state: no snapshots, no txns, so the version map must
        // have been fully frozen/reclaimed and the heap holds exactly
        // the live rows.
        prop_assert_eq!(db.open_snapshots(), 0);
        prop_assert_eq!(db.active_txns(), 0);
        prop_assert_eq!(db.table("T").unwrap().heap.len(), committed.len());
    }
}
