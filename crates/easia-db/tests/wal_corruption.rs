//! Corruption-aware durability: bit-rot property test, quarantined
//! recovery, non-blocking checkpoints, lost-checkpoint behaviour, and
//! the scrub pass (ISSUE 9 / DESIGN.md §12).

use easia_db::txn::Wal;
use easia_db::{Database, DbError, DiskFault, DiskFaultInjector, Value};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("easia-walcorrupt-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Build a durable DB with a DDL batch plus `n` single-commit batches
/// (insert K=i), close it, and return the clean WAL image plus the
/// byte offset of every batch frame.
fn build_fixture(dir: &Path, n: usize) -> (Vec<u8>, Vec<u64>) {
    {
        let mut db = Database::open(dir).unwrap();
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)")
            .unwrap();
        for i in 0..n {
            let t = db.begin_txn();
            db.txn_execute(t, &format!("INSERT INTO T VALUES ({i}, {})", i * 10), &[])
                .unwrap();
            db.begin_commit_window();
            db.commit_txn(t).unwrap();
            db.end_commit_window().unwrap();
        }
    }
    let img = std::fs::read(dir.join("wal.log")).unwrap();
    let parse = Wal::parse(&img);
    assert!(parse.corruption.is_none());
    assert_eq!(parse.batches, n + 1, "ddl batch + {n} commit batches");
    let mut offsets = Vec::new();
    let mut pos = 8u64;
    for _ in 0..parse.batches {
        offsets.push(pos);
        let len =
            u32::from_le_bytes(img[pos as usize + 1..pos as usize + 5].try_into().unwrap()) as u64;
        pos += 13 + len;
    }
    assert_eq!(pos, img.len() as u64);
    (img, offsets)
}

fn keys(db: &mut Database) -> Result<Vec<i64>, DbError> {
    Ok(db
        .execute("SELECT K FROM T ORDER BY K")?
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Int(k) => *k,
            other => panic!("unexpected {other:?}"),
        })
        .collect())
}

proptest! {
    /// Satellite: flip any single bit at any offset in a multi-batch
    /// WAL. Recovery never panics, never replays a record at or past
    /// the damage, and either recovers a clean committed prefix or
    /// reports `WalCorrupt` with the right offset (the start of the
    /// damaged batch frame, or 0 for file-header damage).
    #[test]
    fn single_bit_rot_recovers_prefix_or_reports_corruption(
        raw_off in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let dir = temp_dir("prop");
        let (img, offsets) = build_fixture(&dir, 3);
        let flip = raw_off % img.len();
        let damaged_batch = offsets.iter().rposition(|&o| o as usize <= flip);
        // Expected damage attribution: the batch frame containing the
        // flipped byte, or offset 0 when the file magic itself rots.
        let want_offset = match damaged_batch {
            Some(i) => offsets[i],
            None => 0,
        };
        let mut inj = DiskFaultInjector::new(1);
        inj.apply(
            &dir.join("wal.log"),
            &DiskFault::BitRot { offset: flip as u64, bit },
        )
        .unwrap();

        // Strict open: a typed error naming the damaged frame.
        let err = Database::open(&dir).map(|_| ()).unwrap_err();
        match err {
            DbError::WalCorrupt { offset, .. } => {
                prop_assert_eq!(offset, want_offset);
            }
            other => return Err(TestCaseError::fail(format!(
                "expected WalCorrupt for flip at {flip}:{bit}, got {other:?}"
            ))),
        }

        // Salvage: exactly the batches strictly before the damage.
        let (mut db, report) = Database::open_recovering(&dir).unwrap();
        let c = report.corruption.as_ref().expect("corruption reported");
        prop_assert_eq!(c.offset, want_offset);
        prop_assert!(report.quarantined.as_ref().expect("quarantined").exists());
        match damaged_batch {
            None | Some(0) => {
                // DDL batch (or the file header) damaged: nothing at
                // all is replayable — the table must not exist.
                prop_assert!(db.execute("SELECT K FROM T").is_err());
                prop_assert_eq!(report.records_replayed, 0);
            }
            Some(i) => {
                // Batches 1..i are the commit batches that survive:
                // rows 0..i-1.
                let got = keys(&mut db).unwrap();
                let want: Vec<i64> = (0..i as i64 - 1).collect();
                prop_assert_eq!(got, want);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn checkpoint_runs_under_open_snapshots_and_transactions() {
    let dir = temp_dir("nonblocking");
    let mut db = Database::open(&dir).unwrap();
    db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)")
        .unwrap();
    db.execute("INSERT INTO T VALUES (1, 10)").unwrap();

    // An open snapshot pins an old read view; the checkpoint must not
    // refuse (ROADMAP follow-on from the group-commit PR) and must not
    // disturb the snapshot's repeatable reads.
    let snap = db.begin_snapshot();
    db.execute("INSERT INTO T VALUES (2, 20)").unwrap();
    db.checkpoint().expect("checkpoint under open snapshot");
    let rs = db.snapshot_query(snap, "SELECT K FROM T", &[]).unwrap();
    assert_eq!(rs.rows.len(), 1, "snapshot still sees only K=1");
    assert!(db.release_snapshot(snap));

    // An in-flight transaction's uncommitted row must not leak into the
    // checkpoint image (it commits — or rolls back — on its own later).
    let t = db.begin_txn();
    db.txn_execute(t, "INSERT INTO T VALUES (3, 30)", &[])
        .unwrap();
    db.checkpoint().expect("checkpoint under in-flight txn");
    db.rollback_txn(t).unwrap();

    // A transaction committing *after* the checkpoint reaches the fresh
    // WAL and survives restart on top of the snapshot image.
    let t = db.begin_txn();
    db.txn_execute(t, "INSERT INTO T VALUES (4, 40)", &[])
        .unwrap();
    db.commit_txn(t).unwrap();

    // Only an open commit window still refuses (its staged commits are
    // visible in memory but not yet synced: they would persist twice).
    db.begin_commit_window();
    assert!(matches!(db.checkpoint(), Err(DbError::Txn(_))));
    db.end_commit_window().unwrap();

    drop(db);
    let mut db = Database::open(&dir).unwrap();
    assert_eq!(
        keys(&mut db).unwrap(),
        vec![1, 2, 4],
        "committed rows survive; the rolled-back 3 never persisted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lost_checkpoint_file_is_a_typed_error_not_a_panic() {
    let dir = temp_dir("lost-snap");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)")
            .unwrap();
        db.execute("INSERT INTO T VALUES (1, 10)").unwrap();
        db.checkpoint().unwrap();
        // Post-checkpoint WAL traffic references tables that now live
        // only in the snapshot.
        db.execute("INSERT INTO T VALUES (2, 20)").unwrap();
    }
    let mut inj = DiskFaultInjector::new(2);
    inj.apply(&dir.join("snapshot.db"), &DiskFault::LoseFile)
        .unwrap();
    // Replay finds INSERTs into a table whose DDL vanished with the
    // snapshot: a typed storage error, never a panic.
    let err = Database::open(&dir).map(|_| ()).unwrap_err();
    assert!(matches!(err, DbError::Storage(_)), "{err:?}");
    let err2 = Database::open_recovering(&dir).map(|_| ()).unwrap_err();
    assert!(matches!(err2, DbError::Storage(_)), "{err2:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rotted_snapshot_is_refused_by_its_crc() {
    let dir = temp_dir("rot-snap");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)")
            .unwrap();
        db.execute("INSERT INTO T VALUES (1, 10)").unwrap();
        db.checkpoint().unwrap();
    }
    let snap = dir.join("snapshot.db");
    let len = std::fs::metadata(&snap).unwrap().len();
    let mut inj = DiskFaultInjector::new(3);
    // Flip a bit in the body (past the 12-byte header).
    inj.apply(
        &snap,
        &DiskFault::BitRot {
            offset: len - 9,
            bit: 2,
        },
    )
    .unwrap();
    let err = Database::open(&dir).map(|_| ()).unwrap_err();
    match err {
        DbError::Storage(m) => assert!(m.contains("checksum"), "{m}"),
        other => panic!("expected checksum refusal, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scrub_verifies_clean_stores_and_finds_rot() {
    let dir = temp_dir("scrub");
    let registry = easia_obs::Registry::new();
    {
        let mut db = Database::open(&dir).unwrap();
        db.attach_metrics(&registry);
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)")
            .unwrap();
        db.execute("INSERT INTO T VALUES (1, 10)").unwrap();
        db.checkpoint().unwrap();
        db.execute("INSERT INTO T VALUES (2, 20)").unwrap();

        // Clean store: everything behind the commit horizon verifies.
        let report = db.scrub().unwrap();
        assert!(report.snapshot_present && report.snapshot_verified);
        assert_eq!(report.wal_batches_verified, 1);
        assert!(report.wal_frames_verified >= 2);
        assert!(report.errors.is_empty(), "{report:?}");
        assert!(
            registry
                .value("easia_db_scrub_frames_verified_total", &[])
                .unwrap()
                >= 2.0
        );
        assert_eq!(
            registry.value("easia_db_scrub_errors_total", &[]).unwrap(),
            0.0
        );

        // Rot a WAL byte behind the horizon: scrub finds it and the
        // corruption counter records the detection.
        let wal = dir.join("wal.log");
        let len = std::fs::metadata(&wal).unwrap().len();
        let mut inj = DiskFaultInjector::new(4);
        inj.apply(
            &wal,
            &DiskFault::BitRot {
                offset: len - 3,
                bit: 7,
            },
        )
        .unwrap();
        let report = db.scrub().unwrap();
        assert_eq!(report.errors.len(), 1, "{report:?}");
        assert_eq!(report.errors[0].file, "wal.log");
        assert_eq!(
            registry.value("easia_db_scrub_errors_total", &[]).unwrap(),
            1.0
        );
        assert_eq!(
            registry
                .value("easia_db_wal_corruption_detected_total", &[])
                .unwrap(),
            1.0
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_corruption_count_folds_into_metrics_attached_later() {
    let dir = temp_dir("fold");
    let (img, offsets) = build_fixture(&dir, 2);
    let _ = img;
    let mut inj = DiskFaultInjector::new(5);
    inj.apply(
        &dir.join("wal.log"),
        &DiskFault::BitRot {
            offset: offsets[1] + 9,
            bit: 0,
        },
    )
    .unwrap();
    let (mut db, report) = Database::open_recovering(&dir).unwrap();
    assert!(report.corruption.is_some());
    // Metrics attach after recovery (the webapp order): the detection
    // made before attachment must still reach the counter.
    let registry = easia_obs::Registry::new();
    db.attach_metrics(&registry);
    assert_eq!(
        registry
            .value("easia_db_wal_corruption_detected_total", &[])
            .unwrap(),
        1.0
    );
    let _ = std::fs::remove_dir_all(&dir);
}
