//! HMAC-SHA-256 as specified by RFC 2104 / FIPS 198-1.

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Compute `HMAC-SHA-256(key, message)`.
///
/// Keys longer than the SHA-256 block size (64 bytes) are first hashed, as
/// the standard requires; shorter keys are zero-padded.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finish();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finish()
}

/// Constant-time equality for MACs, so verification time does not leak the
/// position of the first mismatching byte.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    // Test vectors from RFC 4231.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2_short_key() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaa; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let mac = hmac_sha256(&key, msg);
        assert_eq!(
            hex(&mac),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn ct_eq_semantics() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
