//! URL-safe base64 (RFC 4648 section 5), without padding.
//!
//! Access tokens travel inside hyperlink URLs of the form
//! `http://host/filesystem/directory/access_token;filename`, so the
//! alphabet must be URL-safe and free of `=` padding.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Encode `data` as unpadded URL-safe base64.
pub fn encode_url(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    let mut chunks = data.chunks_exact(3);
    for c in &mut chunks {
        let n = (u32::from(c[0]) << 16) | (u32::from(c[1]) << 8) | u32::from(c[2]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(ALPHABET[(n >> 6) as usize & 63] as char);
        out.push(ALPHABET[n as usize & 63] as char);
    }
    match chunks.remainder() {
        [] => {}
        [a] => {
            let n = u32::from(*a) << 16;
            out.push(ALPHABET[(n >> 18) as usize & 63] as char);
            out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        }
        [a, b] => {
            let n = (u32::from(*a) << 16) | (u32::from(*b) << 8);
            out.push(ALPHABET[(n >> 18) as usize & 63] as char);
            out.push(ALPHABET[(n >> 12) as usize & 63] as char);
            out.push(ALPHABET[(n >> 6) as usize & 63] as char);
        }
        _ => unreachable!("chunks_exact(3) remainder is at most 2 bytes"),
    }
    out
}

fn decode_char(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'-' => Some(62),
        b'_' => Some(63),
        _ => None,
    }
}

/// Decode unpadded URL-safe base64. Returns `None` on any invalid
/// character, stray `=`, or an impossible length (`len % 4 == 1`).
pub fn decode_url(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    if bytes.len() % 4 == 1 {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() * 3 / 4);
    let mut iter = bytes.chunks(4);
    for group in &mut iter {
        let mut vals = [0u8; 4];
        for (i, &c) in group.iter().enumerate() {
            vals[i] = decode_char(c)?;
        }
        match group.len() {
            4 => {
                let n = (u32::from(vals[0]) << 18)
                    | (u32::from(vals[1]) << 12)
                    | (u32::from(vals[2]) << 6)
                    | u32::from(vals[3]);
                out.push((n >> 16) as u8);
                out.push((n >> 8) as u8);
                out.push(n as u8);
            }
            3 => {
                let n = (u32::from(vals[0]) << 18)
                    | (u32::from(vals[1]) << 12)
                    | (u32::from(vals[2]) << 6);
                out.push((n >> 16) as u8);
                out.push((n >> 8) as u8);
                // Reject non-canonical encodings with dangling bits set.
                if n & 0xff != 0 {
                    return None;
                }
            }
            2 => {
                let n = (u32::from(vals[0]) << 18) | (u32::from(vals[1]) << 12);
                out.push((n >> 16) as u8);
                if n & 0xffff != 0 {
                    return None;
                }
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode_url(b""), "");
        assert_eq!(encode_url(b"f"), "Zg");
        assert_eq!(encode_url(b"fo"), "Zm8");
        assert_eq!(encode_url(b"foo"), "Zm9v");
        assert_eq!(encode_url(b"foob"), "Zm9vYg");
        assert_eq!(encode_url(b"fooba"), "Zm9vYmE");
        assert_eq!(encode_url(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn url_safe_alphabet() {
        // 0xfb 0xff 0xbf encodes to characters from the -_ range.
        let s = encode_url(&[0xfb, 0xff, 0xbf]);
        assert_eq!(s, "-_-_");
        assert_eq!(decode_url(&s).unwrap(), vec![0xfb, 0xff, 0xbf]);
    }

    #[test]
    fn round_trip_all_lengths() {
        for len in 0..70usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let enc = encode_url(&data);
            assert!(enc.bytes().all(|c| decode_char(c).is_some()));
            assert_eq!(decode_url(&enc).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn rejects_invalid() {
        assert!(decode_url("a").is_none(), "length 1 mod 4");
        assert!(decode_url("ab=c").is_none(), "padding char");
        assert!(decode_url("a b").is_none(), "space");
        assert!(decode_url("Zh").is_none(), "non-canonical dangling bits");
    }
}
