//! Expiring, HMAC-authenticated file access tokens.
//!
//! The SQL/MED `READ PERMISSION DB` option means a DATALINKed file "can only
//! be accessed using an encrypted file access token, obtained from the
//! database by users with the correct database privileges". An SQL `SELECT`
//! retrieves `http://host/filesystem/directory/access_token;filename`, and
//! the file server honours `access_token;filename` only while the token is
//! valid: "the access tokens have a finite life determined by a database
//! configuration parameter".
//!
//! A token binds together:
//! * the *scope* (read or write — SQL/MED also defines `WRITE PERMISSION`),
//! * the *host* of the file server,
//! * the *path* of the file on that server,
//! * an *expiry instant* in seconds of archive time.
//!
//! The wire format is `base64url(payload || HMAC-SHA256(key, payload))`
//! with a 16-byte truncated MAC; everything is covered by the MAC, so a
//! token for one file cannot be replayed against another, and expiry cannot
//! be extended by the client.

use crate::base64::{decode_url, encode_url};
use crate::hmac::{ct_eq, hmac_sha256};

/// Length to which the HMAC is truncated in the wire format (128 bits).
const MAC_LEN: usize = 16;
/// Wire format version byte, bumped on incompatible layout changes.
const VERSION: u8 = 1;

/// What an access token authorises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenScope {
    /// Retrieve the file (READ PERMISSION DB).
    Read,
    /// Replace the file contents (WRITE PERMISSION ADMIN-style access).
    Write,
}

impl TokenScope {
    fn as_byte(self) -> u8 {
        match self {
            TokenScope::Read => b'R',
            TokenScope::Write => b'W',
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            b'R' => Some(TokenScope::Read),
            b'W' => Some(TokenScope::Write),
            _ => None,
        }
    }
}

/// A decoded (but not necessarily valid) access token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessToken {
    /// Scope of the grant.
    pub scope: TokenScope,
    /// File server host the grant applies to, e.g. `fs1.soton.example`.
    pub host: String,
    /// Path of the file on the file server, e.g. `/data/run42/t010.edf`.
    pub path: String,
    /// Archive time (seconds) after which the token is no longer honoured.
    pub expires_at: u64,
}

/// Why token verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenError {
    /// Not decodable base64 / truncated / bad version byte.
    Malformed,
    /// MAC mismatch: forged, or signed with a different key.
    BadSignature,
    /// Structurally valid but past its expiry instant.
    Expired {
        /// The expiry carried by the token.
        expires_at: u64,
        /// The verification-time clock value.
        now: u64,
    },
    /// Valid token, but presented for a different host/path/scope.
    ScopeMismatch,
}

impl std::fmt::Display for TokenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenError::Malformed => write!(f, "malformed access token"),
            TokenError::BadSignature => write!(f, "access token signature invalid"),
            TokenError::Expired { expires_at, now } => {
                write!(f, "access token expired at t={expires_at}s (now t={now}s)")
            }
            TokenError::ScopeMismatch => {
                write!(f, "access token does not cover the requested file or scope")
            }
        }
    }
}

impl std::error::Error for TokenError {}

/// Issues and verifies tokens with a shared secret key.
///
/// In the paper's deployment the database server issues tokens and each
/// file server verifies them; both sides are configured with the key when
/// the file server is registered with the archive.
#[derive(Clone)]
pub struct TokenIssuer {
    key: Vec<u8>,
    /// Token lifetime in seconds — the paper's "database configuration
    /// parameter" controlling token expiry.
    ttl_secs: u64,
}

impl TokenIssuer {
    /// Create an issuer with the given shared secret and token lifetime.
    pub fn new(key: &[u8], ttl_secs: u64) -> Self {
        TokenIssuer {
            key: key.to_vec(),
            ttl_secs,
        }
    }

    /// The configured token lifetime in seconds.
    pub fn ttl_secs(&self) -> u64 {
        self.ttl_secs
    }

    /// Issue a token for `path` on `host`, valid from `now` for the
    /// configured lifetime. Returns the URL-safe token string.
    pub fn issue(&self, scope: TokenScope, host: &str, path: &str, now: u64) -> String {
        let expires_at = now.saturating_add(self.ttl_secs);
        self.issue_until(scope, host, path, expires_at)
    }

    /// Issue a token with an explicit expiry instant.
    pub fn issue_until(
        &self,
        scope: TokenScope,
        host: &str,
        path: &str,
        expires_at: u64,
    ) -> String {
        let payload = encode_payload(scope, host, path, expires_at);
        let mac = hmac_sha256(&self.key, &payload);
        let mut wire = payload;
        wire.extend_from_slice(&mac[..MAC_LEN]);
        encode_url(&wire)
    }

    /// Decode and authenticate a token string, without checking expiry or
    /// binding. Most callers want [`TokenIssuer::verify`].
    pub fn decode(&self, token: &str) -> Result<AccessToken, TokenError> {
        let wire = decode_url(token).ok_or(TokenError::Malformed)?;
        if wire.len() < MAC_LEN + 1 {
            return Err(TokenError::Malformed);
        }
        let (payload, mac) = wire.split_at(wire.len() - MAC_LEN);
        let expect = hmac_sha256(&self.key, payload);
        if !ct_eq(mac, &expect[..MAC_LEN]) {
            return Err(TokenError::BadSignature);
        }
        decode_payload(payload).ok_or(TokenError::Malformed)
    }

    /// Full verification: authenticate, check the token covers
    /// `(scope, host, path)`, and check it has not expired at `now`.
    pub fn verify(
        &self,
        token: &str,
        scope: TokenScope,
        host: &str,
        path: &str,
        now: u64,
    ) -> Result<AccessToken, TokenError> {
        let t = self.decode(token)?;
        if t.scope != scope || t.host != host || t.path != path {
            return Err(TokenError::ScopeMismatch);
        }
        if now > t.expires_at {
            return Err(TokenError::Expired {
                expires_at: t.expires_at,
                now,
            });
        }
        Ok(t)
    }
}

fn encode_payload(scope: TokenScope, host: &str, path: &str, expires_at: u64) -> Vec<u8> {
    let mut p = Vec::with_capacity(12 + host.len() + path.len());
    p.push(VERSION);
    p.push(scope.as_byte());
    p.extend_from_slice(&expires_at.to_be_bytes());
    p.extend_from_slice(&(host.len() as u16).to_be_bytes());
    p.extend_from_slice(host.as_bytes());
    p.extend_from_slice(path.as_bytes());
    p
}

fn decode_payload(p: &[u8]) -> Option<AccessToken> {
    if p.len() < 12 || p[0] != VERSION {
        return None;
    }
    let scope = TokenScope::from_byte(p[1])?;
    let expires_at = u64::from_be_bytes(p[2..10].try_into().ok()?);
    let host_len = u16::from_be_bytes([p[10], p[11]]) as usize;
    if p.len() < 12 + host_len {
        return None;
    }
    let host = std::str::from_utf8(&p[12..12 + host_len]).ok()?.to_string();
    let path = std::str::from_utf8(&p[12 + host_len..]).ok()?.to_string();
    Some(AccessToken {
        scope,
        host,
        path,
        expires_at,
    })
}

/// Split the paper's `access_token;filename` form into its two halves.
///
/// Returns `None` when no `;` separator is present (i.e. the request names
/// a bare file, which `READ PERMISSION DB` servers must refuse).
pub fn split_token_filename(s: &str) -> Option<(&str, &str)> {
    s.split_once(';')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issuer() -> TokenIssuer {
        TokenIssuer::new(b"archive-shared-secret", 3600)
    }

    #[test]
    fn round_trip() {
        let iss = issuer();
        let tok = iss.issue(TokenScope::Read, "fs1", "/data/t010.edf", 1000);
        let t = iss
            .verify(&tok, TokenScope::Read, "fs1", "/data/t010.edf", 2000)
            .unwrap();
        assert_eq!(t.expires_at, 4600);
        assert_eq!(t.host, "fs1");
        assert_eq!(t.path, "/data/t010.edf");
    }

    #[test]
    fn expires_after_ttl() {
        let iss = issuer();
        let tok = iss.issue(TokenScope::Read, "fs1", "/f", 1000);
        // Valid exactly at the expiry instant, invalid one second later.
        assert!(iss
            .verify(&tok, TokenScope::Read, "fs1", "/f", 4600)
            .is_ok());
        let err = iss
            .verify(&tok, TokenScope::Read, "fs1", "/f", 4601)
            .unwrap_err();
        assert_eq!(
            err,
            TokenError::Expired {
                expires_at: 4600,
                now: 4601
            }
        );
    }

    #[test]
    fn rejects_wrong_file() {
        let iss = issuer();
        let tok = iss.issue(TokenScope::Read, "fs1", "/data/a.edf", 0);
        let err = iss
            .verify(&tok, TokenScope::Read, "fs1", "/data/b.edf", 1)
            .unwrap_err();
        assert_eq!(err, TokenError::ScopeMismatch);
    }

    #[test]
    fn rejects_wrong_host() {
        let iss = issuer();
        let tok = iss.issue(TokenScope::Read, "fs1", "/f", 0);
        assert_eq!(
            iss.verify(&tok, TokenScope::Read, "fs2", "/f", 1)
                .unwrap_err(),
            TokenError::ScopeMismatch
        );
    }

    #[test]
    fn read_token_does_not_grant_write() {
        let iss = issuer();
        let tok = iss.issue(TokenScope::Read, "fs1", "/f", 0);
        assert_eq!(
            iss.verify(&tok, TokenScope::Write, "fs1", "/f", 1)
                .unwrap_err(),
            TokenError::ScopeMismatch
        );
    }

    #[test]
    fn rejects_other_key() {
        let iss = issuer();
        let other = TokenIssuer::new(b"different-secret", 3600);
        let tok = iss.issue(TokenScope::Read, "fs1", "/f", 0);
        assert_eq!(
            other
                .verify(&tok, TokenScope::Read, "fs1", "/f", 1)
                .unwrap_err(),
            TokenError::BadSignature
        );
    }

    #[test]
    fn rejects_tampered_expiry() {
        let iss = issuer();
        let tok = iss.issue(TokenScope::Read, "fs1", "/f", 0);
        let mut wire = crate::base64::decode_url(&tok).unwrap();
        // Flip a bit in the expiry field; the MAC must catch it.
        wire[5] ^= 0x40;
        let forged = crate::base64::encode_url(&wire);
        assert_eq!(
            iss.verify(&forged, TokenScope::Read, "fs1", "/f", 1)
                .unwrap_err(),
            TokenError::BadSignature
        );
    }

    #[test]
    fn rejects_garbage() {
        let iss = issuer();
        assert_eq!(
            iss.verify("not-base64!!", TokenScope::Read, "h", "/f", 0)
                .unwrap_err(),
            TokenError::Malformed
        );
        assert_eq!(
            iss.verify("Zm9v", TokenScope::Read, "h", "/f", 0)
                .unwrap_err(),
            TokenError::Malformed
        );
    }

    #[test]
    fn token_filename_split() {
        assert_eq!(
            split_token_filename("TOK123;t010.edf"),
            Some(("TOK123", "t010.edf"))
        );
        assert_eq!(split_token_filename("plain.edf"), None);
    }

    #[test]
    fn tokens_are_url_safe() {
        let iss = issuer();
        for i in 0..50 {
            let tok = iss.issue(TokenScope::Read, "host", &format!("/file-{i}"), i);
            assert!(tok
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'));
        }
    }
}
