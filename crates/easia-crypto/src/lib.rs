//! Cryptographic primitives for the EASIA reproduction.
//!
//! The paper's SQL/MED `READ PERMISSION DB` DATALINK option requires that
//! files on remote file servers "can only be accessed using an encrypted
//! file access token, obtained from the database by users with the correct
//! database privileges", and that "access tokens have a finite life
//! determined by a database configuration parameter".
//!
//! This crate provides everything that token scheme needs, implemented from
//! scratch so the workspace has no external crypto dependency:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (validated against the standard test
//!   vectors),
//! * [`hmac`] — RFC 2104 HMAC-SHA-256 (validated against RFC 4231 vectors),
//! * [`base64`] — URL-safe base64 without padding, used to embed tokens in
//!   hyperlinks,
//! * [`token`] — the expiring, HMAC-authenticated file access token issued
//!   by the database on `SELECT` of a DATALINK value and verified by the
//!   file server before releasing the file.
//!
//! These implementations are for reproducing the paper's observable
//! behaviour. They follow the standards and pass the published vectors, but
//! no side-channel hardening has been attempted; do not reuse them as a
//! general-purpose security library.

pub mod base64;
pub mod hmac;
pub mod sha256;
pub mod token;

pub use base64::{decode_url as base64_decode, encode_url as base64_encode};
pub use hmac::hmac_sha256;
pub use sha256::{sha256, Sha256};
pub use token::{AccessToken, TokenError, TokenIssuer, TokenScope};
