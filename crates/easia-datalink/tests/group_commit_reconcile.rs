//! WAL crash recovery composed with DLFM `reconcile()`.
//!
//! A crash mid-group-commit can leave the hub catalog and the file
//! servers' DLFMs disagreeing: the file-server side of a DATALINK
//! commit fires when the transaction commits, but the catalog row only
//! survives if its WAL batch made it to disk intact. Replay recovers
//! exactly the batched committed prefix; `reconcile()` then releases
//! the file-server links whose catalog rows were torn away, restoring
//! full agreement.

use std::cell::RefCell;
use std::rc::Rc;

use easia_crypto::TokenIssuer;
use easia_datalink::{ArchiveClock, DataLinkManager};
use easia_db::{Database, Value};
use easia_fs::{FileContent, FileServer, LinkState};

const RESULT_FILE_DDL: &str = "CREATE TABLE result_file (
    file_name VARCHAR(100) PRIMARY KEY,
    download_result DATALINK LINKTYPE URL FILE LINK CONTROL
        INTEGRITY ALL READ PERMISSION DB WRITE PERMISSION BLOCKED
        RECOVERY YES ON UNLINK RESTORE
)";

#[test]
fn replay_after_torn_group_commit_then_reconcile_releases_orphans() {
    let dir = std::env::temp_dir().join(format!("easia-dl-group-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The file server and DLFM outlive the hub "crash": only the hub
    // database loses its WAL tail.
    let clock = ArchiveClock::new();
    let issuer = TokenIssuer::new(b"secret", 600);
    let mgr = DataLinkManager::new(issuer.clone(), clock);
    let fs1 = Rc::new(RefCell::new(FileServer::new("fs1", issuer)));
    fs1.borrow_mut()
        .ingest("/data/t0.edf", FileContent::Bytes(b"DATA0".to_vec()));
    fs1.borrow_mut()
        .ingest("/data/t1.edf", FileContent::Bytes(b"DATA1".to_vec()));
    mgr.register_server(fs1.clone());

    {
        let mut db = Database::open(&dir).unwrap();
        db.add_observer(mgr.clone());
        db.execute(RESULT_FILE_DDL).unwrap();

        // Batch 1: transaction A links t0. Fully durable.
        let a = db.begin_txn();
        db.txn_execute(
            a,
            "INSERT INTO result_file VALUES ('t0.edf', 'http://fs1/data/t0.edf')",
            &[],
        )
        .unwrap();
        db.begin_commit_window();
        db.commit_txn(a).unwrap();
        assert_eq!(db.end_commit_window().unwrap(), 1);

        // Batch 2: transaction C links t1. The DLFM side commits (the
        // observer fires at commit_txn), but the crash below tears this
        // batch off the WAL before it is fully on disk.
        let c = db.begin_txn();
        db.txn_execute(
            c,
            "INSERT INTO result_file VALUES ('t1.edf', 'http://fs1/data/t1.edf')",
            &[],
        )
        .unwrap();
        db.begin_commit_window();
        db.commit_txn(c).unwrap();
        db.end_commit_window().unwrap();

        assert!(matches!(
            fs1.borrow().link_state("/data/t1.edf"),
            Some(LinkState::Linked { .. })
        ));
    }

    // Crash: cut into batch 2's commit marker so replay drops it.
    let wal = dir.join("wal.log");
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);

    let mut db = Database::open(&dir).unwrap();
    db.add_observer(mgr.clone());

    // Replay recovered exactly the committed prefix: t0 only.
    let rs = db
        .execute("SELECT file_name FROM result_file ORDER BY file_name")
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Str("t0.edf".into())]]);
    // ...but the file server still holds both links: t1 is an orphan.
    assert!(fs1.borrow().link_state("/data/t1.edf").is_some());

    let report = mgr.reconcile(&mut db);
    assert_eq!(report.orphans_unlinked, vec!["fs1/data/t1.edf"]);
    assert!(report.relinked.is_empty(), "{report:?}");
    assert!(report.unrepairable.is_empty(), "{report:?}");
    // The orphaned file itself is kept (unlink releases control, it
    // does not delete data), and t0's link survives untouched.
    assert!(fs1.borrow().link_state("/data/t1.edf").is_none());
    assert!(matches!(
        fs1.borrow().link_state("/data/t0.edf"),
        Some(LinkState::Linked { .. })
    ));

    // Second pass: catalog and DLFM are back in full agreement.
    let again = mgr.reconcile(&mut db);
    assert!(again.in_agreement(), "{again:?}");
    assert_eq!(again.actions(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}
