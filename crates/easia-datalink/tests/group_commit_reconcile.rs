//! WAL crash recovery composed with DLFM `reconcile()`.
//!
//! A crash mid-group-commit can leave the hub catalog and the file
//! servers' DLFMs disagreeing: the file-server side of a DATALINK
//! commit fires when the transaction commits, but the catalog row only
//! survives if its WAL batch made it to disk intact. Replay recovers
//! exactly the batched committed prefix; `reconcile()` then releases
//! the file-server links whose catalog rows were torn away, restoring
//! full agreement.

use std::cell::RefCell;
use std::rc::Rc;

use easia_crypto::TokenIssuer;
use easia_datalink::{ArchiveClock, DataLinkManager};
use easia_db::{Database, DbError, DiskFault, DiskFaultInjector, Value};
use easia_fs::{FileContent, FileServer, LinkState};

const RESULT_FILE_DDL: &str = "CREATE TABLE result_file (
    file_name VARCHAR(100) PRIMARY KEY,
    download_result DATALINK LINKTYPE URL FILE LINK CONTROL
        INTEGRITY ALL READ PERMISSION DB WRITE PERMISSION BLOCKED
        RECOVERY YES ON UNLINK RESTORE
)";

#[test]
fn replay_after_torn_group_commit_then_reconcile_releases_orphans() {
    let dir = std::env::temp_dir().join(format!("easia-dl-group-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The file server and DLFM outlive the hub "crash": only the hub
    // database loses its WAL tail.
    let clock = ArchiveClock::new();
    let issuer = TokenIssuer::new(b"secret", 600);
    let mgr = DataLinkManager::new(issuer.clone(), clock);
    let fs1 = Rc::new(RefCell::new(FileServer::new("fs1", issuer)));
    fs1.borrow_mut()
        .ingest("/data/t0.edf", FileContent::Bytes(b"DATA0".to_vec()));
    fs1.borrow_mut()
        .ingest("/data/t1.edf", FileContent::Bytes(b"DATA1".to_vec()));
    mgr.register_server(fs1.clone());

    {
        let mut db = Database::open(&dir).unwrap();
        db.add_observer(mgr.clone());
        db.execute(RESULT_FILE_DDL).unwrap();

        // Batch 1: transaction A links t0. Fully durable.
        let a = db.begin_txn();
        db.txn_execute(
            a,
            "INSERT INTO result_file VALUES ('t0.edf', 'http://fs1/data/t0.edf')",
            &[],
        )
        .unwrap();
        db.begin_commit_window();
        db.commit_txn(a).unwrap();
        assert_eq!(db.end_commit_window().unwrap(), 1);

        // Batch 2: transaction C links t1. The DLFM side commits (the
        // observer fires at commit_txn), but the crash below tears this
        // batch off the WAL before it is fully on disk.
        let c = db.begin_txn();
        db.txn_execute(
            c,
            "INSERT INTO result_file VALUES ('t1.edf', 'http://fs1/data/t1.edf')",
            &[],
        )
        .unwrap();
        db.begin_commit_window();
        db.commit_txn(c).unwrap();
        db.end_commit_window().unwrap();

        assert!(matches!(
            fs1.borrow().link_state("/data/t1.edf"),
            Some(LinkState::Linked { .. })
        ));
    }

    // Crash: cut into batch 2's commit marker so replay drops it.
    let wal = dir.join("wal.log");
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);

    let mut db = Database::open(&dir).unwrap();
    db.add_observer(mgr.clone());

    // Replay recovered exactly the committed prefix: t0 only.
    let rs = db
        .execute("SELECT file_name FROM result_file ORDER BY file_name")
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Str("t0.edf".into())]]);
    // ...but the file server still holds both links: t1 is an orphan.
    assert!(fs1.borrow().link_state("/data/t1.edf").is_some());

    let report = mgr.reconcile(&mut db);
    assert_eq!(report.orphans_unlinked, vec!["fs1/data/t1.edf"]);
    assert!(report.relinked.is_empty(), "{report:?}");
    assert!(report.unrepairable.is_empty(), "{report:?}");
    // The orphaned file itself is kept (unlink releases control, it
    // does not delete data), and t0's link survives untouched.
    assert!(fs1.borrow().link_state("/data/t1.edf").is_none());
    assert!(matches!(
        fs1.borrow().link_state("/data/t0.edf"),
        Some(LinkState::Linked { .. })
    ));

    // Second pass: catalog and DLFM are back in full agreement.
    let again = mgr.reconcile(&mut db);
    assert!(again.in_agreement(), "{again:?}");
    assert_eq!(again.actions(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantined_corruption_then_reconcile_releases_orphans() {
    // Bit rot (not a torn tail) lands mid-WAL: batch 2 of 3 is damaged.
    // Strict open must refuse with a typed error; open_recovering must
    // salvage exactly batch 1, quarantine the log, and leave reconcile
    // to release every link whose catalog row fell past the damage —
    // including the *undamaged* batch 3, which sits past the corruption
    // horizon and must never be replayed.
    let dir = std::env::temp_dir().join(format!("easia-dl-quarantine-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let clock = ArchiveClock::new();
    let issuer = TokenIssuer::new(b"secret", 600);
    let mgr = DataLinkManager::new(issuer.clone(), clock);
    let fs1 = Rc::new(RefCell::new(FileServer::new("fs1", issuer)));
    for f in ["/data/t0.edf", "/data/t1.edf", "/data/t2.edf"] {
        fs1.borrow_mut()
            .ingest(f, FileContent::Bytes(b"DATA".to_vec()));
    }
    mgr.register_server(fs1.clone());

    let wal = dir.join("wal.log");
    {
        let mut db = Database::open(&dir).unwrap();
        db.add_observer(mgr.clone());
        db.execute(RESULT_FILE_DDL).unwrap();
        for name in ["t0.edf", "t1.edf", "t2.edf"] {
            let t = db.begin_txn();
            db.txn_execute(
                t,
                &format!("INSERT INTO result_file VALUES ('{name}', 'http://fs1/data/{name}')"),
                &[],
            )
            .unwrap();
            db.begin_commit_window();
            db.commit_txn(t).unwrap();
            db.end_commit_window().unwrap();
        }
    }

    // Locate batch 2 precisely: replay the batch boundaries from the
    // clean image, then flip one bit inside batch 2's payload.
    let img = std::fs::read(&wal).unwrap();
    let parse = easia_db::txn::Wal::parse(&img);
    assert!(parse.corruption.is_none());
    assert_eq!(parse.batches, 4, "ddl batch + three link batches");
    let mut offsets = Vec::new();
    let mut pos = 8u64; // past the file magic
    for _ in 0..parse.batches {
        offsets.push(pos);
        let len =
            u32::from_le_bytes(img[pos as usize + 1..pos as usize + 5].try_into().unwrap()) as u64;
        pos += 13 + len;
    }
    let damage_at = offsets[2] + 20; // inside batch 2's payload
    let mut inj = DiskFaultInjector::new(0xE16);
    inj.apply(
        &wal,
        &DiskFault::BitRot {
            offset: damage_at,
            bit: 4,
        },
    )
    .unwrap();

    // Strict open: typed refusal naming the damaged batch.
    let err = Database::open(&dir).map(|_| ()).unwrap_err();
    match err {
        DbError::WalCorrupt {
            offset,
            csn_horizon,
            ..
        } => {
            assert_eq!(offset, offsets[2]);
            assert_eq!(csn_horizon, 2, "clean prefix: ddl (csn 1) + t0 (csn 2)");
        }
        other => panic!("expected WalCorrupt, got {other:?}"),
    }

    // Salvage: clean prefix replayed, damaged log quarantined, salvage
    // checkpointed so it is durable without the quarantined bytes.
    let (mut db, report) = Database::open_recovering(&dir).unwrap();
    db.add_observer(mgr.clone());
    let c = report.corruption.as_ref().expect("corruption reported");
    assert_eq!(c.offset, offsets[2]);
    let q = report.quarantined.as_ref().expect("log quarantined");
    assert!(q.exists(), "damaged segment kept for forensics");
    let rs = db
        .execute("SELECT file_name FROM result_file ORDER BY file_name")
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Str("t0.edf".into())]]);

    // The file server still holds all three links; t1 (damaged batch)
    // and t2 (past the horizon) are orphans now.
    let rep = mgr.reconcile(&mut db);
    assert_eq!(
        rep.orphans_unlinked,
        vec!["fs1/data/t1.edf", "fs1/data/t2.edf"]
    );
    assert!(rep.unrepairable.is_empty(), "{rep:?}");
    let again = mgr.reconcile(&mut db);
    assert!(again.in_agreement(), "{again:?}");
    assert!(matches!(
        fs1.borrow().link_state("/data/t0.edf"),
        Some(LinkState::Linked { .. })
    ));

    // The salvage survives a clean restart (the post-quarantine
    // checkpoint made it durable): strict open now succeeds.
    drop(db);
    let mut db = Database::open(&dir).unwrap();
    let rs = db
        .execute("SELECT file_name FROM result_file ORDER BY file_name")
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Str("t0.edf".into())]]);

    let _ = std::fs::remove_dir_all(&dir);
}
