//! The SQL/MED `DL*` scalar functions.
//!
//! SQL/MED defines a family of scalar functions over DATALINK values;
//! EASIA's interface uses them to dissect URLs when rendering results.
//! [`register_dl_functions`] installs them into a database's function
//! registry:
//!
//! * `DLVALUE(url)` — construct a DATALINK value from a string,
//! * `DLURLCOMPLETE(dl)` — the complete URL string,
//! * `DLURLSERVER(dl)` — the host part,
//! * `DLURLPATH(dl)` — the path part (directory + filename),
//! * `DLURLPATHONLY(dl)` — the directory part,
//! * `DLURLSCHEME(dl)` — the scheme,
//! * `DLLINKTYPE(dl)` — always `'URL'` here,
//! * `DLFILENAME(dl)` — the filename (an EASIA convenience),
//! * `DLNEWCOPY(dl)` — a fresh DATALINK for the same URL (used after
//!   replacing file contents; here a value-level copy).

use crate::url::DatalinkUrl;
use easia_db::error::DbError;
use easia_db::expr::FnRegistry;
use easia_db::Value;

fn dl_arg(name: &str, args: &[Value]) -> Result<Option<DatalinkUrl>, DbError> {
    if args.len() != 1 {
        return Err(DbError::Eval(format!("{name} expects 1 argument")));
    }
    let url = match &args[0] {
        Value::Null => return Ok(None),
        Value::Datalink(u) | Value::Str(u) => u,
        other => {
            return Err(DbError::Eval(format!(
                "{name} expects a DATALINK, got {}",
                other.type_name()
            )))
        }
    };
    DatalinkUrl::parse(url)
        .map(Some)
        .map_err(|e| DbError::Eval(e.to_string()))
}

/// Install the `DL*` functions into `reg`.
pub fn register_dl_functions(reg: &mut FnRegistry) {
    reg.register("DLVALUE", |args| {
        if args.len() != 1 {
            return Err(DbError::Eval("DLVALUE expects 1 argument".into()));
        }
        match &args[0] {
            Value::Null => Ok(Value::Null),
            Value::Str(s) | Value::Datalink(s) => {
                // Validate eagerly so bad URLs fail at DLVALUE time.
                DatalinkUrl::parse(s).map_err(|e| DbError::Eval(e.to_string()))?;
                Ok(Value::Datalink(s.clone()))
            }
            other => Err(DbError::Eval(format!(
                "DLVALUE expects a string, got {}",
                other.type_name()
            ))),
        }
    });
    reg.register("DLURLCOMPLETE", |args| {
        Ok(match dl_arg("DLURLCOMPLETE", args)? {
            None => Value::Null,
            Some(u) => Value::Str(u.to_linked()),
        })
    });
    reg.register("DLURLSERVER", |args| {
        Ok(match dl_arg("DLURLSERVER", args)? {
            None => Value::Null,
            Some(u) => Value::Str(u.host),
        })
    });
    reg.register("DLURLPATH", |args| {
        Ok(match dl_arg("DLURLPATH", args)? {
            None => Value::Null,
            Some(u) => Value::Str(u.path),
        })
    });
    reg.register("DLURLPATHONLY", |args| {
        Ok(match dl_arg("DLURLPATHONLY", args)? {
            None => Value::Null,
            Some(u) => Value::Str(u.split_path().0.to_string()),
        })
    });
    reg.register("DLURLSCHEME", |args| {
        Ok(match dl_arg("DLURLSCHEME", args)? {
            None => Value::Null,
            Some(u) => Value::Str(u.scheme.to_uppercase()),
        })
    });
    reg.register("DLLINKTYPE", |args| {
        Ok(match dl_arg("DLLINKTYPE", args)? {
            None => Value::Null,
            Some(_) => Value::Str("URL".into()),
        })
    });
    reg.register("DLFILENAME", |args| {
        Ok(match dl_arg("DLFILENAME", args)? {
            None => Value::Null,
            Some(u) => Value::Str(u.filename().to_string()),
        })
    });
    reg.register("DLNEWCOPY", |args| {
        Ok(match dl_arg("DLNEWCOPY", args)? {
            None => Value::Null,
            Some(u) => Value::Datalink(u.to_linked()),
        })
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use easia_db::Database;

    fn db() -> Database {
        let mut db = Database::new_in_memory();
        register_dl_functions(db.functions_mut());
        db.execute("CREATE TABLE t (d DATALINK LINKTYPE URL NO FILE LINK CONTROL)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (DLVALUE('http://fs1.soton/data/S1/t000.edf'))")
            .unwrap();
        db
    }

    #[test]
    fn dlvalue_constructs_and_validates() {
        let mut db = db();
        let rs = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(1)));
        assert!(db
            .execute("INSERT INTO t VALUES (DLVALUE('not a url'))")
            .is_err());
    }

    #[test]
    fn url_dissection() {
        let mut db = db();
        let rs = db
            .execute(
                "SELECT DLURLSERVER(d), DLURLPATH(d), DLURLPATHONLY(d),
                        DLURLSCHEME(d), DLLINKTYPE(d), DLFILENAME(d), DLURLCOMPLETE(d)
                 FROM t",
            )
            .unwrap();
        assert_eq!(
            rs.rows[0],
            vec![
                Value::Str("fs1.soton".into()),
                Value::Str("/data/S1/t000.edf".into()),
                Value::Str("/data/S1/".into()),
                Value::Str("HTTP".into()),
                Value::Str("URL".into()),
                Value::Str("t000.edf".into()),
                Value::Str("http://fs1.soton/data/S1/t000.edf".into()),
            ]
        );
    }

    #[test]
    fn null_propagation() {
        let mut db = db();
        db.execute("INSERT INTO t VALUES (NULL)").unwrap();
        let rs = db
            .execute("SELECT COUNT(*) FROM t WHERE DLURLSERVER(d) IS NULL")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn dlnewcopy_round_trips() {
        let mut db = db();
        let rs = db.execute("SELECT DLNEWCOPY(d) FROM t").unwrap();
        assert_eq!(
            rs.rows[0][0],
            Value::Datalink("http://fs1.soton/data/S1/t000.edf".into())
        );
    }

    #[test]
    fn filtering_on_dl_functions() {
        let mut db = db();
        db.execute("INSERT INTO t VALUES (DLVALUE('http://fs2/data/x.edf'))")
            .unwrap();
        let rs = db
            .execute("SELECT DLFILENAME(d) FROM t WHERE DLURLSERVER(d) = 'fs2'")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Str("x.edf".into())]]);
    }
}
