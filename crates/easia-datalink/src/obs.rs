//! Datalink-manager telemetry: database-side counters for the SQL/MED
//! link protocol and the reconcile (crash-recovery) pass.
//!
//! These series describe the protocol as the *database* drives it —
//! prepares, commits, rollbacks, tokens — complementing the per-host
//! [`easia_fs::FsMetrics`] series that count what each file server
//! actually did. All counting is keyed to the simulated protocol, so
//! same-seed runs render byte-identical snapshots (see DESIGN.md,
//! "Observability").

use easia_obs::{Counter, Registry};

/// Datalink-manager counters.
#[derive(Clone)]
pub struct DlMetrics {
    /// Access tokens issued (SELECT splicing plus explicit issuance).
    pub tokens_issued: Counter,
    /// Link operations prepared on a file server by DML.
    pub link_prepares: Counter,
    /// Unlink operations prepared on a file server by DML.
    pub unlink_prepares: Counter,
    /// Transaction commits relayed to touched file servers.
    pub commits: Counter,
    /// Transaction rollbacks relayed to touched file servers.
    pub rollbacks: Counter,
    /// Reconcile passes run.
    pub reconcile_passes: Counter,
    /// Catalog datalink values examined across all passes.
    pub reconcile_checked: Counter,
    /// Reconcile repair actions, by kind.
    pub actions_relinked: Counter,
    /// See [`DlMetrics::actions_relinked`].
    pub actions_restored: Counter,
    /// See [`DlMetrics::actions_relinked`].
    pub actions_orphan_unlinked: Counter,
    /// See [`DlMetrics::actions_relinked`].
    pub actions_unrepairable: Counter,
    /// See [`DlMetrics::actions_relinked`].
    pub actions_skipped_down: Counter,
}

impl DlMetrics {
    /// Register the manager's series on `registry`.
    pub fn register(registry: &Registry) -> Self {
        let action = |kind: &str| {
            registry.counter_with(
                "easia_dlfm_reconcile_actions_total",
                "Reconcile repair actions, by kind.",
                &[("kind", kind)],
            )
        };
        DlMetrics {
            tokens_issued: registry.counter(
                "easia_dlfm_tokens_issued_total",
                "Access tokens issued for READ PERMISSION DB files.",
            ),
            link_prepares: registry.counter(
                "easia_dlfm_link_prepares_total",
                "Link operations prepared on file servers by DML.",
            ),
            unlink_prepares: registry.counter(
                "easia_dlfm_unlink_prepares_total",
                "Unlink operations prepared on file servers by DML.",
            ),
            commits: registry.counter(
                "easia_dlfm_commits_total",
                "Transaction commits relayed to touched file servers.",
            ),
            rollbacks: registry.counter(
                "easia_dlfm_rollbacks_total",
                "Transaction rollbacks relayed to touched file servers.",
            ),
            reconcile_passes: registry.counter(
                "easia_dlfm_reconcile_passes_total",
                "Catalog-vs-DLFM reconcile passes run.",
            ),
            reconcile_checked: registry.counter(
                "easia_dlfm_reconcile_checked_total",
                "Catalog datalink values examined by reconcile passes.",
            ),
            actions_relinked: action("relinked"),
            actions_restored: action("restored"),
            actions_orphan_unlinked: action("orphan_unlinked"),
            actions_unrepairable: action("unrepairable"),
            actions_skipped_down: action("skipped_down"),
        }
    }
}
