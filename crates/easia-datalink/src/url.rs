//! The DATALINK value grammar.
//!
//! Stored (linked) form:   `http://host/filesystem/directory/filename`
//! SELECT (token) form:    `http://host/filesystem/directory/token;filename`

use std::fmt;

/// A parsed DATALINK URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalinkUrl {
    /// URL scheme (the paper uses `http`; `file` also accepted).
    pub scheme: String,
    /// File server host (may include a port).
    pub host: String,
    /// Absolute path on that server, e.g. `/data/S1/t000.edf`.
    pub path: String,
}

/// Parse error with the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlError(pub String);

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed DATALINK URL: {}", self.0)
    }
}

impl std::error::Error for UrlError {}

impl DatalinkUrl {
    /// Parse a stored-form DATALINK URL.
    pub fn parse(url: &str) -> Result<DatalinkUrl, UrlError> {
        let rest = url
            .split_once("://")
            .ok_or_else(|| UrlError(url.to_string()))?;
        let (scheme, tail) = rest;
        if scheme.is_empty()
            || !scheme
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '+')
        {
            return Err(UrlError(url.to_string()));
        }
        let (host, path) = match tail.find('/') {
            Some(i) => (&tail[..i], &tail[i..]),
            None => return Err(UrlError(url.to_string())),
        };
        if host.is_empty() || path.len() < 2 {
            return Err(UrlError(url.to_string()));
        }
        Ok(DatalinkUrl {
            scheme: scheme.to_string(),
            host: host.to_string(),
            path: path.to_string(),
        })
    }

    /// The stored (linked) form.
    pub fn to_linked(&self) -> String {
        format!("{}://{}{}", self.scheme, self.host, self.path)
    }

    /// The SELECT form with an access token spliced before the filename:
    /// `http://host/dir/token;filename`.
    pub fn to_tokenized(&self, token: &str) -> String {
        let (dir, file) = self.split_path();
        format!("{}://{}{}{};{}", self.scheme, self.host, dir, token, file)
    }

    /// `(directory-with-trailing-slash, filename)`.
    pub fn split_path(&self) -> (&str, &str) {
        match self.path.rfind('/') {
            Some(i) => (&self.path[..i + 1], &self.path[i + 1..]),
            None => ("/", &self.path[..]),
        }
    }

    /// Filename component.
    pub fn filename(&self) -> &str {
        self.split_path().1
    }

    /// Parse a SELECT-form URL back into `(DatalinkUrl, Option<token>)`.
    pub fn parse_tokenized(url: &str) -> Result<(DatalinkUrl, Option<String>), UrlError> {
        let raw = DatalinkUrl::parse(url)?;
        let (dir, file) = raw.split_path();
        // In the token form the *last segment* is `token;filename`.
        match file.split_once(';') {
            Some((token, real_file)) => {
                let path = format!("{dir}{real_file}");
                Ok((
                    DatalinkUrl {
                        scheme: raw.scheme.clone(),
                        host: raw.host.clone(),
                        path,
                    },
                    Some(token.to_string()),
                ))
            }
            None => Ok((raw, None)),
        }
    }

    /// The file-server request string for the SELECT form:
    /// `/dir/token;filename`, or the bare path when no token is given.
    pub fn server_request(&self, token: Option<&str>) -> String {
        match token {
            Some(t) => {
                let (dir, file) = self.split_path();
                format!("{dir}{t};{file}")
            }
            None => self.path.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let u = DatalinkUrl::parse("http://fs1.soton.example/data/S1/t000.edf").unwrap();
        assert_eq!(u.scheme, "http");
        assert_eq!(u.host, "fs1.soton.example");
        assert_eq!(u.path, "/data/S1/t000.edf");
        assert_eq!(u.filename(), "t000.edf");
        assert_eq!(u.to_linked(), "http://fs1.soton.example/data/S1/t000.edf");
    }

    #[test]
    fn parse_with_port() {
        let u =
            DatalinkUrl::parse("http://quagga.ecs.soton.ac.uk:8080/servlet/SDBservlet").unwrap();
        assert_eq!(u.host, "quagga.ecs.soton.ac.uk:8080");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "http://",
            "nohost",
            "http://host",
            "://host/p",
            "ht tp://h/p",
        ] {
            assert!(DatalinkUrl::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn tokenized_form() {
        let u = DatalinkUrl::parse("http://fs1/data/t0.edf").unwrap();
        let t = u.to_tokenized("TOK123");
        assert_eq!(t, "http://fs1/data/TOK123;t0.edf");
        let (back, tok) = DatalinkUrl::parse_tokenized(&t).unwrap();
        assert_eq!(back, u);
        assert_eq!(tok.as_deref(), Some("TOK123"));
    }

    #[test]
    fn parse_tokenized_without_token() {
        let (u, tok) = DatalinkUrl::parse_tokenized("http://fs1/data/t0.edf").unwrap();
        assert_eq!(u.path, "/data/t0.edf");
        assert_eq!(tok, None);
    }

    #[test]
    fn server_request_forms() {
        let u = DatalinkUrl::parse("http://fs1/data/S1/t0.edf").unwrap();
        assert_eq!(u.server_request(None), "/data/S1/t0.edf");
        assert_eq!(u.server_request(Some("T")), "/data/S1/T;t0.edf");
    }

    #[test]
    fn root_level_file() {
        let u = DatalinkUrl::parse("http://fs1/t0.edf").unwrap();
        let (dir, file) = u.split_path();
        assert_eq!(dir, "/");
        assert_eq!(file, "t0.edf");
        assert_eq!(u.to_tokenized("T"), "http://fs1/T;t0.edf");
    }
}
