//! The [`DataLinkManager`]: the database-side coordinator of SQL/MED
//! link control across the archive's file servers.

use crate::obs::DlMetrics;
use crate::url::DatalinkUrl;
use easia_crypto::token::{TokenIssuer, TokenScope};
use easia_db::schema::DatalinkSpec;
use easia_db::{Database, DbError, LinkObserver, Value};
use easia_fs::dlfm::{LinkOptions, LinkState};
use easia_fs::FileServer;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Catalog expectations for one host: path -> (options, (table, column) owner).
type ExpectedLinks = BTreeMap<String, (LinkOptions, (String, String))>;

/// Shared archive clock (seconds). The simulation driver advances it; the
/// manager stamps token lifetimes from it, so token expiry follows
/// simulated time rather than wall time.
#[derive(Debug, Clone, Default)]
pub struct ArchiveClock(Rc<Cell<u64>>);

impl ArchiveClock {
    /// New clock at t=0.
    pub fn new() -> Self {
        ArchiveClock::default()
    }

    /// Current time in seconds.
    pub fn now(&self) -> u64 {
        self.0.get()
    }

    /// Set the time (monotonicity is the caller's responsibility).
    pub fn set(&self, t: u64) {
        self.0.set(t);
    }

    /// Advance by `dt` seconds.
    pub fn advance(&self, dt: u64) {
        self.0.set(self.0.get() + dt);
    }
}

fn to_link_options(spec: &DatalinkSpec) -> LinkOptions {
    LinkOptions {
        integrity_all: spec.integrity_all,
        read_permission_db: spec.read_permission_db,
        write_permission_blocked: spec.write_permission_blocked,
        recovery: spec.recovery,
        on_unlink_restore: spec.on_unlink_restore,
    }
}

/// Coordinates DATALINK DML across the archive's file servers and issues
/// access tokens on SELECT.
///
/// Register the manager with [`easia_db::Database::add_observer`]; it
/// implements [`LinkObserver`], so INSERT/UPDATE/DELETE on DATALINK
/// columns with `FILE LINK CONTROL` drive the two-phase link protocol on
/// the owning file server, and SELECT output is rewritten into the
/// token form for `READ PERMISSION DB` columns.
pub struct DataLinkManager {
    servers: RefCell<BTreeMap<String, Rc<RefCell<FileServer>>>>,
    issuer: TokenIssuer,
    clock: ArchiveClock,
    /// Hosts touched by the in-flight transaction, so commit/rollback
    /// reach exactly the servers with pending operations.
    touched: RefCell<Vec<String>>,
    /// Count of tokens issued (for experiments/statistics).
    tokens_issued: Cell<u64>,
    /// Protocol telemetry, attached by the archive builder.
    metrics: RefCell<Option<DlMetrics>>,
}

impl DataLinkManager {
    /// Create a manager signing tokens with `issuer` and timing them with
    /// `clock`.
    pub fn new(issuer: TokenIssuer, clock: ArchiveClock) -> Rc<Self> {
        Rc::new(DataLinkManager {
            servers: RefCell::new(BTreeMap::new()),
            issuer,
            clock,
            touched: RefCell::new(Vec::new()),
            tokens_issued: Cell::new(0),
            metrics: RefCell::new(None),
        })
    }

    /// Attach protocol telemetry on `registry`.
    pub fn attach_metrics(&self, registry: &easia_obs::Registry) {
        *self.metrics.borrow_mut() = Some(DlMetrics::register(registry));
    }

    fn with_metrics(&self, f: impl FnOnce(&DlMetrics)) {
        if let Some(m) = self.metrics.borrow().as_ref() {
            f(m);
        }
    }

    /// Register a file server under its host name.
    pub fn register_server(&self, server: Rc<RefCell<FileServer>>) {
        let host = server.borrow().host().to_string();
        self.servers.borrow_mut().insert(host, server);
    }

    /// Look up a registered server.
    pub fn server(&self, host: &str) -> Option<Rc<RefCell<FileServer>>> {
        self.servers.borrow().get(host).cloned()
    }

    /// Registered host names.
    pub fn hosts(&self) -> Vec<String> {
        self.servers.borrow().keys().cloned().collect()
    }

    /// The shared clock.
    pub fn clock(&self) -> &ArchiveClock {
        &self.clock
    }

    /// The token issuer (file servers verify with the same secret).
    pub fn issuer(&self) -> &TokenIssuer {
        &self.issuer
    }

    /// Number of access tokens issued so far.
    pub fn tokens_issued(&self) -> u64 {
        self.tokens_issued.get()
    }

    /// Issue a read token for an arbitrary `(host, path)` — used by the
    /// web layer for operation outputs.
    pub fn issue_read_token(&self, host: &str, path: &str) -> String {
        self.tokens_issued.set(self.tokens_issued.get() + 1);
        self.with_metrics(|m| m.tokens_issued.inc());
        self.issuer
            .issue(TokenScope::Read, host, path, self.clock.now())
    }

    fn touch(&self, host: &str) {
        let mut t = self.touched.borrow_mut();
        if !t.iter().any(|h| h == host) {
            t.push(host.to_string());
        }
    }

    /// Replay the database's datalink catalog against every registered
    /// file server's DLFM and repair divergence — the crash-recovery
    /// pass. Run it after restarting crashed servers (and with no
    /// transaction in flight): the catalog is the source of truth, so
    ///
    /// * a catalog entry with no matching DLFM link is re-established
    ///   (`relinked`; `restored` when the file content itself had to
    ///   come back from the `RECOVERY YES` backup area),
    /// * a DLFM link with no catalog entry is released as an orphan
    ///   (`orphans_unlinked`; the file is kept),
    /// * entries that cannot be repaired — unknown host, file gone with
    ///   no backup — are reported (`unrepairable`),
    /// * servers still down are skipped wholesale (`skipped_down`).
    pub fn reconcile(&self, db: &mut Database) -> ReconcileReport {
        let report = self.reconcile_inner(db);
        self.with_metrics(|m| {
            m.reconcile_passes.inc();
            m.reconcile_checked.add(report.checked as f64);
            m.actions_relinked.add(report.relinked.len() as f64);
            m.actions_restored.add(report.restored.len() as f64);
            m.actions_orphan_unlinked
                .add(report.orphans_unlinked.len() as f64);
            m.actions_unrepairable.add(report.unrepairable.len() as f64);
            m.actions_skipped_down.add(report.skipped_down.len() as f64);
        });
        report
    }

    fn reconcile_inner(&self, db: &mut Database) -> ReconcileReport {
        let mut report = ReconcileReport::default();

        // 1. Enumerate the catalog: every FILE LINK CONTROL datalink
        //    column, then its stored URLs.
        let columns: Vec<(String, String, DatalinkSpec)> = db
            .schemas()
            .flat_map(|s| {
                s.columns
                    .iter()
                    .filter_map(|c| {
                        c.datalink
                            .as_ref()
                            .filter(|d| d.file_link_control)
                            .map(|d| (s.name.clone(), c.name.clone(), d.clone()))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        // host -> path -> (options, owner)
        let mut expected: BTreeMap<String, ExpectedLinks> = BTreeMap::new();
        for (table, column, spec) in &columns {
            let rs = match db.execute(&format!("SELECT {column} FROM {table}")) {
                Ok(rs) => rs,
                Err(e) => {
                    report.unrepairable.push(format!("{table}.{column}: {e}"));
                    continue;
                }
            };
            for row in &rs.rows {
                let url = match &row[0] {
                    Value::Null => continue,
                    Value::Datalink(u) | Value::Str(u) => u,
                    other => {
                        report
                            .unrepairable
                            .push(format!("{table}.{column}: non-datalink value {other:?}"));
                        continue;
                    }
                };
                // READ PERMISSION DB columns render in token form;
                // parse_tokenized accepts both forms.
                let parsed = match DatalinkUrl::parse_tokenized(url) {
                    Ok((p, _token)) => p,
                    Err(e) => {
                        report.unrepairable.push(format!("{url}: {e}"));
                        continue;
                    }
                };
                report.checked += 1;
                expected.entry(parsed.host).or_default().insert(
                    parsed.path,
                    (to_link_options(spec), (table.clone(), column.clone())),
                );
            }
        }

        // 2. Walk every host named by the catalog or holding links.
        let mut hosts: Vec<String> = self.hosts();
        for h in expected.keys() {
            if !hosts.contains(h) {
                hosts.push(h.clone());
            }
        }
        for host in hosts {
            let Some(server) = self.server(&host) else {
                for path in expected.get(&host).map(|m| m.keys()).into_iter().flatten() {
                    report
                        .unrepairable
                        .push(format!("{host}{path}: unknown file server host"));
                }
                continue;
            };
            if server.borrow().is_crashed() {
                report.skipped_down.push(host.clone());
                continue;
            }
            let want = expected.remove(&host).unwrap_or_default();
            let have: Vec<(String, LinkState)> = server
                .borrow()
                .dlfm()
                .controlled_paths()
                .map(|(p, s)| (p.clone(), s.clone()))
                .collect();
            let have_linked: BTreeMap<&String, &LinkState> =
                have.iter().map(|(p, s)| (p, s)).collect();

            for (path, (options, owner)) in &want {
                let intact = matches!(
                    have_linked.get(path),
                    Some(LinkState::Linked { options: o, owner: w }) if o == options && w == owner
                ) && server.borrow().exists(path)
                    && (!options.recovery || server.borrow().has_backup(path));
                if intact {
                    continue; // catalog and DLFM agree; nothing to do
                }
                match server
                    .borrow_mut()
                    .recover_link(path, options.clone(), owner.clone())
                {
                    Ok(true) => report.restored.push(format!("{host}{path}")),
                    Ok(false) => report.relinked.push(format!("{host}{path}")),
                    Err(e) => report.unrepairable.push(format!("{host}{path}: {e}")),
                }
            }
            for (path, _) in &have {
                if !want.contains_key(path) {
                    match server.borrow_mut().recover_unlink(path) {
                        Ok(()) => report.orphans_unlinked.push(format!("{host}{path}")),
                        Err(e) => report.unrepairable.push(format!("{host}{path}: {e}")),
                    }
                }
            }
        }
        report
    }
}

/// Outcome of a [`DataLinkManager::reconcile`] pass. Entries are
/// `host/path` strings (and free-text diagnostics for `unrepairable`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReconcileReport {
    /// Catalog datalink values examined.
    pub checked: usize,
    /// Links re-established on a DLFM that had lost them (file intact).
    pub relinked: Vec<String>,
    /// Links re-established whose file content was restored from the
    /// `RECOVERY YES` backup area.
    pub restored: Vec<String>,
    /// DLFM links released because the catalog no longer references
    /// them (files kept).
    pub orphans_unlinked: Vec<String>,
    /// Divergence that could not be repaired, with diagnostics.
    pub unrepairable: Vec<String>,
    /// Hosts skipped because the server is still down.
    pub skipped_down: Vec<String>,
}

impl ReconcileReport {
    /// True when the pass found the catalog and every reachable DLFM in
    /// full agreement and nothing was skipped.
    pub fn in_agreement(&self) -> bool {
        self.relinked.is_empty()
            && self.restored.is_empty()
            && self.orphans_unlinked.is_empty()
            && self.unrepairable.is_empty()
            && self.skipped_down.is_empty()
    }

    /// Total repair actions taken or attempted.
    pub fn actions(&self) -> usize {
        self.relinked.len()
            + self.restored.len()
            + self.orphans_unlinked.len()
            + self.unrepairable.len()
    }
}

impl LinkObserver for DataLinkManager {
    fn on_link(
        &self,
        table: &str,
        column: &str,
        spec: &DatalinkSpec,
        url: &str,
    ) -> Result<(), DbError> {
        if !spec.file_link_control {
            return Ok(()); // NO FILE LINK CONTROL: plain URL storage
        }
        let parsed = DatalinkUrl::parse(url).map_err(|e| DbError::Link(e.to_string()))?;
        let server = self
            .server(&parsed.host)
            .ok_or_else(|| DbError::Link(format!("unknown file server host {}", parsed.host)))?;
        server
            .borrow_mut()
            .prepare_link(
                &parsed.path,
                to_link_options(spec),
                (table.to_string(), column.to_string()),
            )
            .map_err(|e| DbError::Link(e.to_string()))?;
        self.touch(&parsed.host);
        self.with_metrics(|m| m.link_prepares.inc());
        Ok(())
    }

    fn on_unlink(
        &self,
        _table: &str,
        _column: &str,
        spec: &DatalinkSpec,
        url: &str,
    ) -> Result<(), DbError> {
        if !spec.file_link_control {
            return Ok(());
        }
        let parsed = DatalinkUrl::parse(url).map_err(|e| DbError::Link(e.to_string()))?;
        let server = self
            .server(&parsed.host)
            .ok_or_else(|| DbError::Link(format!("unknown file server host {}", parsed.host)))?;
        server
            .borrow_mut()
            .prepare_unlink(&parsed.path)
            .map_err(|e| DbError::Link(e.to_string()))?;
        self.touch(&parsed.host);
        self.with_metrics(|m| m.unlink_prepares.inc());
        Ok(())
    }

    fn on_commit(&self) {
        for host in self.touched.borrow_mut().drain(..) {
            if let Some(server) = self.servers.borrow().get(&host) {
                server.borrow_mut().commit_links();
                self.with_metrics(|m| m.commits.inc());
            }
        }
    }

    fn on_rollback(&self) {
        for host in self.touched.borrow_mut().drain(..) {
            if let Some(server) = self.servers.borrow().get(&host) {
                server.borrow_mut().rollback_links();
                self.with_metrics(|m| m.rollbacks.inc());
            }
        }
    }

    fn render_datalink(&self, spec: &DatalinkSpec, url: &str) -> Option<String> {
        if !spec.read_permission_db || !spec.file_link_control {
            return None;
        }
        let parsed = DatalinkUrl::parse(url).ok()?;
        self.tokens_issued.set(self.tokens_issued.get() + 1);
        self.with_metrics(|m| m.tokens_issued.inc());
        let token = self.issuer.issue(
            TokenScope::Read,
            &parsed.host,
            &parsed.path,
            self.clock.now(),
        );
        Some(parsed.to_tokenized(&token))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easia_db::{Database, Value};
    use easia_fs::FileContent;

    fn setup() -> (
        Database,
        Rc<DataLinkManager>,
        Rc<RefCell<FileServer>>,
        ArchiveClock,
    ) {
        let clock = ArchiveClock::new();
        let issuer = TokenIssuer::new(b"secret", 600);
        let mgr = DataLinkManager::new(issuer.clone(), clock.clone());
        let fs1 = Rc::new(RefCell::new(FileServer::new("fs1", issuer)));
        fs1.borrow_mut()
            .ingest("/data/t0.edf", FileContent::Bytes(b"DATA0".to_vec()));
        fs1.borrow_mut()
            .ingest("/data/t1.edf", FileContent::Bytes(b"DATA1".to_vec()));
        mgr.register_server(fs1.clone());
        let mut db = Database::new_in_memory();
        db.add_observer(mgr.clone());
        db.execute(
            "CREATE TABLE result_file (
                file_name VARCHAR(100) PRIMARY KEY,
                download_result DATALINK LINKTYPE URL FILE LINK CONTROL
                    INTEGRITY ALL READ PERMISSION DB WRITE PERMISSION BLOCKED
                    RECOVERY YES ON UNLINK RESTORE
            )",
        )
        .unwrap();
        (db, mgr, fs1, clock)
    }

    #[test]
    fn insert_links_file() {
        let (mut db, _mgr, fs1, _clock) = setup();
        db.execute("INSERT INTO result_file VALUES ('t0.edf', 'http://fs1/data/t0.edf')")
            .unwrap();
        let fs = fs1.borrow();
        assert!(fs.link_state("/data/t0.edf").is_some());
        assert!(
            fs.has_backup("/data/t0.edf"),
            "RECOVERY YES captured backup"
        );
    }

    #[test]
    fn insert_of_missing_file_fails_statement() {
        let (mut db, _mgr, _fs1, _clock) = setup();
        let err = db
            .execute("INSERT INTO result_file VALUES ('x', 'http://fs1/data/missing.edf')")
            .unwrap_err();
        assert!(matches!(err, DbError::Link(_)), "{err}");
        // Metadata row was not inserted either (statement atomicity).
        let rs = db.execute("SELECT COUNT(*) FROM result_file").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn insert_to_unknown_host_fails() {
        let (mut db, _mgr, _fs1, _clock) = setup();
        let err = db
            .execute("INSERT INTO result_file VALUES ('x', 'http://nowhere/data/t0.edf')")
            .unwrap_err();
        assert!(matches!(err, DbError::Link(_)));
    }

    #[test]
    fn select_returns_tokenized_url_that_the_server_accepts() {
        let (mut db, _mgr, fs1, clock) = setup();
        db.execute("INSERT INTO result_file VALUES ('t0.edf', 'http://fs1/data/t0.edf')")
            .unwrap();
        let rs = db
            .execute("SELECT download_result FROM result_file")
            .unwrap();
        let Value::Datalink(url) = &rs.rows[0][0] else {
            panic!("expected datalink, got {:?}", rs.rows[0][0]);
        };
        assert!(url.contains(';'), "token form: {url}");
        let (parsed, token) = DatalinkUrl::parse_tokenized(url).unwrap();
        let req = parsed.server_request(token.as_deref());
        let data = fs1.borrow().read_file(&req, clock.now()).unwrap();
        assert_eq!(data, b"DATA0".to_vec());
        // Token expires with the archive clock.
        clock.set(10_000);
        assert!(fs1.borrow().read_file(&req, clock.now()).is_err());
    }

    #[test]
    fn rollback_cancels_link() {
        let (mut db, _mgr, fs1, _clock) = setup();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO result_file VALUES ('t0.edf', 'http://fs1/data/t0.edf')")
            .unwrap();
        db.execute("ROLLBACK").unwrap();
        assert!(fs1.borrow().link_state("/data/t0.edf").is_none());
        let rs = db.execute("SELECT COUNT(*) FROM result_file").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(0)));
        // The file is free: deleting it works.
        fs1.borrow_mut().delete_file("/data/t0.edf").unwrap();
    }

    #[test]
    fn delete_unlinks_and_restores_file() {
        let (mut db, _mgr, fs1, _clock) = setup();
        db.execute("INSERT INTO result_file VALUES ('t0.edf', 'http://fs1/data/t0.edf')")
            .unwrap();
        db.execute("DELETE FROM result_file WHERE file_name = 't0.edf'")
            .unwrap();
        let fs = fs1.borrow();
        assert!(fs.link_state("/data/t0.edf").is_none());
        assert!(
            fs.exists("/data/t0.edf"),
            "ON UNLINK RESTORE keeps the file"
        );
    }

    #[test]
    fn update_relinks() {
        let (mut db, _mgr, fs1, _clock) = setup();
        db.execute("INSERT INTO result_file VALUES ('t', 'http://fs1/data/t0.edf')")
            .unwrap();
        db.execute(
            "UPDATE result_file SET download_result = 'http://fs1/data/t1.edf' WHERE file_name = 't'",
        )
        .unwrap();
        let fs = fs1.borrow();
        assert!(fs.link_state("/data/t0.edf").is_none(), "old link released");
        assert!(fs.link_state("/data/t1.edf").is_some(), "new link created");
    }

    #[test]
    fn linked_file_protected_until_unlink() {
        let (mut db, _mgr, fs1, _clock) = setup();
        db.execute("INSERT INTO result_file VALUES ('t0.edf', 'http://fs1/data/t0.edf')")
            .unwrap();
        assert!(fs1.borrow_mut().delete_file("/data/t0.edf").is_err());
        db.execute("DELETE FROM result_file").unwrap();
        fs1.borrow_mut().delete_file("/data/t0.edf").unwrap();
    }

    #[test]
    fn no_link_control_columns_skip_protocol() {
        let clock = ArchiveClock::new();
        let issuer = TokenIssuer::new(b"secret", 600);
        let mgr = DataLinkManager::new(issuer.clone(), clock.clone());
        let fs1 = Rc::new(RefCell::new(FileServer::new("fs1", issuer)));
        mgr.register_server(fs1.clone());
        let mut db = Database::new_in_memory();
        db.add_observer(mgr);
        db.execute(
            "CREATE TABLE t (f VARCHAR(50) PRIMARY KEY,
             d DATALINK LINKTYPE URL NO FILE LINK CONTROL)",
        )
        .unwrap();
        // File doesn't even exist; NO FILE LINK CONTROL accepts anything.
        db.execute("INSERT INTO t VALUES ('x', 'http://fs1/ghost.edf')")
            .unwrap();
        let rs = db.execute("SELECT d FROM t").unwrap();
        assert_eq!(
            rs.rows[0][0],
            Value::Datalink("http://fs1/ghost.edf".into()),
            "no token splicing without link control"
        );
        assert!(fs1.borrow().link_state("/ghost.edf").is_none());
    }

    #[test]
    fn double_link_across_rows_rejected() {
        let (mut db, _mgr, _fs1, _clock) = setup();
        db.execute("INSERT INTO result_file VALUES ('a', 'http://fs1/data/t0.edf')")
            .unwrap();
        let err = db
            .execute("INSERT INTO result_file VALUES ('b', 'http://fs1/data/t0.edf')")
            .unwrap_err();
        assert!(matches!(err, DbError::Link(_)));
    }

    #[test]
    fn reconcile_noop_when_in_agreement() {
        let (mut db, mgr, _fs1, _clock) = setup();
        db.execute("INSERT INTO result_file VALUES ('t0.edf', 'http://fs1/data/t0.edf')")
            .unwrap();
        let report = mgr.reconcile(&mut db);
        assert!(report.in_agreement(), "{report:?}");
        assert_eq!(report.checked, 1);
    }

    #[test]
    fn reconcile_relinks_after_crash_swallows_commit() {
        let (mut db, mgr, fs1, _clock) = setup();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO result_file VALUES ('t0.edf', 'http://fs1/data/t0.edf')")
            .unwrap();
        // Server dies mid-transaction: the pending link evaporates and
        // the commit that follows is a no-op on this host.
        fs1.borrow_mut().crash();
        db.execute("COMMIT").unwrap();
        fs1.borrow_mut().restart();
        assert!(fs1.borrow().link_state("/data/t0.edf").is_none());

        let report = mgr.reconcile(&mut db);
        assert_eq!(report.relinked, vec!["fs1/data/t0.edf"]);
        assert!(report.restored.is_empty() && report.unrepairable.is_empty());
        assert!(matches!(
            fs1.borrow().link_state("/data/t0.edf"),
            Some(LinkState::Linked { .. })
        ));
        assert!(
            fs1.borrow().has_backup("/data/t0.edf"),
            "RECOVERY YES backup captured"
        );
        // Second pass: full agreement, zero actions.
        let again = mgr.reconcile(&mut db);
        assert!(again.in_agreement(), "{again:?}");
        assert_eq!(again.actions(), 0);
    }

    #[test]
    fn reconcile_restores_damaged_recovery_file_byte_identically() {
        let (mut db, mgr, fs1, clock) = setup();
        db.execute("INSERT INTO result_file VALUES ('t0.edf', 'http://fs1/data/t0.edf')")
            .unwrap();
        assert!(fs1.borrow_mut().damage_file("/data/t0.edf"));
        let report = mgr.reconcile(&mut db);
        assert_eq!(report.restored, vec!["fs1/data/t0.edf"]);
        let req = format!(
            "/data/{};t0.edf",
            mgr.issuer()
                .issue(TokenScope::Read, "fs1", "/data/t0.edf", clock.now())
        );
        assert_eq!(
            fs1.borrow().read_file(&req, clock.now()).unwrap(),
            b"DATA0".to_vec()
        );
    }

    #[test]
    fn reconcile_releases_orphans_and_keeps_files() {
        let (mut db, mgr, fs1, _clock) = setup();
        // A link the database never heard of (e.g. its row was lost).
        fs1.borrow_mut()
            .recover_link(
                "/data/t1.edf",
                LinkOptions::default(),
                ("RESULT_FILE".into(), "DOWNLOAD_RESULT".into()),
            )
            .unwrap();
        let report = mgr.reconcile(&mut db);
        assert_eq!(report.orphans_unlinked, vec!["fs1/data/t1.edf"]);
        assert!(fs1.borrow().link_state("/data/t1.edf").is_none());
        assert!(fs1.borrow().exists("/data/t1.edf"), "orphan file kept");
    }

    #[test]
    fn reconcile_skips_down_servers_and_reports_unknown_hosts() {
        let (mut db, mgr, fs1, clock) = setup();
        db.execute("INSERT INTO result_file VALUES ('t0.edf', 'http://fs1/data/t0.edf')")
            .unwrap();
        fs1.borrow_mut().crash();
        let report = mgr.reconcile(&mut db);
        assert_eq!(report.skipped_down, vec!["fs1"]);
        assert!(!report.in_agreement());

        // A manager that has never registered fs1 finds the catalog
        // entry unrepairable.
        let stranger = DataLinkManager::new(TokenIssuer::new(b"secret", 600), clock.clone());
        let report = stranger.reconcile(&mut db);
        assert_eq!(report.unrepairable.len(), 1);
        assert!(report.unrepairable[0].contains("unknown file server host"));
    }

    #[test]
    fn tokens_counted() {
        let (mut db, mgr, _fs1, _clock) = setup();
        db.execute("INSERT INTO result_file VALUES ('t0.edf', 'http://fs1/data/t0.edf')")
            .unwrap();
        assert_eq!(mgr.tokens_issued(), 0);
        db.execute("SELECT download_result FROM result_file")
            .unwrap();
        db.execute("SELECT download_result FROM result_file")
            .unwrap();
        assert_eq!(mgr.tokens_issued(), 2);
    }
}
