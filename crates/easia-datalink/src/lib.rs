//! SQL/MED DATALINK layer.
//!
//! This crate wires the embedded database ([`easia_db`]) to the
//! distributed file servers ([`easia_fs`]) so that DATALINK columns get
//! the four guarantees the paper lists:
//!
//! * **Referential integrity** — an external file referenced by the
//!   database cannot be renamed or deleted (enforced by each server's
//!   DLFM once the link commits),
//! * **Transaction consistency** — link/unlink operations prepared
//!   during DML are resolved by the transaction's commit or rollback,
//! * **Security** — `READ PERMISSION DB` files are served only with an
//!   encrypted, expiring access token issued at `SELECT` time,
//! * **Coordinated backup and recovery** — `RECOVERY YES` links capture
//!   a backup copy on the file server at link-commit time.
//!
//! Modules:
//! * [`url`] — the DATALINK value grammar
//!   (`http://host/filesystem/directory/filename`) and the token-spliced
//!   `SELECT` form (`.../access_token;filename`),
//! * [`functions`] — the SQL/MED `DL*` scalar functions registered into
//!   the database's function registry,
//! * [`manager`] — [`DataLinkManager`], the
//!   [`easia_db::LinkObserver`] implementation coordinating the DLFMs.

pub mod functions;
pub mod manager;
pub mod obs;
pub mod url;

pub use manager::{ArchiveClock, DataLinkManager, ReconcileReport};
pub use obs::DlMetrics;
pub use url::DatalinkUrl;
