//! Deterministic fault injection: link outages, degraded-throughput
//! windows, and host crash/restart events.
//!
//! Faults are piecewise-constant in simulated time, exactly like
//! [`crate::BandwidthProfile`]: a link's effective capacity at instant
//! `t` is its profile capacity multiplied by the product of the factors
//! of all fault windows covering `t` (an outage is a factor-0 window),
//! and a host is down during any of its crash windows. Because every
//! window boundary is an explicit event time, the fluid-flow engine
//! stays exact — no sampling, no approximation — and a schedule built
//! from a seed reproduces the same byte-for-byte simulation every run.

use crate::topology::{HostId, LinkId};

/// A throughput fault on one link: capacity is multiplied by `factor`
/// during `[from_s, until_s)`. `factor == 0.0` is a hard outage.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFault {
    /// The affected link (both directions).
    pub link: LinkId,
    /// Window start, seconds of simulated time.
    pub from_s: f64,
    /// Window end (exclusive), seconds of simulated time.
    pub until_s: f64,
    /// Capacity multiplier in `[0, 1]`.
    pub factor: f64,
}

/// A host crash window: the host is unreachable (and loses in-flight
/// state) during `[down_at, up_at)`.
#[derive(Debug, Clone, PartialEq)]
pub struct HostFault {
    /// The crashed host.
    pub host: HostId,
    /// Crash instant.
    pub down_at: f64,
    /// Restart instant (exclusive end of the down window).
    pub up_at: f64,
}

/// Parameters for [`FaultSchedule::storm`]: a seeded burst of faults
/// drawn uniformly inside a time window.
#[derive(Debug, Clone)]
pub struct StormSpec {
    /// Seed for the deterministic draw.
    pub seed: u64,
    /// Window `(start, end)` faults may begin in.
    pub window: (f64, f64),
    /// Number of hard link outages.
    pub outages: usize,
    /// Outage duration range `(min, max)` seconds.
    pub outage_secs: (f64, f64),
    /// Number of degraded-throughput windows.
    pub degraded: usize,
    /// Degraded-window duration range `(min, max)` seconds.
    pub degraded_secs: (f64, f64),
    /// Number of host crash/restart events.
    pub crashes: usize,
    /// Crash downtime range `(min, max)` seconds.
    pub crash_secs: (f64, f64),
}

impl StormSpec {
    /// A moderate storm inside `window`, suitable as a default chaos load.
    pub fn moderate(seed: u64, window: (f64, f64)) -> Self {
        StormSpec {
            seed,
            window,
            outages: 3,
            outage_secs: (20.0, 80.0),
            degraded: 2,
            degraded_secs: (40.0, 160.0),
            crashes: 1,
            crash_secs: (30.0, 120.0),
        }
    }
}

/// A complete fault plan for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    link_faults: Vec<LinkFault>,
    host_faults: Vec<HostFault>,
}

impl FaultSchedule {
    /// An empty schedule (no faults — the engine's default).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// True when the schedule contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.link_faults.is_empty() && self.host_faults.is_empty()
    }

    /// Add a hard outage on `link` during `[from_s, until_s)`.
    pub fn link_outage(&mut self, link: LinkId, from_s: f64, until_s: f64) -> &mut Self {
        self.push_link_fault(link, from_s, until_s, 0.0)
    }

    /// Add a degraded window on `link`: capacity multiplied by `factor`.
    pub fn link_degraded(
        &mut self,
        link: LinkId,
        from_s: f64,
        until_s: f64,
        factor: f64,
    ) -> &mut Self {
        assert!(
            (0.0..=1.0).contains(&factor),
            "degradation factor must be in [0, 1]"
        );
        self.push_link_fault(link, from_s, until_s, factor)
    }

    fn push_link_fault(
        &mut self,
        link: LinkId,
        from_s: f64,
        until_s: f64,
        factor: f64,
    ) -> &mut Self {
        assert!(
            from_s.is_finite() && until_s.is_finite() && from_s < until_s,
            "fault window must be finite and non-empty"
        );
        self.link_faults.push(LinkFault {
            link,
            from_s,
            until_s,
            factor,
        });
        self
    }

    /// Add a crash/restart event: `host` is down during `[down_at, up_at)`.
    pub fn host_crash(&mut self, host: HostId, down_at: f64, up_at: f64) -> &mut Self {
        assert!(
            down_at.is_finite() && up_at.is_finite() && down_at < up_at,
            "crash window must be finite and non-empty"
        );
        self.host_faults.push(HostFault {
            host,
            down_at,
            up_at,
        });
        self
    }

    /// Effective capacity multiplier for `link` at instant `t`:
    /// the product of all fault windows covering `t` (1.0 when none).
    pub fn link_factor(&self, link: LinkId, t: f64) -> f64 {
        self.link_faults
            .iter()
            .filter(|f| f.link == link && f.from_s <= t && t < f.until_s)
            .map(|f| f.factor)
            .product()
    }

    /// True when `host` is inside a crash window at instant `t`.
    pub fn host_down(&self, host: HostId, t: f64) -> bool {
        self.host_faults
            .iter()
            .any(|f| f.host == host && f.down_at <= t && t < f.up_at)
    }

    /// Earliest instant `>= t` at which `host` is up (returns `t` itself
    /// when the host is already up). Overlapping or chained crash windows
    /// are resolved to a fixed point.
    pub fn host_up_after(&self, host: HostId, t: f64) -> f64 {
        let mut at = t;
        loop {
            let mut advanced = false;
            for f in &self.host_faults {
                if f.host == host && f.down_at <= at && at < f.up_at {
                    at = f.up_at;
                    advanced = true;
                }
            }
            if !advanced {
                return at;
            }
        }
    }

    /// Next fault-window boundary strictly after `t` (a window opening
    /// or closing anywhere in the schedule), if any.
    pub fn next_change(&self, t: f64) -> Option<f64> {
        let mut next = f64::INFINITY;
        let mut consider = |b: f64| {
            if b > t && b < next {
                next = b;
            }
        };
        for f in &self.link_faults {
            consider(f.from_s);
            consider(f.until_s);
        }
        for f in &self.host_faults {
            consider(f.down_at);
            consider(f.up_at);
        }
        next.is_finite().then_some(next)
    }

    /// Number of hard outages (factor 0) in the schedule.
    pub fn outage_count(&self) -> usize {
        self.link_faults.iter().filter(|f| f.factor == 0.0).count()
    }

    /// Number of degraded (non-zero factor) windows in the schedule.
    pub fn degraded_count(&self) -> usize {
        self.link_faults.iter().filter(|f| f.factor > 0.0).count()
    }

    /// Number of host crash events in the schedule.
    pub fn crash_count(&self) -> usize {
        self.host_faults.len()
    }

    /// The link fault windows, for reporting.
    pub fn link_faults(&self) -> &[LinkFault] {
        &self.link_faults
    }

    /// The host crash windows, for reporting.
    pub fn host_faults(&self) -> &[HostFault] {
        &self.host_faults
    }

    /// Generate a seeded fault storm over the given links and hosts.
    /// The draw is a pure function of `spec`, `links`, and `hosts` —
    /// the same inputs always produce the same schedule.
    pub fn storm(spec: &StormSpec, links: &[LinkId], hosts: &[HostId]) -> FaultSchedule {
        assert!(spec.window.0 < spec.window.1, "empty storm window");
        assert!(
            spec.outages + spec.degraded == 0 || !links.is_empty(),
            "link faults requested but no links given"
        );
        assert!(
            spec.crashes == 0 || !hosts.is_empty(),
            "crashes requested but no hosts given"
        );
        let mut rng = SplitMix::new(spec.seed);
        let mut sched = FaultSchedule::new();
        for _ in 0..spec.outages {
            let link = links[rng.below(links.len() as u64) as usize];
            let at = rng.in_range(spec.window.0, spec.window.1);
            let dur = rng.in_range(spec.outage_secs.0, spec.outage_secs.1);
            sched.link_outage(link, at, at + dur);
        }
        for _ in 0..spec.degraded {
            let link = links[rng.below(links.len() as u64) as usize];
            let at = rng.in_range(spec.window.0, spec.window.1);
            let dur = rng.in_range(spec.degraded_secs.0, spec.degraded_secs.1);
            let factor = rng.in_range(0.1, 0.6);
            sched.link_degraded(link, at, at + dur, factor);
        }
        for _ in 0..spec.crashes {
            let host = hosts[rng.below(hosts.len() as u64) as usize];
            let at = rng.in_range(spec.window.0, spec.window.1);
            let dur = rng.in_range(spec.crash_secs.0, spec.crash_secs.1);
            sched.host_crash(host, at, at + dur);
        }
        sched
    }
}

/// SplitMix64: the crate avoids external RNG dependencies so fault
/// schedules are reproducible from the seed alone.
pub(crate) struct SplitMix {
    state: u64,
}

impl SplitMix {
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lid(n: u32) -> LinkId {
        LinkId(n)
    }

    fn hid(n: u32) -> HostId {
        HostId(n)
    }

    #[test]
    fn factors_compose_and_window_is_half_open() {
        let mut s = FaultSchedule::new();
        s.link_degraded(lid(0), 10.0, 20.0, 0.5);
        s.link_degraded(lid(0), 15.0, 30.0, 0.5);
        assert_eq!(s.link_factor(lid(0), 9.0), 1.0);
        assert_eq!(s.link_factor(lid(0), 10.0), 0.5);
        assert_eq!(s.link_factor(lid(0), 15.0), 0.25);
        assert_eq!(s.link_factor(lid(0), 20.0), 0.5);
        assert_eq!(s.link_factor(lid(0), 30.0), 1.0);
        assert_eq!(s.link_factor(lid(1), 15.0), 1.0);
    }

    #[test]
    fn outage_zeroes_capacity() {
        let mut s = FaultSchedule::new();
        s.link_outage(lid(2), 5.0, 8.0);
        assert_eq!(s.link_factor(lid(2), 6.0), 0.0);
        assert_eq!(s.outage_count(), 1);
        assert_eq!(s.degraded_count(), 0);
    }

    #[test]
    fn host_windows_and_fixed_point_restart() {
        let mut s = FaultSchedule::new();
        s.host_crash(hid(1), 10.0, 20.0);
        s.host_crash(hid(1), 18.0, 25.0); // overlapping second crash
        assert!(!s.host_down(hid(1), 9.0));
        assert!(s.host_down(hid(1), 10.0));
        assert!(s.host_down(hid(1), 22.0));
        assert!(!s.host_down(hid(1), 25.0));
        assert_eq!(s.host_up_after(hid(1), 12.0), 25.0);
        assert_eq!(s.host_up_after(hid(1), 30.0), 30.0);
        assert_eq!(s.host_up_after(hid(2), 12.0), 12.0);
    }

    #[test]
    fn next_change_walks_all_boundaries() {
        let mut s = FaultSchedule::new();
        s.link_outage(lid(0), 10.0, 20.0);
        s.host_crash(hid(0), 15.0, 30.0);
        assert_eq!(s.next_change(0.0), Some(10.0));
        assert_eq!(s.next_change(10.0), Some(15.0));
        assert_eq!(s.next_change(15.0), Some(20.0));
        assert_eq!(s.next_change(20.0), Some(30.0));
        assert_eq!(s.next_change(30.0), None);
    }

    #[test]
    fn storm_is_deterministic_in_seed() {
        let spec = StormSpec::moderate(42, (0.0, 500.0));
        let links = [lid(0), lid(1), lid(2)];
        let hosts = [hid(0), hid(1)];
        let a = FaultSchedule::storm(&spec, &links, &hosts);
        let b = FaultSchedule::storm(&spec, &links, &hosts);
        assert_eq!(a, b);
        assert_eq!(a.outage_count(), 3);
        assert_eq!(a.degraded_count(), 2);
        assert_eq!(a.crash_count(), 1);
        let c = FaultSchedule::storm(&StormSpec::moderate(43, (0.0, 500.0)), &links, &hosts);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_window_rejected() {
        FaultSchedule::new().link_outage(lid(0), 20.0, 10.0);
    }
}
