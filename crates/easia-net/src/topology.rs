//! Hosts, links, and routing.

use crate::profile::BandwidthProfile;

/// Identifier of a host in a [`crate::SimNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub(crate) u32);

/// Identifier of a link in a [`crate::SimNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub(crate) u32);

/// Specification of a duplex link between two hosts.
///
/// Bandwidth is directional (the paper measured 0.25 Mbit/s *to*
/// Southampton but 0.37 Mbit/s *from* it during the day), so each
/// direction carries its own profile.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// One-way latency in seconds, charged once per transfer.
    pub latency_s: f64,
    /// Bandwidth profile in the a→b direction.
    pub ab: BandwidthProfile,
    /// Bandwidth profile in the b→a direction.
    pub ba: BandwidthProfile,
}

impl LinkSpec {
    /// Symmetric link with constant bandwidth.
    pub fn symmetric(bits_per_sec: f64, latency_s: f64) -> Self {
        LinkSpec {
            latency_s,
            ab: BandwidthProfile::constant(bits_per_sec),
            ba: BandwidthProfile::constant(bits_per_sec),
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Host {
    pub name: String,
    /// Number of CPU cores for job scheduling.
    pub cpus: u32,
}

#[derive(Debug, Clone)]
pub(crate) struct Link {
    pub a: HostId,
    pub b: HostId,
    pub spec: LinkSpec,
}

/// A directed traversal of a link: `link` in the given orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Hop {
    pub link: LinkId,
    /// True when traversing a→b.
    pub forward: bool,
}

#[derive(Debug, Default)]
pub(crate) struct Topology {
    pub hosts: Vec<Host>,
    pub links: Vec<Link>,
    /// adjacency[host] = (neighbour, link)
    pub adj: Vec<Vec<(HostId, LinkId)>>,
}

impl Topology {
    pub fn add_host(&mut self, name: &str, cpus: u32) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(Host {
            name: name.to_string(),
            cpus: cpus.max(1),
        });
        self.adj.push(Vec::new());
        id
    }

    pub fn connect(&mut self, a: HostId, b: HostId, spec: LinkSpec) -> LinkId {
        assert_ne!(a, b, "cannot link a host to itself");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { a, b, spec });
        self.adj[a.0 as usize].push((b, id));
        self.adj[b.0 as usize].push((a, id));
        id
    }

    /// Shortest path (fewest hops) from `src` to `dst` as directed hops.
    /// Returns `None` when unreachable; `Some(vec![])` when `src == dst`.
    pub fn route(&self, src: HostId, dst: HostId) -> Option<Vec<Hop>> {
        if src == dst {
            return Some(Vec::new());
        }
        let n = self.hosts.len();
        let mut prev: Vec<Option<(HostId, LinkId)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[src.0 as usize] = true;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &(v, link) in &self.adj[u.0 as usize] {
                if !visited[v.0 as usize] {
                    visited[v.0 as usize] = true;
                    prev[v.0 as usize] = Some((u, link));
                    if v == dst {
                        queue.clear();
                        break;
                    }
                    queue.push_back(v);
                }
            }
        }
        if !visited[dst.0 as usize] {
            return None;
        }
        let mut hops = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (p, link) = prev[cur.0 as usize].expect("visited nodes have predecessors");
            let l = &self.links[link.0 as usize];
            let forward = l.a == p;
            debug_assert_eq!(if forward { l.b } else { l.a }, cur);
            hops.push(Hop { link, forward });
            cur = p;
        }
        hops.reverse();
        Some(hops)
    }

    /// The hosts a path visits, in order, starting from `src`.
    pub fn path_hosts(&self, src: HostId, hops: &[Hop]) -> Vec<HostId> {
        let mut hosts = Vec::with_capacity(hops.len() + 1);
        hosts.push(src);
        let mut cur = src;
        for h in hops {
            let l = &self.links[h.link.0 as usize];
            cur = if l.a == cur { l.b } else { l.a };
            hosts.push(cur);
        }
        hosts
    }

    /// Total one-way latency along a path.
    pub fn path_latency(&self, hops: &[Hop]) -> f64 {
        hops.iter()
            .map(|h| self.links[h.link.0 as usize].spec.latency_s)
            .sum()
    }

    pub fn profile(&self, hop: Hop) -> &BandwidthProfile {
        let link = &self.links[hop.link.0 as usize];
        if hop.forward {
            &link.spec.ab
        } else {
            &link.spec.ba
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Mbit;

    fn chain() -> (Topology, Vec<HostId>) {
        // a - b - c, plus isolated d
        let mut t = Topology::default();
        let a = t.add_host("a", 1);
        let b = t.add_host("b", 1);
        let c = t.add_host("c", 1);
        let d = t.add_host("d", 1);
        t.connect(a, b, LinkSpec::symmetric(Mbit(10.0), 0.01));
        t.connect(b, c, LinkSpec::symmetric(Mbit(1.0), 0.02));
        (t, vec![a, b, c, d])
    }

    #[test]
    fn routes_shortest_path() {
        let (t, h) = chain();
        let path = t.route(h[0], h[2]).unwrap();
        assert_eq!(path.len(), 2);
        assert!(path[0].forward && path[1].forward);
        let back = t.route(h[2], h[0]).unwrap();
        assert_eq!(back.len(), 2);
        assert!(!back[0].forward && !back[1].forward);
    }

    #[test]
    fn unreachable_and_self() {
        let (t, h) = chain();
        assert!(t.route(h[0], h[3]).is_none());
        assert_eq!(t.route(h[1], h[1]).unwrap().len(), 0);
    }

    #[test]
    fn latency_sums() {
        let (t, h) = chain();
        let path = t.route(h[0], h[2]).unwrap();
        assert!((t.path_latency(&path) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn prefers_fewest_hops() {
        let mut t = Topology::default();
        let a = t.add_host("a", 1);
        let b = t.add_host("b", 1);
        let c = t.add_host("c", 1);
        t.connect(a, b, LinkSpec::symmetric(1.0, 0.0));
        t.connect(b, c, LinkSpec::symmetric(1.0, 0.0));
        t.connect(a, c, LinkSpec::symmetric(1.0, 0.0)); // direct
        assert_eq!(t.route(a, c).unwrap().len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot link a host to itself")]
    fn self_link_rejected() {
        let mut t = Topology::default();
        let a = t.add_host("a", 1);
        t.connect(a, a, LinkSpec::symmetric(1.0, 0.0));
    }
}
