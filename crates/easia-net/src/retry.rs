//! The shared retry/backoff policy.
//!
//! Every client-side recovery discipline in the system — the file
//! transfer client in `easia-core::transfer` and the federated scan
//! executor in `easia-med` — retries under the same shape: a stall
//! timeout that abandons an attempt making no progress, a bounded
//! number of retries, and capped exponential backoff whose jitter is
//! drawn deterministically from a seed, so chaos runs reproduce
//! bit-for-bit. This module is the single definition of that policy;
//! the clients differ only in *what* they resume (byte offsets for
//! file transfers, batch sequence numbers for federated scans).

/// Retry/backoff policy for fault-tolerant clients over [`crate::SimNet`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Abort an attempt when no byte has moved for this long (seconds).
    pub stall_timeout_s: f64,
    /// Retries allowed after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry (seconds).
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff per retry.
    pub backoff_factor: f64,
    /// Upper bound on a single backoff (seconds).
    pub max_backoff_s: f64,
    /// Fraction of each backoff randomised away (0 = fixed delays,
    /// 1 = full jitter). Jitter is drawn deterministically from
    /// `jitter_seed` and the attempt number.
    pub jitter_frac: f64,
    /// Seed for the deterministic jitter draw.
    pub jitter_seed: u64,
    /// Resume from the progress marker after a failure (byte offset for
    /// transfers, batch cursor for scans). When false every retry
    /// restarts from zero (the ablation case).
    pub resume: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            stall_timeout_s: 30.0,
            max_retries: 10,
            base_backoff_s: 2.0,
            backoff_factor: 2.0,
            max_backoff_s: 120.0,
            jitter_frac: 0.5,
            jitter_seed: 0,
            resume: true,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay before retry number `retry` (1-based), jittered
    /// deterministically.
    pub fn backoff(&self, retry: u32) -> f64 {
        let exp = self
            .base_backoff_s
            .max(0.0)
            .mul_add(self.backoff_factor.powi(retry as i32 - 1), 0.0)
            .min(self.max_backoff_s);
        let u = unit_from(self.jitter_seed, u64::from(retry));
        // Jitter shortens the delay by up to `jitter_frac`: spreads
        // retries out without ever exceeding the exponential envelope.
        exp * (1.0 - self.jitter_frac.clamp(0.0, 1.0) * u)
    }
}

/// Compute a `Retry-After` hint (whole seconds, ≥ 1) for a 503 response.
///
/// Every layer that sheds or refuses work — the file-server availability
/// check, the federation's fail-closed ladder, the circuit breaker, and
/// the portal admission controller — derives the header the same way: if
/// the caller knows *when* service resumes (`recovery_at`, on the same
/// simulated clock as `now`), the hint is the time until then, rounded up
/// and floored at one second; otherwise it falls back to `default_secs`.
/// A single definition keeps the layers' headers consistent, which the
/// cross-layer tests pin.
pub fn retry_after_secs(now: f64, recovery_at: Option<f64>, default_secs: u64) -> u64 {
    match recovery_at {
        Some(t) if t.is_finite() => ((t - now).ceil()).max(1.0) as u64,
        _ => default_secs.max(1),
    }
}

/// Deterministic uniform draw in `[0, 1)` from `(seed, n)` — SplitMix64
/// of the pair, so jitter depends only on the policy seed and attempt.
pub fn unit_from(seed: u64, n: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(n.wrapping_add(1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            base_backoff_s: 10.0,
            backoff_factor: 2.0,
            max_backoff_s: 100.0,
            jitter_frac: 0.5,
            jitter_seed: 99,
            ..RetryPolicy::default()
        };
        for retry in 1..8 {
            let d1 = p.backoff(retry);
            let d2 = p.backoff(retry);
            assert_eq!(d1.to_bits(), d2.to_bits(), "jitter must be deterministic");
            let envelope = (10.0 * 2.0f64.powi(retry as i32 - 1)).min(100.0);
            assert!(d1 <= envelope && d1 >= envelope * 0.5);
        }
        let q = RetryPolicy {
            jitter_seed: 100,
            ..p.clone()
        };
        assert_ne!(p.backoff(1).to_bits(), q.backoff(1).to_bits());
    }

    #[test]
    fn retry_after_rounds_up_floors_at_one_and_falls_back() {
        assert_eq!(retry_after_secs(100.0, Some(130.5), 30), 31);
        assert_eq!(retry_after_secs(100.0, Some(100.2), 30), 1);
        assert_eq!(
            retry_after_secs(100.0, Some(99.0), 30),
            1,
            "past recovery still ≥ 1"
        );
        assert_eq!(retry_after_secs(100.0, None, 30), 30);
        assert_eq!(retry_after_secs(100.0, Some(f64::INFINITY), 30), 30);
        assert_eq!(
            retry_after_secs(100.0, None, 0),
            1,
            "default is floored too"
        );
    }

    #[test]
    fn zero_jitter_is_the_exact_exponential_envelope() {
        let p = RetryPolicy {
            base_backoff_s: 3.0,
            backoff_factor: 2.0,
            max_backoff_s: 20.0,
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1), 3.0);
        assert_eq!(p.backoff(2), 6.0);
        assert_eq!(p.backoff(3), 12.0);
        assert_eq!(p.backoff(4), 20.0, "capped at max_backoff_s");
    }
}
