//! The fluid-flow discrete-event simulation engine.
//!
//! Transfers are modelled as fluid flows: while active, a transfer
//! proceeds at the minimum over its path's directed links of
//! `capacity(link, t) / concurrent_flows(link)` — equal sharing at every
//! link, which for the star/dumbbell topologies of the experiments equals
//! max–min fairness. CPU jobs similarly share a host's cores equally.
//! The clock advances directly to the next "interesting" instant: a
//! transfer activation (after path latency), a completion, or a bandwidth
//! profile boundary, recomputing rates at each step. With piecewise-
//! constant profiles this is exact, not an approximation.

use crate::fault::FaultSchedule;
use crate::topology::{Hop, HostId, LinkId, LinkSpec, Topology};
use std::collections::HashMap;

/// Identifier of a transfer started on a [`SimNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransferId(u64);

/// Identifier of a CPU job started on a [`SimNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(u64);

/// Completion record for a transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRecord {
    /// When the transfer was initiated.
    pub start: f64,
    /// When the last byte arrived.
    pub end: f64,
    /// Payload size in bytes.
    pub bytes: f64,
}

impl TransferRecord {
    /// End-to-end duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Completion record for a CPU job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// When the job was submitted.
    pub start: f64,
    /// When it finished.
    pub end: f64,
    /// CPU-seconds of work it contained.
    pub cpu_secs: f64,
}

impl JobRecord {
    /// Wall-clock duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Why a transfer stopped without delivering all its bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferFailure {
    /// A host on the transfer's path crashed mid-flight.
    HostDown(HostId),
    /// The transfer was cancelled by [`SimNet::cancel_transfer`].
    Cancelled,
}

/// Observable state of a transfer.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferStatus {
    /// Still moving (or stalled waiting for capacity).
    InFlight {
        /// Bytes delivered so far.
        bytes_moved: f64,
    },
    /// All bytes delivered.
    Done(TransferRecord),
    /// Aborted mid-flight.
    Failed {
        /// Instant the transfer failed.
        at: f64,
        /// Bytes delivered before the failure (usable for offset resume).
        bytes_moved: f64,
        /// What went wrong.
        reason: TransferFailure,
    },
}

#[derive(Debug)]
struct Transfer {
    bytes: f64,
    remaining: f64,
    hops: Vec<Hop>,
    /// Every host the flow traverses (endpoints included): a crash of
    /// any of them aborts the transfer.
    path_hosts: Vec<HostId>,
    start: f64,
    /// Instant the flow begins moving bytes (start + path latency).
    activate_at: f64,
    done_at: Option<f64>,
    failed_at: Option<f64>,
    failure: Option<TransferFailure>,
}

impl Transfer {
    /// Still needs engine attention (neither delivered nor aborted).
    fn active(&self) -> bool {
        self.done_at.is_none() && self.failed_at.is_none()
    }
}

#[derive(Debug)]
struct Job {
    host: HostId,
    cpu_secs: f64,
    remaining: f64,
    start: f64,
    done_at: Option<f64>,
    failed_at: Option<f64>,
}

impl Job {
    fn active(&self) -> bool {
        self.done_at.is_none() && self.failed_at.is_none()
    }
}

/// The simulator. See the crate docs for the model.
#[derive(Debug, Default)]
pub struct SimNet {
    topo: Topology,
    clock: f64,
    transfers: Vec<Transfer>,
    jobs: Vec<Job>,
    /// Cumulative bytes carried per link (both directions), for
    /// bytes-over-bottleneck accounting in the experiments.
    link_bytes: HashMap<LinkId, f64>,
    /// Injected faults; empty by default.
    faults: FaultSchedule,
}

/// Comparison slack for event times, in seconds.
const EPS: f64 = 1e-9;
/// Completion slack for residual work (bytes / CPU-seconds): after the
/// scheduled completion instant, accumulated f64 error can leave a
/// residual too small to advance the clock but larger than a purely
/// relative threshold; a micro-byte / microsecond absolute floor
/// guarantees termination.
const BYTE_EPS: f64 = 1e-6;

impl SimNet {
    /// Create an empty network with the clock at 0.
    pub fn new() -> Self {
        SimNet::default()
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Jump the clock forward to `t` (processing events on the way).
    /// Panics if `t` is in the past.
    pub fn run_until(&mut self, t: f64) {
        assert!(t + EPS >= self.clock, "cannot run backwards");
        self.drive(Some(t));
    }

    /// Run until no transfer or job remains active. Returns the clock.
    pub fn run_until_idle(&mut self) -> f64 {
        self.drive(None);
        self.clock
    }

    /// Advance the clock event-by-event until **any** transfer in `ids`
    /// settles (delivers its last byte, fails on a crashed host, or was
    /// already cancelled), or until `t_max`, whichever comes first.
    /// Returns the clock.
    ///
    /// Unlisted transfers keep flowing normally — they share bandwidth
    /// and may complete during the wait, but they never end it. This is
    /// the primitive event-driven callers use to wait on *their own*
    /// transfers without settling the whole network, so concurrent
    /// streams can interleave their waits. Returns immediately (clock
    /// unchanged) when a listed transfer has already settled or when
    /// `t_max` is not in the future.
    pub fn run_until_any_settled(&mut self, ids: &[TransferId], t_max: f64) -> f64 {
        let target = t_max.max(self.clock);
        self.drive_until(Some(target), Some(ids));
        self.clock
    }

    /// Add a host with `cpus` cores.
    pub fn add_host(&mut self, name: &str, cpus: u32) -> HostId {
        self.topo.add_host(name, cpus)
    }

    /// Host name lookup.
    pub fn host_name(&self, h: HostId) -> &str {
        &self.topo.hosts[h.0 as usize].name
    }

    /// Find a host by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.topo
            .hosts
            .iter()
            .position(|h| h.name == name)
            .map(|i| HostId(i as u32))
    }

    /// Connect two hosts with a duplex link.
    pub fn connect(&mut self, a: HostId, b: HostId, spec: LinkSpec) -> LinkId {
        self.topo.connect(a, b, spec)
    }

    /// All link ids in the topology (for fault-storm generation).
    pub fn link_ids(&self) -> Vec<LinkId> {
        (0..self.topo.links.len() as u32).map(LinkId).collect()
    }

    /// Install a fault schedule. Replaces any previous schedule; takes
    /// effect from the current clock onward.
    pub fn set_fault_schedule(&mut self, faults: FaultSchedule) {
        self.faults = faults;
    }

    /// The installed fault schedule.
    pub fn fault_schedule(&self) -> &FaultSchedule {
        &self.faults
    }

    /// Is `host` up at the current simulated time?
    pub fn host_up(&self, host: HostId) -> bool {
        !self.faults.host_down(host, self.clock)
    }

    /// Earliest instant `>=` now at which `host` is up (now itself when
    /// already up) — the basis for retry-after hints.
    pub fn host_up_after(&self, host: HostId) -> f64 {
        self.faults.host_up_after(host, self.clock)
    }

    /// Like [`SimNet::transfer`], but returns `None` instead of
    /// panicking when no route exists between the endpoints. Federation
    /// layers use this so a mis-registered site degrades to a typed
    /// error rather than aborting the whole process.
    pub fn try_transfer(&mut self, src: HostId, dst: HostId, bytes: f64) -> Option<TransferId> {
        self.topo.route(src, dst)?;
        Some(self.transfer(src, dst, bytes))
    }

    /// Begin transferring `bytes` from `src` to `dst` at the current time.
    /// Panics if no route exists.
    pub fn transfer(&mut self, src: HostId, dst: HostId, bytes: f64) -> TransferId {
        assert!(bytes >= 0.0 && bytes.is_finite(), "invalid byte count");
        let hops = self.topo.route(src, dst).unwrap_or_else(|| {
            panic!(
                "no route {} -> {}",
                self.host_name(src),
                self.host_name(dst)
            )
        });
        let latency = self.topo.path_latency(&hops);
        let path_hosts = self.topo.path_hosts(src, &hops);
        let id = TransferId(self.transfers.len() as u64);
        // A transfer started towards (or through) a dead host observes
        // the failure immediately.
        let dead = path_hosts
            .iter()
            .find(|&&h| self.faults.host_down(h, self.clock))
            .copied();
        // Local (same-host) or empty transfers complete immediately.
        let done = dead.is_none() && (hops.is_empty() || bytes == 0.0);
        self.transfers.push(Transfer {
            bytes,
            remaining: if done { 0.0 } else { bytes },
            hops,
            path_hosts,
            start: self.clock,
            activate_at: self.clock + latency,
            done_at: if done {
                Some(self.clock + latency)
            } else {
                None
            },
            failed_at: dead.map(|_| self.clock),
            failure: dead.map(TransferFailure::HostDown),
        });
        id
    }

    /// Begin a CPU job of `cpu_secs` seconds of single-core work on `host`.
    pub fn job(&mut self, host: HostId, cpu_secs: f64) -> JobId {
        assert!(cpu_secs >= 0.0 && cpu_secs.is_finite(), "invalid job size");
        let id = JobId(self.jobs.len() as u64);
        let dead = self.faults.host_down(host, self.clock);
        self.jobs.push(Job {
            host,
            cpu_secs,
            remaining: cpu_secs,
            start: self.clock,
            done_at: if cpu_secs == 0.0 && !dead {
                Some(self.clock)
            } else {
                None
            },
            failed_at: dead.then_some(self.clock),
        });
        id
    }

    /// Completion record for a transfer, if it has finished.
    pub fn transfer_record(&self, id: TransferId) -> Option<TransferRecord> {
        let t = &self.transfers[id.0 as usize];
        t.done_at.map(|end| TransferRecord {
            start: t.start,
            end,
            bytes: t.bytes,
        })
    }

    /// Completion record for a job, if it has finished.
    pub fn job_record(&self, id: JobId) -> Option<JobRecord> {
        let j = &self.jobs[id.0 as usize];
        j.done_at.map(|end| JobRecord {
            start: j.start,
            end,
            cpu_secs: j.cpu_secs,
        })
    }

    /// True when the job was killed by a host crash.
    pub fn job_failed(&self, id: JobId) -> bool {
        self.jobs[id.0 as usize].failed_at.is_some()
    }

    /// Observable state of a transfer.
    pub fn transfer_status(&self, id: TransferId) -> TransferStatus {
        let t = &self.transfers[id.0 as usize];
        if let Some(end) = t.done_at {
            TransferStatus::Done(TransferRecord {
                start: t.start,
                end,
                bytes: t.bytes,
            })
        } else if let Some(at) = t.failed_at {
            TransferStatus::Failed {
                at,
                bytes_moved: t.bytes - t.remaining,
                reason: t.failure.clone().unwrap_or(TransferFailure::Cancelled),
            }
        } else {
            TransferStatus::InFlight {
                bytes_moved: t.bytes - t.remaining,
            }
        }
    }

    /// Bytes a transfer has delivered so far (full size once done).
    pub fn transfer_bytes_moved(&self, id: TransferId) -> f64 {
        let t = &self.transfers[id.0 as usize];
        t.bytes - t.remaining
    }

    /// Abort an in-flight transfer at the current instant. Bytes already
    /// delivered stay counted (supporting offset-based resume). No-op on
    /// transfers that already finished or failed.
    pub fn cancel_transfer(&mut self, id: TransferId) {
        let clock = self.clock;
        let t = &mut self.transfers[id.0 as usize];
        if t.active() {
            t.failed_at = Some(clock);
            t.failure = Some(TransferFailure::Cancelled);
        }
    }

    /// Total bytes that have crossed `link` in either direction.
    pub fn link_bytes(&self, link: LinkId) -> f64 {
        self.link_bytes.get(&link).copied().unwrap_or(0.0)
    }

    /// True when no transfer or job is still running (failed work counts
    /// as settled).
    pub fn is_idle(&self) -> bool {
        self.transfers.iter().all(|t| !t.active()) && self.jobs.iter().all(|j| !j.active())
    }

    /// Per-flow rates (bytes/sec) for currently *flowing* transfers, and
    /// per-job progress rates, under equal per-link / per-host sharing.
    #[allow(clippy::type_complexity)]
    fn compute_rates(&self) -> (Vec<(usize, f64)>, Vec<(usize, f64)>) {
        // Flows stalled by a zero-capacity hop (link outage) consume no
        // bandwidth anywhere, so they must not count as users on their
        // healthy hops — otherwise a dead flow would halve a live one.
        let hop_capacity = |h: Hop| -> f64 {
            self.topo.profile(h).at(self.clock) * self.faults.link_factor(h.link, self.clock)
        };
        // Count flows per directed hop.
        let mut users: HashMap<Hop, u32> = HashMap::new();
        let mut flowing: Vec<usize> = Vec::new();
        for (i, t) in self.transfers.iter().enumerate() {
            if t.active() && t.activate_at <= self.clock + EPS {
                if t.hops.iter().any(|&h| hop_capacity(h) == 0.0) {
                    continue; // stalled: contributes no load
                }
                flowing.push(i);
                for &h in &t.hops {
                    *users.entry(h).or_insert(0) += 1;
                }
            }
        }
        let mut trates = Vec::with_capacity(flowing.len());
        for &i in &flowing {
            let t = &self.transfers[i];
            let mut rate_bits = f64::INFINITY;
            for &h in &t.hops {
                let share = hop_capacity(h) / f64::from(users[&h]);
                rate_bits = rate_bits.min(share);
            }
            trates.push((i, rate_bits / 8.0));
        }
        // Jobs: each active job on a host progresses at min(1, cpus/n).
        let mut per_host: HashMap<HostId, u32> = HashMap::new();
        let mut running: Vec<usize> = Vec::new();
        for (i, j) in self.jobs.iter().enumerate() {
            if j.active() {
                running.push(i);
                *per_host.entry(j.host).or_insert(0) += 1;
            }
        }
        let mut jrates = Vec::with_capacity(running.len());
        for &i in &running {
            let j = &self.jobs[i];
            let n = f64::from(per_host[&j.host]);
            let cpus = f64::from(self.topo.hosts[j.host.0 as usize].cpus);
            jrates.push((i, (cpus / n).min(1.0)));
        }
        (trates, jrates)
    }

    fn drive(&mut self, until: Option<f64>) {
        self.drive_until(until, None);
    }

    /// The event loop. `until` bounds the clock; `stop_any` (when set)
    /// ends the drive as soon as any listed transfer stops being active,
    /// checked before each event step so an already-settled id returns
    /// without advancing time.
    fn drive_until(&mut self, until: Option<f64>, stop_any: Option<&[TransferId]>) {
        let mut iters = 0u64;
        loop {
            iters += 1;
            assert!(
                iters <= 50_000_000,
                "simulation stalled at clock={} (until {until:?})",
                self.clock
            );
            self.apply_host_faults();
            if let Some(ids) = stop_any {
                if ids
                    .iter()
                    .any(|&id| !self.transfers[id.0 as usize].active())
                {
                    return;
                }
            }
            let (trates, jrates) = self.compute_rates();

            // Next event: completion, activation, or profile boundary.
            let mut next = until.unwrap_or(f64::INFINITY);
            let mut have_event = until.is_some();
            for &(i, rate) in &trates {
                if rate > 0.0 {
                    let eta = self.clock + self.transfers[i].remaining / rate;
                    if eta < next {
                        next = eta;
                    }
                    have_event = true;
                }
            }
            for &(i, rate) in &jrates {
                let eta = self.clock + self.jobs[i].remaining / rate;
                if eta < next {
                    next = eta;
                }
                have_event = true;
            }
            for t in &self.transfers {
                if t.active() && t.activate_at > self.clock + EPS {
                    if t.activate_at < next {
                        next = t.activate_at;
                    }
                    have_event = true;
                }
            }
            // Profile boundaries only matter while flows are moving.
            if !trates.is_empty() {
                let mut hops_in_use: Vec<Hop> = Vec::new();
                for &(i, _) in &trates {
                    hops_in_use.extend_from_slice(&self.transfers[i].hops);
                }
                for h in hops_in_use {
                    if let Some(b) = self.topo.profile(h).next_boundary(self.clock) {
                        if b < next {
                            next = b;
                        }
                    }
                }
            }
            // Fault boundaries matter while any work is unfinished: an
            // outage ending un-stalls a flow, a crash starting kills one.
            if !self.faults.is_empty()
                && (self.transfers.iter().any(|t| t.active())
                    || self.jobs.iter().any(|j| j.active()))
            {
                if let Some(b) = self.faults.next_change(self.clock) {
                    if b < next {
                        next = b;
                    }
                    have_event = true;
                }
            }

            if !have_event || !next.is_finite() {
                return; // idle and no target time
            }
            let dt = (next - self.clock).max(0.0);

            // Advance all flows and jobs by dt at current rates.
            for &(i, rate) in &trates {
                let t = &mut self.transfers[i];
                let moved = (rate * dt).min(t.remaining);
                t.remaining -= moved;
                for &h in &t.hops.clone() {
                    *self.link_bytes.entry(h.link).or_insert(0.0) += moved;
                }
                if t.remaining <= t.bytes * 1e-12 + BYTE_EPS {
                    t.remaining = 0.0;
                    t.done_at = Some(next);
                }
            }
            for &(i, rate) in &jrates {
                let j = &mut self.jobs[i];
                let done = (rate * dt).min(j.remaining);
                j.remaining -= done;
                if j.remaining <= j.cpu_secs * 1e-12 + BYTE_EPS {
                    j.remaining = 0.0;
                    j.done_at = Some(next);
                }
            }
            self.clock = next;

            if let Some(target) = until {
                if self.clock + EPS >= target {
                    self.clock = target;
                    // Crash boundaries coinciding with the stop target
                    // must still be observed before handing back control.
                    self.apply_host_faults();
                    return;
                }
            } else if self.is_idle() {
                return;
            }
        }
    }

    /// Abort every active transfer whose path crosses a host that is
    /// down right now, and every active job on a down host. In-flight
    /// state on a crashed host is lost by definition; delivered bytes
    /// stay counted so clients can resume from an offset.
    fn apply_host_faults(&mut self) {
        if self.faults.is_empty() {
            return;
        }
        let clock = self.clock;
        for t in &mut self.transfers {
            if !t.active() {
                continue;
            }
            if let Some(&h) = t
                .path_hosts
                .iter()
                .find(|&&h| self.faults.host_down(h, clock))
            {
                t.failed_at = Some(clock);
                t.failure = Some(TransferFailure::HostDown(h));
            }
        }
        for j in &mut self.jobs {
            if j.active() && self.faults.host_down(j.host, clock) {
                j.failed_at = Some(clock);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{BandwidthProfile, Mbit, SECS_PER_DAY};

    const MB: f64 = 1_000_000.0;

    fn two_hosts(bps: f64) -> (SimNet, HostId, HostId) {
        let mut net = SimNet::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        net.connect(a, b, LinkSpec::symmetric(bps, 0.0));
        (net, a, b)
    }

    #[test]
    fn single_transfer_exact_time() {
        // The paper's Table 1 first row: 85 MB at 0.25 Mbit/s = 2720 s.
        let (mut net, a, b) = two_hosts(Mbit(0.25));
        let id = net.transfer(a, b, 85.0 * MB);
        net.run_until_idle();
        let rec = net.transfer_record(id).unwrap();
        assert!((rec.duration() - 2720.0).abs() < 1e-6, "{}", rec.duration());
    }

    #[test]
    fn latency_added_once() {
        let mut net = SimNet::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        net.connect(
            a,
            b,
            LinkSpec {
                latency_s: 0.5,
                ab: BandwidthProfile::constant(8.0 * MB), // 1 MB/s
                ba: BandwidthProfile::constant(8.0 * MB),
            },
        );
        let id = net.transfer(a, b, 2.0 * MB);
        net.run_until_idle();
        let rec = net.transfer_record(id).unwrap();
        assert!((rec.duration() - 2.5).abs() < 1e-9, "{}", rec.duration());
    }

    #[test]
    fn fair_sharing_two_flows() {
        let (mut net, a, b) = two_hosts(Mbit(8.0)); // 1 MB/s
        let t1 = net.transfer(a, b, 10.0 * MB);
        let t2 = net.transfer(a, b, 10.0 * MB);
        net.run_until_idle();
        // Both share the link: each finishes at 20 s.
        assert!((net.transfer_record(t1).unwrap().duration() - 20.0).abs() < 1e-6);
        assert!((net.transfer_record(t2).unwrap().duration() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn short_flow_releases_bandwidth() {
        let (mut net, a, b) = two_hosts(Mbit(8.0)); // 1 MB/s
        let long = net.transfer(a, b, 10.0 * MB);
        let short = net.transfer(a, b, 2.0 * MB);
        net.run_until_idle();
        // Shared until the short one finishes at 4 s (2 MB at 0.5 MB/s);
        // the long one then has 8 MB left at full rate: 4 + 8 = 12 s.
        assert!((net.transfer_record(short).unwrap().duration() - 4.0).abs() < 1e-6);
        assert!((net.transfer_record(long).unwrap().duration() - 12.0).abs() < 1e-6);
    }

    #[test]
    fn opposite_directions_do_not_share() {
        let (mut net, a, b) = two_hosts(Mbit(8.0));
        let t1 = net.transfer(a, b, 10.0 * MB);
        let t2 = net.transfer(b, a, 10.0 * MB);
        net.run_until_idle();
        assert!((net.transfer_record(t1).unwrap().duration() - 10.0).abs() < 1e-6);
        assert!((net.transfer_record(t2).unwrap().duration() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn bottleneck_governs_multihop() {
        let mut net = SimNet::new();
        let a = net.add_host("a", 1);
        let m = net.add_host("m", 1);
        let b = net.add_host("b", 1);
        net.connect(a, m, LinkSpec::symmetric(Mbit(80.0), 0.0));
        net.connect(m, b, LinkSpec::symmetric(Mbit(8.0), 0.0)); // 1 MB/s bottleneck
        let id = net.transfer(a, b, 5.0 * MB);
        net.run_until_idle();
        assert!((net.transfer_record(id).unwrap().duration() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn profile_boundary_mid_transfer() {
        // 1 MB/s until hour 1/3600·? — use a profile that doubles at 01:00.
        let mut net = SimNet::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        let prof = BandwidthProfile::from_segments(&[(0.0, 8.0 * MB), (1.0, 16.0 * MB)]);
        net.connect(
            a,
            b,
            LinkSpec {
                latency_s: 0.0,
                ab: prof.clone(),
                ba: prof,
            },
        );
        // Start 100 s before the boundary with 300 MB to move:
        net.run_until(3500.0);
        let id = net.transfer(a, b, 300.0 * MB);
        net.run_until_idle();
        // 100 s at 1 MB/s = 100 MB, then 200 MB at 2 MB/s = 100 s → 200 s.
        let rec = net.transfer_record(id).unwrap();
        assert!((rec.duration() - 200.0).abs() < 1e-6, "{}", rec.duration());
    }

    #[test]
    fn day_evening_wraps_next_day() {
        let mut net = SimNet::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        let prof = BandwidthProfile::day_evening(Mbit(0.25), Mbit(1.94));
        net.connect(
            a,
            b,
            LinkSpec {
                latency_s: 0.0,
                ab: prof.clone(),
                ba: prof,
            },
        );
        // Start an evening transfer at 20:00; it should run at 1.94 Mbit/s.
        net.run_until(BandwidthProfile::instant(0, 20.0));
        let id = net.transfer(a, b, 85.0 * MB);
        net.run_until_idle();
        let rec = net.transfer_record(id).unwrap();
        let expect = 85.0 * MB * 8.0 / Mbit(1.94);
        assert!((rec.duration() - expect).abs() < 1e-6);
        assert!(rec.end < SECS_PER_DAY, "finishes the same night");
    }

    #[test]
    fn cpu_jobs_share_cores() {
        let mut net = SimNet::new();
        let h = net.add_host("h", 2);
        let j1 = net.job(h, 10.0);
        let j2 = net.job(h, 10.0);
        let j3 = net.job(h, 10.0);
        let j4 = net.job(h, 10.0);
        net.run_until_idle();
        // 4 jobs on 2 cores: each runs at 0.5x → 20 s.
        for j in [j1, j2, j3, j4] {
            assert!((net.job_record(j).unwrap().duration() - 20.0).abs() < 1e-6);
        }
    }

    #[test]
    fn job_alone_runs_full_speed() {
        let mut net = SimNet::new();
        let h = net.add_host("h", 4);
        let j = net.job(h, 7.0);
        net.run_until_idle();
        assert!((net.job_record(j).unwrap().duration() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn local_transfer_instant() {
        let mut net = SimNet::new();
        let a = net.add_host("a", 1);
        let id = net.transfer(a, a, 100.0 * MB);
        assert!(net.transfer_record(id).is_some());
    }

    #[test]
    fn link_byte_accounting() {
        let (mut net, a, b) = two_hosts(Mbit(8.0));
        net.transfer(a, b, 3.0 * MB);
        net.transfer(b, a, 2.0 * MB);
        net.run_until_idle();
        assert!((net.link_bytes(LinkId(0)) - 5.0 * MB).abs() < 1.0);
    }

    #[test]
    fn run_until_partial_progress() {
        let (mut net, a, b) = two_hosts(Mbit(8.0)); // 1 MB/s
        let id = net.transfer(a, b, 10.0 * MB);
        net.run_until(4.0);
        assert!(net.transfer_record(id).is_none());
        assert_eq!(net.now(), 4.0);
        net.run_until_idle();
        assert!((net.transfer_record(id).unwrap().duration() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_transfer_completes() {
        let (mut net, a, b) = two_hosts(Mbit(1.0));
        let id = net.transfer(a, b, 0.0);
        assert!(net.transfer_record(id).is_some());
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unroutable_transfer_panics() {
        let mut net = SimNet::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        net.transfer(a, b, 1.0);
    }

    // --- fault injection ---

    #[test]
    fn outage_stalls_then_resumes_exactly() {
        use crate::fault::FaultSchedule;
        let (mut net, a, b) = two_hosts(Mbit(8.0)); // 1 MB/s
        let mut faults = FaultSchedule::new();
        faults.link_outage(LinkId(0), 3.0, 10.0);
        net.set_fault_schedule(faults);
        let id = net.transfer(a, b, 5.0 * MB);
        net.run_until_idle();
        // 3 s moving, 7 s dark, 2 s moving: finishes at 12 s exactly.
        let rec = net.transfer_record(id).unwrap();
        assert!((rec.duration() - 12.0).abs() < 1e-6, "{}", rec.duration());
    }

    #[test]
    fn degraded_window_slows_proportionally() {
        use crate::fault::FaultSchedule;
        let (mut net, a, b) = two_hosts(Mbit(8.0)); // 1 MB/s
        let mut faults = FaultSchedule::new();
        faults.link_degraded(LinkId(0), 0.0, 100.0, 0.5);
        net.set_fault_schedule(faults);
        let id = net.transfer(a, b, 5.0 * MB);
        net.run_until_idle();
        // Half capacity the whole way: 10 s.
        let rec = net.transfer_record(id).unwrap();
        assert!((rec.duration() - 10.0).abs() < 1e-6, "{}", rec.duration());
    }

    #[test]
    fn stalled_flow_releases_bandwidth_to_others() {
        use crate::fault::FaultSchedule;
        use crate::profile::BandwidthProfile;
        // a—hub at 2 MB/s shared; hub—b dead, hub—c alive.
        let mut net = SimNet::new();
        let a = net.add_host("a", 1);
        let hub = net.add_host("hub", 1);
        let b = net.add_host("b", 1);
        let c = net.add_host("c", 1);
        let shared = net.connect(
            a,
            hub,
            LinkSpec {
                latency_s: 0.0,
                ab: BandwidthProfile::constant(16.0 * MB),
                ba: BandwidthProfile::constant(16.0 * MB),
            },
        );
        let to_b = net.connect(hub, b, LinkSpec::symmetric(16.0 * MB, 0.0));
        net.connect(hub, c, LinkSpec::symmetric(16.0 * MB, 0.0));
        let _ = shared;
        let mut faults = FaultSchedule::new();
        faults.link_outage(to_b, 0.0, 100.0);
        net.set_fault_schedule(faults);
        let stalled = net.transfer(a, b, 1.0 * MB);
        let live = net.transfer(a, c, 10.0 * MB);
        net.run_until(50.0);
        // The live flow must get the full 2 MB/s: done at 5 s, not 10.
        let rec = net.transfer_record(live).unwrap();
        assert!((rec.duration() - 5.0).abs() < 1e-6, "{}", rec.duration());
        assert!(net.transfer_record(stalled).is_none());
    }

    #[test]
    fn host_crash_aborts_inflight_transfer() {
        use crate::fault::FaultSchedule;
        let (mut net, a, b) = two_hosts(Mbit(8.0)); // 1 MB/s
        let mut faults = FaultSchedule::new();
        faults.host_crash(b, 4.0, 30.0);
        net.set_fault_schedule(faults);
        let id = net.transfer(a, b, 10.0 * MB);
        net.run_until_idle();
        match net.transfer_status(id) {
            TransferStatus::Failed {
                at,
                bytes_moved,
                reason,
            } => {
                assert!((at - 4.0).abs() < 1e-9);
                assert!((bytes_moved - 4.0 * MB).abs() < 1.0);
                assert_eq!(reason, TransferFailure::HostDown(b));
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert!(net.transfer_record(id).is_none());
        assert!(net.is_idle(), "failed transfer counts as settled");
    }

    #[test]
    fn transfer_to_dead_host_fails_immediately() {
        use crate::fault::FaultSchedule;
        let (mut net, a, b) = two_hosts(Mbit(8.0));
        let mut faults = FaultSchedule::new();
        faults.host_crash(b, 0.0, 60.0);
        net.set_fault_schedule(faults);
        let id = net.transfer(a, b, 1.0 * MB);
        assert!(matches!(
            net.transfer_status(id),
            TransferStatus::Failed { bytes_moved, .. } if bytes_moved == 0.0
        ));
        assert!(!net.host_up(b));
        assert_eq!(net.host_up_after(b), 60.0);
    }

    #[test]
    fn cancel_preserves_moved_bytes_for_resume() {
        let (mut net, a, b) = two_hosts(Mbit(8.0)); // 1 MB/s
        let id = net.transfer(a, b, 10.0 * MB);
        net.run_until(4.0);
        net.cancel_transfer(id);
        match net.transfer_status(id) {
            TransferStatus::Failed {
                bytes_moved,
                reason,
                ..
            } => {
                assert!((bytes_moved - 4.0 * MB).abs() < 1.0);
                assert_eq!(reason, TransferFailure::Cancelled);
            }
            other => panic!("expected cancelled, got {other:?}"),
        }
        // Resume the remainder: completes in 6 more seconds.
        let rest = 10.0 * MB - net.transfer_bytes_moved(id);
        let id2 = net.transfer(a, b, rest);
        net.run_until_idle();
        let rec = net.transfer_record(id2).unwrap();
        assert!((rec.duration() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn crash_kills_job_on_host() {
        use crate::fault::FaultSchedule;
        let mut net = SimNet::new();
        let h = net.add_host("h", 1);
        let mut faults = FaultSchedule::new();
        faults.host_crash(h, 5.0, 20.0);
        net.set_fault_schedule(faults);
        let j = net.job(h, 10.0);
        net.run_until_idle();
        assert!(net.job_failed(j));
        assert!(net.job_record(j).is_none());
    }

    // --- event-driven settling ---

    #[test]
    fn any_settled_stops_at_first_listed_completion() {
        // Two disjoint paths from a: a—b (fast) and a—c (slow).
        let mut net = SimNet::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        let c = net.add_host("c", 1);
        net.connect(a, b, LinkSpec::symmetric(Mbit(8.0), 0.0)); // 1 MB/s
        net.connect(a, c, LinkSpec::symmetric(Mbit(8.0), 0.0));
        let fast = net.transfer(a, b, 2.0 * MB);
        let slow = net.transfer(a, c, 10.0 * MB);
        let t = net.run_until_any_settled(&[fast, slow], 1e9);
        assert!((t - 2.0).abs() < 1e-6, "stops at the fast completion: {t}");
        assert!(net.transfer_record(fast).is_some());
        assert!(matches!(
            net.transfer_status(slow),
            TransferStatus::InFlight { .. }
        ));
    }

    #[test]
    fn any_settled_ignores_unlisted_transfers() {
        let mut net = SimNet::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        let c = net.add_host("c", 1);
        net.connect(a, b, LinkSpec::symmetric(Mbit(8.0), 0.0));
        net.connect(a, c, LinkSpec::symmetric(Mbit(8.0), 0.0));
        let other = net.transfer(a, b, 1.0 * MB); // settles at 1 s — unlisted
        let mine = net.transfer(a, c, 5.0 * MB);
        let t = net.run_until_any_settled(&[mine], 1e9);
        // The unlisted flow finishing at 1 s must not end the wait.
        assert!((t - 5.0).abs() < 1e-6, "waits for the listed flow: {t}");
        assert!(net.transfer_record(other).is_some());
        assert!(net.transfer_record(mine).is_some());
    }

    #[test]
    fn any_settled_already_settled_returns_without_advancing() {
        let (mut net, a, b) = two_hosts(Mbit(8.0));
        let id = net.transfer(a, b, 1.0 * MB);
        net.run_until_idle();
        let before = net.now();
        let t = net.run_until_any_settled(&[id], 1e9);
        assert_eq!(t, before);
    }

    #[test]
    fn any_settled_caps_at_t_max() {
        let (mut net, a, b) = two_hosts(Mbit(8.0)); // 1 MB/s
        let id = net.transfer(a, b, 10.0 * MB);
        let t = net.run_until_any_settled(&[id], 3.0);
        assert!((t - 3.0).abs() < 1e-9);
        assert!(matches!(
            net.transfer_status(id),
            TransferStatus::InFlight { bytes_moved } if (bytes_moved - 3.0 * MB).abs() < 1.0
        ));
    }

    #[test]
    fn any_settled_observes_host_crash_failures() {
        use crate::fault::FaultSchedule;
        let (mut net, a, b) = two_hosts(Mbit(8.0));
        let mut faults = FaultSchedule::new();
        faults.host_crash(b, 4.0, 30.0);
        net.set_fault_schedule(faults);
        let id = net.transfer(a, b, 10.0 * MB);
        let t = net.run_until_any_settled(&[id], 1e9);
        assert!((t - 4.0).abs() < 1e-9, "returns at the crash instant: {t}");
        assert!(matches!(
            net.transfer_status(id),
            TransferStatus::Failed { .. }
        ));
    }

    #[test]
    fn fault_run_is_reproducible() {
        use crate::fault::{FaultSchedule, StormSpec};
        let run = || {
            let mut net = SimNet::new();
            let a = net.add_host("a", 1);
            let b = net.add_host("b", 1);
            let l = net.connect(a, b, LinkSpec::symmetric(Mbit(8.0), 0.0));
            let spec = StormSpec::moderate(7, (0.0, 60.0));
            net.set_fault_schedule(FaultSchedule::storm(&spec, &[l], &[b]));
            let id = net.transfer(a, b, 40.0 * MB);
            net.run_until_idle();
            format!("{:?}", net.transfer_status(id))
        };
        assert_eq!(run(), run());
    }
}
