//! Time-of-day bandwidth profiles.

/// Seconds in a simulated day.
pub const SECS_PER_DAY: f64 = 86_400.0;

/// Convenience: megabits/second to bits/second.
#[allow(non_snake_case)]
pub fn Mbit(mbit_per_sec: f64) -> f64 {
    mbit_per_sec * 1_000_000.0
}

/// Bandwidth in one link direction as a piecewise-constant, 24h-cyclic
/// function of simulated time.
///
/// Segments are `(start_hour, bits_per_sec)` pairs sorted by hour; a
/// segment extends until the next one (cyclically). The paper's regimes
/// map to two segments: Day (08:00) and Evening (18:00).
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthProfile {
    /// `(start_hour in [0,24), bits_per_sec)`, sorted by hour, non-empty.
    segments: Vec<(f64, f64)>,
}

impl BandwidthProfile {
    /// Constant bandwidth at all times.
    pub fn constant(bits_per_sec: f64) -> Self {
        assert!(bits_per_sec > 0.0, "bandwidth must be positive");
        BandwidthProfile {
            segments: vec![(0.0, bits_per_sec)],
        }
    }

    /// Build from `(start_hour, bits_per_sec)` pairs. Hours must lie in
    /// `[0, 24)`; the list is sorted internally.
    pub fn from_segments(segments: &[(f64, f64)]) -> Self {
        assert!(!segments.is_empty(), "profile needs at least one segment");
        let mut segs = segments.to_vec();
        for &(h, bw) in &segs {
            assert!((0.0..24.0).contains(&h), "segment hour {h} out of range");
            assert!(bw > 0.0, "bandwidth must be positive");
        }
        segs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("hours are finite"));
        BandwidthProfile { segments: segs }
    }

    /// The paper's Day/Evening regime: `day_bps` from 08:00, `evening_bps`
    /// from 18:00 (through the night until 08:00).
    pub fn day_evening(day_bps: f64, evening_bps: f64) -> Self {
        Self::from_segments(&[(8.0, day_bps), (18.0, evening_bps)])
    }

    /// Bandwidth in bits/second at simulated time `t` (seconds).
    pub fn at(&self, t: f64) -> f64 {
        let hour = (t.rem_euclid(SECS_PER_DAY)) / 3600.0;
        // Find the last segment whose start hour <= current hour; if the
        // hour precedes every segment, the profile wraps from the last one.
        let mut bw = self.segments.last().expect("non-empty").1;
        for &(h, b) in &self.segments {
            if h <= hour {
                bw = b;
            } else {
                break;
            }
        }
        bw
    }

    /// The next simulated instant strictly after `t` at which the
    /// bandwidth may change, or `None` for constant profiles.
    pub fn next_boundary(&self, t: f64) -> Option<f64> {
        if self.segments.len() <= 1 {
            return None;
        }
        let day_start = (t / SECS_PER_DAY).floor() * SECS_PER_DAY;
        let hour = (t - day_start) / 3600.0;
        for &(h, _) in &self.segments {
            if h * 3600.0 + day_start > t && h > hour {
                return Some(day_start + h * 3600.0);
            }
        }
        // Wrap to the first segment of the next day.
        Some(day_start + SECS_PER_DAY + self.segments[0].0 * 3600.0)
    }

    /// Simulated time (seconds since day 0) for `hour` on `day`.
    pub fn instant(day: u64, hour: f64) -> f64 {
        day as f64 * SECS_PER_DAY + hour * 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile() {
        let p = BandwidthProfile::constant(Mbit(10.0));
        assert_eq!(p.at(0.0), 10_000_000.0);
        assert_eq!(p.at(123456.0), 10_000_000.0);
        assert_eq!(p.next_boundary(0.0), None);
    }

    #[test]
    fn day_evening_regimes() {
        // The paper's "To Southampton" direction.
        let p = BandwidthProfile::day_evening(Mbit(0.25), Mbit(0.58));
        assert_eq!(p.at(BandwidthProfile::instant(0, 12.0)), 250_000.0); // noon
        assert_eq!(p.at(BandwidthProfile::instant(0, 20.0)), 580_000.0); // evening
                                                                         // 02:00 is before the 08:00 segment, so the evening rate wraps.
        assert_eq!(p.at(BandwidthProfile::instant(0, 2.0)), 580_000.0);
        // Works on later days too.
        assert_eq!(p.at(BandwidthProfile::instant(5, 12.0)), 250_000.0);
    }

    #[test]
    fn boundaries() {
        let p = BandwidthProfile::day_evening(Mbit(1.0), Mbit(2.0));
        let noon = BandwidthProfile::instant(0, 12.0);
        assert_eq!(
            p.next_boundary(noon),
            Some(BandwidthProfile::instant(0, 18.0))
        );
        let evening = BandwidthProfile::instant(0, 20.0);
        assert_eq!(
            p.next_boundary(evening),
            Some(BandwidthProfile::instant(1, 8.0))
        );
        // Exactly at a boundary: the next one is strictly later.
        let at6pm = BandwidthProfile::instant(0, 18.0);
        assert_eq!(
            p.next_boundary(at6pm),
            Some(BandwidthProfile::instant(1, 8.0))
        );
    }

    #[test]
    fn unsorted_segments_are_sorted() {
        let p = BandwidthProfile::from_segments(&[(18.0, 2.0), (8.0, 1.0)]);
        assert_eq!(p.at(BandwidthProfile::instant(0, 9.0)), 1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = BandwidthProfile::constant(0.0);
    }
}
