//! A deterministic wide-area-network simulator.
//!
//! The paper's motivation is quantitative: over the University of
//! Southampton's 10 Mbit/s SuperJANET connection, repeated ftp measurements
//! to/from Queen Mary & Westfield College gave effective throughputs of
//! only 0.25–1.94 Mbit/s depending on the direction and time of day, which
//! makes shipping multi-hundred-megabyte simulation outputs to a central
//! archive infeasible ("Experimental ftp bandwidth measurements", Table 1).
//! EASIA's answer — archive data where it is generated, move computation to
//! the data — is an argument about *bytes crossing slow links*.
//!
//! This crate reproduces that environment as a fluid-flow discrete-event
//! simulation:
//!
//! * [`profile::BandwidthProfile`] — per-direction link bandwidth as a
//!   piecewise function of simulated time-of-day (the paper's Day/Evening
//!   regimes),
//! * [`topology`] — named hosts and asymmetric duplex links with latency,
//!   shortest-path routing,
//! * [`engine::SimNet`] — the simulator: byte transfers share each link's
//!   capacity max–min fairly, CPU jobs share host cores fairly, and the
//!   virtual clock advances between completions and profile boundaries.
//!
//! All arithmetic is on `f64` seconds and bytes; transfers limited by a
//! single bottleneck link complete in exactly `bytes·8/bits_per_sec`
//! seconds, which is why Experiment E1 reproduces the paper's table to the
//! second.

pub mod engine;
pub mod fault;
pub mod profile;
pub mod retry;
pub mod topology;

pub use engine::{
    JobId, JobRecord, SimNet, TransferFailure, TransferId, TransferRecord, TransferStatus,
};
pub use fault::{FaultSchedule, HostFault, LinkFault, StormSpec};
pub use profile::{BandwidthProfile, Mbit, SECS_PER_DAY};
pub use retry::{retry_after_secs, RetryPolicy};
pub use topology::{HostId, LinkId, LinkSpec};

/// Format a duration in seconds the way the paper's Table 1 does:
/// `4h50m08s`, `45m20s`, `5m51s`.
pub fn format_hms(total_secs: f64) -> String {
    let s = total_secs.round() as u64;
    let (h, m, sec) = (s / 3600, (s % 3600) / 60, s % 60);
    if h > 0 {
        format!("{h}h{m:02}m{sec:02}s")
    } else {
        format!("{m}m{sec:02}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hms_formatting_matches_paper_style() {
        assert_eq!(format_hms(2720.0), "45m20s");
        assert_eq!(format_hms(17408.0), "4h50m08s");
        assert_eq!(format_hms(351.0), "5m51s");
        assert_eq!(format_hms(0.4), "0m00s");
    }
}
