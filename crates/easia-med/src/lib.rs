//! # easia-med — SQL/MED foreign-data-wrapper federation
//!
//! The paper's architecture puts one archive hub per site (Southampton,
//! and in principle the other HPC centres on its 0.25–1.94 Mbit/s
//! JANET links) and federates them with SQL/MED: each hub registers the
//! others as *foreign servers* and exposes their partitions of the
//! shared catalog tables as *foreign tables*. A browse query at one hub
//! then transparently unions rows held locally with rows fetched from
//! the other sites.
//!
//! This crate is the hub-side machinery for that:
//!
//! * [`catalog`] — `CREATE SERVER` / `CREATE FOREIGN TABLE` /
//!   `IMPORT FOREIGN SCHEMA` registry, with per-partition site keys and
//!   row-count statistics.
//! * [`wire`] — the compact, byte-deterministic row-batch protocol
//!   (scan requests hub→site, row batches site→hub).
//! * [`planner`] — predicate + projection pushdown, top-k
//!   (ORDER BY/LIMIT) pushdown, and site-key partition pruning.
//! * [`remote`] — the thin site-side executor that runs pushed scans.
//! * [`federation`] — scatter-gather execution over the simulated WAN
//!   with a bounded in-flight window, staging-table merge, typed
//!   partial-results policy, and federation metrics.
//! * [`breaker`] — per-site circuit breakers (closed/open/half-open)
//!   with fault-schedule-derived cooldowns.
//! * [`replica`] — the hub's stale-replica cache of small partitions,
//!   invalidated by site write counters shipped in batch headers.
//! * [`prefetch`] — the speculative FK-browse prefetch cache: the next
//!   screen's keyed scans run while the current screen renders, with
//!   parked results invalidated by the federation-wide write
//!   fingerprint.
//! * [`explain`] — the `EXPLAIN FEDERATED` report (pushed vs.
//!   hub-evaluated conjuncts, estimated vs. actual rows shipped,
//!   retries, cache sources, stale serves).

#![deny(missing_docs)]

pub mod breaker;
pub mod catalog;
pub mod explain;
pub mod federation;
pub mod planner;
pub mod prefetch;
pub mod remote;
pub mod replica;
pub mod wire;

pub use breaker::{Breaker, BreakerCheck, BreakerState};
pub use catalog::{CatalogError, FedCatalog, ForeignTable, Partition};
pub use explain::{AggExplain, FedExplain, SiteExplain, SiteSource, StaleSite};
pub use federation::{
    FedError, Federation, PartialPolicy, QueryOutcome, Site, DEFAULT_DEADLINE_SECS,
};
pub use planner::{plan_select, AggPlan, Finisher, TablePlan};
pub use prefetch::{Lookup, PrefetchCache, DEFAULT_PREFETCH_CAPACITY};
pub use remote::{serve_scan, RemoteError, DEFAULT_BATCH_ROWS};
pub use replica::{CacheEntry, ReplicaCache};
pub use wire::{
    decode_batch, encode_batch, AggCall, Batch, PartialAggSpec, ScanRequest, WireError,
};

/// Retry hint used when a site's outage has no scheduled end.
pub const DEFAULT_RETRY_AFTER_SECS: u64 = 30;
