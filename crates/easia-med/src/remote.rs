//! The site-side remote-scan executor.
//!
//! Each foreign server runs one of these against its local `easia-db`
//! instance: decode the scan request, execute the pushed-down SQL, and
//! frame the result rows into bounded batches for shipment back to the
//! hub. It is deliberately thin — all planning lives at the hub, a site
//! just runs the SELECT it is handed.

use crate::wire::{encode_batch, ScanRequest, WireError};
use easia_db::{Database, DbError, Value};

/// Default rows per shipped batch frame.
pub const DEFAULT_BATCH_ROWS: usize = 64;

/// Site-side execution failures.
#[derive(Debug)]
pub enum RemoteError {
    /// Request frame was malformed.
    Wire(WireError),
    /// The pushed SQL failed at the site.
    Db(DbError),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Wire(e) => write!(f, "remote scan: {e}"),
            RemoteError::Db(e) => write!(f, "remote scan: {e}"),
        }
    }
}

impl std::error::Error for RemoteError {}

/// Execute a decoded scan request against the site database, returning
/// the result rows.
pub fn scan_rows(db: &mut Database, req: &ScanRequest) -> Result<Vec<Vec<Value>>, RemoteError> {
    let rs = db
        .execute_with_params(&req.to_sql(), &req.effective_params())
        .map_err(RemoteError::Db)?;
    Ok(rs.rows)
}

/// Execute a wire-encoded scan request end to end: decode, run, and
/// frame the rows into batches of at most `batch_rows`, honouring the
/// request's resume cursor.
pub fn serve_scan(
    db: &mut Database,
    frame: &[u8],
    batch_rows: usize,
) -> Result<Vec<Vec<u8>>, RemoteError> {
    let req = ScanRequest::decode(frame).map_err(RemoteError::Wire)?;
    let rows = scan_rows(db, &req)?;
    let write_counter = db.write_counter();
    Ok(frame_batches(
        &rows,
        batch_rows,
        req.resume_from,
        write_counter,
    ))
}

/// Chunk rows into encoded batch frames, skipping the first
/// `resume_from` batches (a resumed scan re-ships only what the hub is
/// missing — sequence numbers still reflect the position in the *full*
/// stream). A fresh scan always yields at least one frame so the hub
/// can distinguish "empty result" from "no reply".
pub fn frame_batches(
    rows: &[Vec<Value>],
    batch_rows: usize,
    resume_from: u64,
    write_counter: u64,
) -> Vec<Vec<u8>> {
    let size = batch_rows.max(1);
    if rows.is_empty() && resume_from == 0 {
        return vec![encode_batch(&[], 0, write_counter)];
    }
    rows.chunks(size)
        .enumerate()
        .skip(resume_from as usize)
        .map(|(seq, chunk)| encode_batch(chunk, seq as u32, write_counter))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode_batch;

    fn site_db() -> Database {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE SIM (K VARCHAR(10) PRIMARY KEY, N INTEGER)")
            .unwrap();
        for i in 0..5 {
            db.execute(&format!("INSERT INTO SIM VALUES ('k{i}', {i})"))
                .unwrap();
        }
        db
    }

    #[test]
    fn serves_pushed_scan_in_batches() {
        let mut db = site_db();
        let req = ScanRequest {
            table: "SIM".into(),
            columns: vec!["K".into(), "N".into()],
            predicate: "(N >= ?)".into(),
            params: vec![Value::Int(1)],
            order_by: vec![("N".into(), true)],
            limit: None,
            resume_from: 0,
            key_filter: None,
            partial_agg: None,
        };
        let frames = serve_scan(&mut db, &req.encode(), 2).unwrap();
        assert_eq!(frames.len(), 2);
        let batches: Vec<_> = frames.iter().map(|f| decode_batch(f).unwrap()).collect();
        assert_eq!(batches[0].seq, 0);
        assert_eq!(batches[1].seq, 1);
        let rows: Vec<_> = batches.into_iter().flat_map(|b| b.rows).collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], vec![Value::Str("k1".into()), Value::Int(1)]);

        // A resumed request re-ships only the tail, with original
        // sequence numbers.
        let resumed = ScanRequest {
            resume_from: 1,
            ..req
        };
        let tail = serve_scan(&mut db, &resumed.encode(), 2).unwrap();
        assert_eq!(tail.len(), 1);
        let b = decode_batch(&tail[0]).unwrap();
        assert_eq!(b.seq, 1);
        assert_eq!(b.rows.len(), 2);
    }

    #[test]
    fn empty_result_still_ships_one_frame() {
        let mut db = site_db();
        let req = ScanRequest {
            table: "SIM".into(),
            columns: vec!["K".into()],
            predicate: "(N > ?)".into(),
            params: vec![Value::Int(99)],
            order_by: vec![],
            limit: None,
            resume_from: 0,
            key_filter: None,
            partial_agg: None,
        };
        let frames = serve_scan(&mut db, &req.encode(), 64).unwrap();
        assert_eq!(frames.len(), 1);
        let batch = decode_batch(&frames[0]).unwrap();
        assert!(batch.rows.is_empty());
        assert!(
            batch.write_counter > 0,
            "write counter reflects the inserts"
        );
    }

    #[test]
    fn keyed_scan_returns_only_matching_rows() {
        let mut db = site_db();
        let req = ScanRequest {
            table: "SIM".into(),
            columns: vec!["K".into(), "N".into()],
            predicate: String::new(),
            params: vec![],
            order_by: vec![],
            limit: None,
            resume_from: 0,
            key_filter: Some(("N".into(), vec![Value::Int(1), Value::Int(3)])),
            partial_agg: None,
        };
        let rows = scan_rows(&mut db, &req).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Str("k1".into()), Value::Int(1)],
                vec![Value::Str("k3".into()), Value::Int(3)],
            ]
        );

        // Keys compose with a pushed predicate (predicate params bind
        // first, then the key list).
        let both = ScanRequest {
            predicate: "(N >= ?)".into(),
            params: vec![Value::Int(2)],
            ..req
        };
        let rows = scan_rows(&mut db, &both).unwrap();
        assert_eq!(rows, vec![vec![Value::Str("k3".into()), Value::Int(3)]]);
    }

    #[test]
    fn bad_frame_and_bad_sql_are_typed() {
        let mut db = site_db();
        assert!(matches!(
            serve_scan(&mut db, b"nope", 64),
            Err(RemoteError::Wire(_))
        ));
        let req = ScanRequest {
            table: "GHOST".into(),
            columns: vec!["K".into()],
            predicate: String::new(),
            params: vec![],
            order_by: vec![],
            limit: None,
            resume_from: 0,
            key_filter: None,
            partial_agg: None,
        };
        assert!(matches!(
            serve_scan(&mut db, &req.encode(), 64),
            Err(RemoteError::Db(_))
        ));
    }
}
