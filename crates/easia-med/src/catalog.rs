//! The foreign-server / foreign-table catalog kept at the hub.
//!
//! SQL/MED's management half: `CREATE SERVER` registers a remote
//! archive hub, `CREATE FOREIGN TABLE` maps a logical table onto the
//! partitions the sites hold, and `IMPORT FOREIGN SCHEMA` copies a
//! table definition from a site's own catalog. The entries here are
//! API-level equivalents of those statements — the hub consults them
//! for every federated query.

use easia_db::{Database, SqlType, Value};
use std::cell::Cell;
use std::collections::BTreeMap;

/// One partition of a foreign table.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Foreign server holding this partition, or `None` for the rows
    /// the hub itself stores locally.
    pub server: Option<String>,
    /// The site-key values this partition can hold. Empty means
    /// unknown — the partition is never pruned.
    pub site_keys: Vec<Value>,
    /// Row-count estimate refreshed by `Federation::analyze` (the
    /// catalog statistic behind EXPLAIN's estimates and the pruning
    /// counters).
    pub est_rows: Cell<u64>,
}

impl Partition {
    /// A partition at `server` (or local for `None`) declared to hold
    /// the given site-key values.
    pub fn new(server: Option<&str>, site_keys: &[&str]) -> Self {
        Partition {
            server: server.map(str::to_string),
            site_keys: site_keys
                .iter()
                .map(|s| Value::Str((*s).to_string()))
                .collect(),
            est_rows: Cell::new(0),
        }
    }

    /// Display name for explain output and metric labels.
    pub fn site_label(&self) -> &str {
        self.server.as_deref().unwrap_or("local")
    }

    /// Can this partition hold a row whose site key equals `v`?
    pub fn may_match(&self, v: &Value) -> bool {
        self.site_keys.is_empty() || self.site_keys.contains(v)
    }
}

/// A foreign table: one logical table spread over partitions.
#[derive(Debug, Clone)]
pub struct ForeignTable {
    /// Logical table name (upper-case).
    pub name: String,
    /// Columns in schema order (upper-case names).
    pub columns: Vec<(String, SqlType)>,
    /// The partitioning column, when one exists. Equality conjuncts on
    /// it prune partitions that cannot match.
    pub site_key: Option<String>,
    /// The partitions, in registration order.
    pub partitions: Vec<Partition>,
}

impl ForeignTable {
    /// Position of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let up = name.to_ascii_uppercase();
        self.columns.iter().position(|(c, _)| *c == up)
    }
}

/// Errors registering catalog entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// `CREATE FOREIGN TABLE` references a server that was never
    /// created.
    UnknownServer(String),
    /// Duplicate table registration.
    DuplicateTable(String),
    /// The named site key is not a column of the table.
    BadSiteKey(String),
    /// Schema import failed (table missing at the site).
    NoSuchTable(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::UnknownServer(s) => write!(f, "unknown foreign server {s}"),
            CatalogError::DuplicateTable(t) => write!(f, "foreign table {t} already registered"),
            CatalogError::BadSiteKey(k) => write!(f, "site key {k} is not a column"),
            CatalogError::NoSuchTable(t) => write!(f, "no table {t} to import"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// The hub's federation catalog.
#[derive(Debug, Clone, Default)]
pub struct FedCatalog {
    /// Registered foreign servers (site names).
    pub servers: Vec<String>,
    /// Foreign tables by upper-case name.
    pub tables: BTreeMap<String, ForeignTable>,
}

impl FedCatalog {
    /// `CREATE SERVER name` — register a foreign server. Idempotent.
    pub fn create_server(&mut self, name: &str) {
        if !self.servers.iter().any(|s| s == name) {
            self.servers.push(name.to_string());
        }
    }

    /// `CREATE FOREIGN TABLE` — register a table over its partitions.
    pub fn create_foreign_table(
        &mut self,
        name: &str,
        columns: Vec<(String, SqlType)>,
        site_key: Option<&str>,
        partitions: Vec<Partition>,
    ) -> Result<(), CatalogError> {
        let tname = name.to_ascii_uppercase();
        if self.tables.contains_key(&tname) {
            return Err(CatalogError::DuplicateTable(tname));
        }
        let columns: Vec<(String, SqlType)> = columns
            .into_iter()
            .map(|(c, t)| (c.to_ascii_uppercase(), t))
            .collect();
        let site_key = match site_key {
            Some(k) => {
                let up = k.to_ascii_uppercase();
                if !columns.iter().any(|(c, _)| *c == up) {
                    return Err(CatalogError::BadSiteKey(up));
                }
                Some(up)
            }
            None => None,
        };
        for p in &partitions {
            if let Some(s) = &p.server {
                if !self.servers.iter().any(|r| r == s) {
                    return Err(CatalogError::UnknownServer(s.clone()));
                }
            }
        }
        self.tables.insert(
            tname.clone(),
            ForeignTable {
                name: tname,
                columns,
                site_key,
                partitions,
            },
        );
        Ok(())
    }

    /// `IMPORT FOREIGN SCHEMA` — copy a table definition from a
    /// database's own catalog (typically the hub's, which holds the
    /// local partition) and register it over `partitions`.
    pub fn import_foreign_table(
        &mut self,
        db: &Database,
        name: &str,
        site_key: Option<&str>,
        partitions: Vec<Partition>,
    ) -> Result<(), CatalogError> {
        let schema = db
            .schema(name)
            .ok_or_else(|| CatalogError::NoSuchTable(name.to_ascii_uppercase()))?;
        let columns = schema
            .columns
            .iter()
            .map(|c| (c.name.clone(), c.ty))
            .collect();
        self.create_foreign_table(name, columns, site_key, partitions)
    }

    /// The foreign table registered under `name`, if any.
    pub fn table(&self, name: &str) -> Option<&ForeignTable> {
        self.tables.get(&name.to_ascii_uppercase())
    }

    /// Is `name` a registered foreign table?
    pub fn is_federated(&self, name: &str) -> bool {
        self.table(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<(String, SqlType)> {
        vec![
            ("k".into(), SqlType::Varchar(30)),
            ("site".into(), SqlType::Varchar(20)),
            ("n".into(), SqlType::Integer),
        ]
    }

    #[test]
    fn register_and_lookup() {
        let mut c = FedCatalog::default();
        c.create_server("cam.example");
        c.create_foreign_table(
            "sim",
            cols(),
            Some("site"),
            vec![
                Partition::new(None, &["soton"]),
                Partition::new(Some("cam.example"), &["cam"]),
            ],
        )
        .unwrap();
        let t = c.table("SIM").unwrap();
        assert_eq!(t.site_key.as_deref(), Some("SITE"));
        assert_eq!(t.columns[0].0, "K");
        assert!(c.is_federated("sim"));
        assert!(!c.is_federated("other"));
        assert!(t.partitions[1].may_match(&Value::Str("cam".into())));
        assert!(!t.partitions[1].may_match(&Value::Str("soton".into())));
    }

    #[test]
    fn registration_errors() {
        let mut c = FedCatalog::default();
        assert_eq!(
            c.create_foreign_table("t", cols(), None, vec![Partition::new(Some("x"), &[])]),
            Err(CatalogError::UnknownServer("x".into()))
        );
        assert_eq!(
            c.create_foreign_table("t", cols(), Some("nope"), vec![]),
            Err(CatalogError::BadSiteKey("NOPE".into()))
        );
        c.create_foreign_table("t", cols(), None, vec![]).unwrap();
        assert_eq!(
            c.create_foreign_table("T", cols(), None, vec![]),
            Err(CatalogError::DuplicateTable("T".into()))
        );
    }

    #[test]
    fn import_from_live_schema() {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE sim (k VARCHAR(30) PRIMARY KEY, site VARCHAR(20), n INTEGER)")
            .unwrap();
        let mut c = FedCatalog::default();
        c.import_foreign_table(&db, "sim", Some("site"), vec![Partition::new(None, &[])])
            .unwrap();
        assert_eq!(c.table("sim").unwrap().columns.len(), 3);
        assert!(matches!(
            c.import_foreign_table(&db, "ghost", None, vec![]),
            Err(CatalogError::NoSuchTable(_))
        ));
    }
}
