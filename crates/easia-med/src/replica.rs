//! Hub-side stale-replica cache for small, hot foreign partitions.
//!
//! The last rung of the degradation ladder before dropping a site: the
//! hub keeps a full copy of each small partition it has recently
//! scanned, so when the live site is unreachable a
//! [`crate::PartialPolicy::Degraded`] query can still answer from the
//! replica — explicitly annotated as stale — instead of skipping the
//! partition or failing the query.
//!
//! Invalidation is by *site write counter*: every `EMB1` row batch
//! carries the site database's monotonic count of mutating statements
//! in its header. When a batch arrives whose counter differs from the
//! one a cached copy was built at, the copy is dropped — the site has
//! written since. A TTL bounds staleness for partitions with no recent
//! traffic to piggyback on.

use easia_db::Value;
use std::collections::BTreeMap;

/// One cached partition copy: the site's full partition, all columns.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Full partition rows in site-schema column order.
    pub rows: Vec<Vec<Value>>,
    /// Site write counter the copy was built at.
    pub write_counter: u64,
    /// Simulated instant the copy was fetched.
    pub fetched_at: f64,
}

/// The replica cache, keyed by `(site, table)`.
#[derive(Debug, Clone)]
pub struct ReplicaCache {
    /// Copies older than this are not served as fresh (seconds).
    pub ttl_secs: f64,
    /// Only partitions whose catalog row estimate is at or below this
    /// are cached ("small, hot" — caching a multi-gigabyte partition
    /// would defeat the point of federating).
    pub max_rows: u64,
    entries: BTreeMap<(String, String), CacheEntry>,
    hits: u64,
    stale_serves: u64,
    invalidations: u64,
}

impl ReplicaCache {
    /// A cache serving copies younger than `ttl_secs` for partitions of
    /// at most `max_rows` estimated rows.
    pub fn new(ttl_secs: f64, max_rows: u64) -> Self {
        ReplicaCache {
            ttl_secs,
            max_rows,
            entries: BTreeMap::new(),
            hits: 0,
            stale_serves: 0,
            invalidations: 0,
        }
    }

    /// Is a partition with this row estimate eligible for caching?
    pub fn cacheable(&self, est_rows: u64) -> bool {
        est_rows <= self.max_rows
    }

    /// A fresh copy (within TTL) of `table` at `site`, if any.
    pub fn fresh(&mut self, site: &str, table: &str, now: f64) -> Option<&CacheEntry> {
        let e = self.entries.get(&(site.to_string(), table.to_string()))?;
        if now - e.fetched_at <= self.ttl_secs {
            self.hits += 1;
            self.entries.get(&(site.to_string(), table.to_string()))
        } else {
            None
        }
    }

    /// Any copy regardless of age — the degraded path, when the live
    /// site is down and stale beats absent.
    pub fn any(&mut self, site: &str, table: &str) -> Option<&CacheEntry> {
        let key = (site.to_string(), table.to_string());
        if self.entries.contains_key(&key) {
            self.stale_serves += 1;
        }
        self.entries.get(&key)
    }

    /// Store (or replace) the copy of `table` at `site`.
    pub fn store(
        &mut self,
        site: &str,
        table: &str,
        rows: Vec<Vec<Value>>,
        write_counter: u64,
        now: f64,
    ) {
        self.entries.insert(
            (site.to_string(), table.to_string()),
            CacheEntry {
                rows,
                write_counter,
                fetched_at: now,
            },
        );
    }

    /// React to a batch header from `site` carrying its current write
    /// counter: drop every copy of that site built at a different
    /// counter (the counter is database-wide, so any mutation
    /// conservatively invalidates all of the site's partitions).
    /// Returns the number of copies dropped.
    pub fn note_write_counter(&mut self, site: &str, counter: u64) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|(s, _), e| s != site || e.write_counter == counter);
        let dropped = before - self.entries.len();
        self.invalidations += dropped as u64;
        dropped
    }

    /// `(fresh hits, stale serves, invalidations)` since creation.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.stale_serves, self.invalidations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: i64) -> Vec<Vec<Value>> {
        (0..n).map(|i| vec![Value::Int(i)]).collect()
    }

    #[test]
    fn ttl_gates_fresh_but_not_degraded_lookup() {
        let mut c = ReplicaCache::new(100.0, 1000);
        c.store("cam", "SIM", rows(3), 7, 50.0);
        assert!(c.fresh("cam", "SIM", 120.0).is_some(), "within TTL");
        assert!(c.fresh("cam", "SIM", 151.0).is_none(), "expired");
        let e = c.any("cam", "SIM").expect("degraded lookup ignores TTL");
        assert_eq!(e.rows.len(), 3);
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn write_counter_mismatch_drops_the_sites_copies() {
        let mut c = ReplicaCache::new(1e9, 1000);
        c.store("cam", "SIM", rows(3), 7, 0.0);
        c.store("cam", "FILES", rows(1), 7, 0.0);
        c.store("edin", "SIM", rows(5), 2, 0.0);
        // Same counter: nothing changes.
        assert_eq!(c.note_write_counter("cam", 7), 0);
        assert!(c.fresh("cam", "SIM", 1.0).is_some());
        // The site wrote: both its copies go, the other site's stays.
        assert_eq!(c.note_write_counter("cam", 8), 2);
        assert!(c.fresh("cam", "SIM", 1.0).is_none());
        assert!(c.any("cam", "FILES").is_none());
        assert!(c.fresh("edin", "SIM", 1.0).is_some());
    }

    #[test]
    fn cacheable_respects_max_rows() {
        let c = ReplicaCache::new(60.0, 100);
        assert!(c.cacheable(100));
        assert!(!c.cacheable(101));
    }
}
