//! The compact row-batch wire protocol.
//!
//! Federation traffic over the simulated WAN has two message kinds:
//!
//! * **Scan requests** (hub → site): the pushed-down query as SQL text
//!   plus its externalised parameter row. Small — this is the whole
//!   point of pushdown.
//! * **Row batches** (site → hub): frames of at most `batch_rows`
//!   result rows, encoded with the same tagged binary row codec the
//!   storage engine uses for heap pages and WAL records
//!   ([`easia_db::value::encode_row`]), framed with a magic, a format
//!   version and a row count so truncation and cross-version mismatch
//!   are detected rather than misread.
//!
//! Both directions are byte-deterministic: encoding the same logical
//! message always yields the same bytes, which is what lets same-seed
//! federation runs digest identically.

use easia_db::value::{decode_row, encode_row};
use easia_db::Value;

/// Frame magic for a row batch: "EMB" + format version 1.
pub const BATCH_MAGIC: [u8; 4] = *b"EMB1";
/// Frame magic for a scan request: "EMQ" + format version 1.
pub const REQUEST_MAGIC: [u8; 4] = *b"EMQ1";

/// Wire-level decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame does not start with the expected magic/version.
    BadMagic,
    /// Frame ended before the declared content.
    Truncated,
    /// Frame decoded but left unconsumed bytes.
    TrailingBytes(usize),
    /// Row codec failure (bad tag, truncated row).
    Row(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "wire: bad frame magic"),
            WireError::Truncated => write!(f, "wire: truncated frame"),
            WireError::TrailingBytes(n) => write!(f, "wire: {n} trailing byte(s) after frame"),
            WireError::Row(m) => write!(f, "wire: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded row-batch frame: the header fields the resilience layer
/// keys on, plus the payload rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Zero-based position of this batch in the site's full result
    /// stream. The hub's resume cursor is `last seq + 1`.
    pub seq: u32,
    /// The site database's write counter at scan time. A change between
    /// batches (or versus a cached copy) means the site mutated data and
    /// any hub-side replica of that site is stale.
    pub write_counter: u64,
    /// The payload rows.
    pub rows: Vec<Vec<Value>>,
}

/// Encode a batch of rows into one wire frame with its stream position
/// and the site's current write counter in the header.
pub fn encode_batch(rows: &[Vec<Value>], seq: u32, write_counter: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + rows.len() * 16);
    out.extend_from_slice(&BATCH_MAGIC);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&write_counter.to_le_bytes());
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        encode_row(row, &mut out);
    }
    out
}

/// Decode a frame produced by [`encode_batch`]. Rejects bad magic,
/// truncation and trailing garbage.
pub fn decode_batch(buf: &[u8]) -> Result<Batch, WireError> {
    if buf.len() < 20 {
        return Err(WireError::Truncated);
    }
    if buf[..4] != BATCH_MAGIC {
        return Err(WireError::BadMagic);
    }
    let seq = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let write_counter = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let n = u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")) as usize;
    let mut pos = 20usize;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let row = decode_row(buf, &mut pos).map_err(|e| WireError::Row(e.to_string()))?;
        rows.push(row);
    }
    if pos != buf.len() {
        return Err(WireError::TrailingBytes(buf.len() - pos));
    }
    Ok(Batch {
        seq,
        write_counter,
        rows,
    })
}

/// One site-local partial-aggregate call shipped inside a
/// [`PartialAggSpec`]. `AVG` never crosses the wire: the planner
/// decomposes it into a `Sum` + `Count` pair over the same column so
/// the hub can merge the ratio exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggCall {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(col)` — counts non-NULL values of the column.
    Count(String),
    /// `SUM(col)` — i64 partials promote to DOUBLE on overflow, at the
    /// site *and* again when partials are merged at the hub.
    Sum(String),
    /// `MIN(col)`.
    Min(String),
    /// `MAX(col)`.
    Max(String),
}

impl AggCall {
    /// Render the call as the SQL its site executor runs.
    pub fn sql(&self) -> String {
        match self {
            AggCall::CountStar => "COUNT(*)".to_string(),
            AggCall::Count(c) => format!("COUNT({c})"),
            AggCall::Sum(c) => format!("SUM({c})"),
            AggCall::Min(c) => format!("MIN({c})"),
            AggCall::Max(c) => format!("MAX({c})"),
        }
    }

    fn wire_tag(&self) -> u8 {
        match self {
            AggCall::CountStar => 0,
            AggCall::Count(_) => 1,
            AggCall::Sum(_) => 2,
            AggCall::Min(_) => 3,
            AggCall::Max(_) => 4,
        }
    }

    fn column(&self) -> Option<&str> {
        match self {
            AggCall::CountStar => None,
            AggCall::Count(c) | AggCall::Sum(c) | AggCall::Min(c) | AggCall::Max(c) => Some(c),
        }
    }
}

/// The partial-aggregate form of a scan request: instead of shipping
/// raw rows, the site groups locally and ships one partial-state row
/// per group. Row layout: the group-by columns (in `group_by` order)
/// followed by one value per call (in `calls` order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialAggSpec {
    /// Bare grouping columns (empty for a global aggregate, which
    /// ships exactly one partial row per site).
    pub group_by: Vec<String>,
    /// The partial-aggregate calls, deduplicated by the planner.
    pub calls: Vec<AggCall>,
}

/// A pushed-down scan shipped to a site's remote executor.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanRequest {
    /// Target table at the site (upper-case).
    pub table: String,
    /// Projected columns, in site-schema order. Never empty.
    pub columns: Vec<String>,
    /// Pushed predicate as SQL text (`?` placeholders), or empty for an
    /// unfiltered scan.
    pub predicate: String,
    /// Parameter row for the predicate placeholders, in order.
    pub params: Vec<Value>,
    /// Pushed top-k ordering: `(column, ascending)` pairs.
    pub order_by: Vec<(String, bool)>,
    /// Pushed row cap (top-k merge ships at most this many rows per
    /// site).
    pub limit: Option<usize>,
    /// Resume cursor: the site skips the first `resume_from` batches of
    /// its (deterministic) result stream and re-ships only the rest.
    /// Zero for a fresh scan.
    pub resume_from: u64,
    /// Semi-join key shipment: `(column, keys)` restricts the scan to
    /// rows whose `column` value is in `keys`. The key list is the
    /// bound join-key set extracted at the hub — sorted, deduplicated
    /// and NULL-free, so the frame stays byte-deterministic. `None` for
    /// an unkeyed scan.
    pub key_filter: Option<(String, Vec<Value>)>,
    /// Partial-aggregate pushdown: when set, the site groups locally
    /// and ships partial-state rows instead of the raw projection
    /// (`columns` is ignored for the select list). `None` ships rows.
    pub partial_agg: Option<PartialAggSpec>,
}

impl ScanRequest {
    /// Render the request as the SQL its site executor will run.
    pub fn to_sql(&self) -> String {
        let select_list = match &self.partial_agg {
            Some(spec) => {
                let mut items: Vec<String> = spec.group_by.clone();
                items.extend(spec.calls.iter().map(|c| c.sql()));
                items.join(", ")
            }
            None => self.columns.join(", "),
        };
        let mut sql = format!("SELECT {} FROM {}", select_list, self.table);
        let key_clause = self
            .key_filter
            .as_ref()
            .filter(|(_, k)| !k.is_empty())
            .map(|(col, keys)| format!("{col} IN ({})", vec!["?"; keys.len()].join(", ")));
        if !self.predicate.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&self.predicate);
            if let Some(k) = &key_clause {
                sql.push_str(" AND ");
                sql.push_str(k);
            }
        } else if let Some(k) = &key_clause {
            sql.push_str(" WHERE ");
            sql.push_str(k);
        }
        if let Some(spec) = &self.partial_agg {
            if !spec.group_by.is_empty() {
                sql.push_str(" GROUP BY ");
                sql.push_str(&spec.group_by.join(", "));
                // A deterministic stream order keeps the batch resume
                // cursor meaningful across retries.
                sql.push_str(" ORDER BY ");
                sql.push_str(&spec.group_by.join(", "));
            }
        }
        if !self.order_by.is_empty() {
            let keys: Vec<String> = self
                .order_by
                .iter()
                .map(|(c, asc)| format!("{c} {}", if *asc { "ASC" } else { "DESC" }))
                .collect();
            sql.push_str(" ORDER BY ");
            sql.push_str(&keys.join(", "));
        }
        if let Some(n) = self.limit {
            sql.push_str(&format!(" LIMIT {n}"));
        }
        sql
    }

    /// The full parameter row for [`ScanRequest::to_sql`]: the predicate
    /// parameters followed by the shipped join keys (the IN-list
    /// placeholders come after the predicate placeholders in the
    /// rendered SQL).
    pub fn effective_params(&self) -> Vec<Value> {
        let mut out = self.params.clone();
        if let Some((_, keys)) = &self.key_filter {
            out.extend(keys.iter().cloned());
        }
        out
    }

    /// Encode the request frame (what actually crosses the WAN).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&REQUEST_MAGIC);
        put_str(&mut out, &self.table);
        out.extend_from_slice(&(self.columns.len() as u32).to_le_bytes());
        for c in &self.columns {
            put_str(&mut out, c);
        }
        put_str(&mut out, &self.predicate);
        encode_row(&self.params, &mut out);
        out.extend_from_slice(&(self.order_by.len() as u32).to_le_bytes());
        for (c, asc) in &self.order_by {
            put_str(&mut out, c);
            out.push(u8::from(*asc));
        }
        match self.limit {
            Some(n) => {
                out.push(1);
                out.extend_from_slice(&(n as u64).to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&self.resume_from.to_le_bytes());
        match &self.key_filter {
            Some((col, keys)) => {
                out.push(1);
                put_str(&mut out, col);
                encode_row(keys, &mut out);
            }
            None => out.push(0),
        }
        match &self.partial_agg {
            Some(spec) => {
                out.push(1);
                out.extend_from_slice(&(spec.group_by.len() as u32).to_le_bytes());
                for g in &spec.group_by {
                    put_str(&mut out, g);
                }
                out.extend_from_slice(&(spec.calls.len() as u32).to_le_bytes());
                for call in &spec.calls {
                    out.push(call.wire_tag());
                    match call.column() {
                        Some(c) => {
                            out.push(1);
                            put_str(&mut out, c);
                        }
                        None => out.push(0),
                    }
                }
            }
            None => out.push(0),
        }
        out
    }

    /// Decode a frame produced by [`ScanRequest::encode`].
    pub fn decode(buf: &[u8]) -> Result<ScanRequest, WireError> {
        if buf.len() < 4 {
            return Err(WireError::Truncated);
        }
        if buf[..4] != REQUEST_MAGIC {
            return Err(WireError::BadMagic);
        }
        let mut pos = 4usize;
        let table = get_str(buf, &mut pos)?;
        let ncols = get_u32(buf, &mut pos)? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            columns.push(get_str(buf, &mut pos)?);
        }
        let predicate = get_str(buf, &mut pos)?;
        let params = decode_row(buf, &mut pos).map_err(|e| WireError::Row(e.to_string()))?;
        let nord = get_u32(buf, &mut pos)? as usize;
        let mut order_by = Vec::with_capacity(nord);
        for _ in 0..nord {
            let c = get_str(buf, &mut pos)?;
            let asc = *buf.get(pos).ok_or(WireError::Truncated)? != 0;
            pos += 1;
            order_by.push((c, asc));
        }
        let has_limit = *buf.get(pos).ok_or(WireError::Truncated)?;
        pos += 1;
        let limit = if has_limit != 0 {
            let b: [u8; 8] = buf
                .get(pos..pos + 8)
                .ok_or(WireError::Truncated)?
                .try_into()
                .expect("8 bytes");
            pos += 8;
            Some(u64::from_le_bytes(b) as usize)
        } else {
            None
        };
        let b: [u8; 8] = buf
            .get(pos..pos + 8)
            .ok_or(WireError::Truncated)?
            .try_into()
            .expect("8 bytes");
        pos += 8;
        let resume_from = u64::from_le_bytes(b);
        let has_keys = *buf.get(pos).ok_or(WireError::Truncated)?;
        pos += 1;
        let key_filter = if has_keys != 0 {
            let col = get_str(buf, &mut pos)?;
            let keys = decode_row(buf, &mut pos).map_err(|e| WireError::Row(e.to_string()))?;
            Some((col, keys))
        } else {
            None
        };
        let has_agg = *buf.get(pos).ok_or(WireError::Truncated)?;
        pos += 1;
        let partial_agg = if has_agg != 0 {
            let ngroup = get_u32(buf, &mut pos)? as usize;
            let mut group_by = Vec::with_capacity(ngroup);
            for _ in 0..ngroup {
                group_by.push(get_str(buf, &mut pos)?);
            }
            let ncalls = get_u32(buf, &mut pos)? as usize;
            let mut calls = Vec::with_capacity(ncalls);
            for _ in 0..ncalls {
                let tag = *buf.get(pos).ok_or(WireError::Truncated)?;
                pos += 1;
                let has_col = *buf.get(pos).ok_or(WireError::Truncated)?;
                pos += 1;
                let col = if has_col != 0 {
                    Some(get_str(buf, &mut pos)?)
                } else {
                    None
                };
                let call = match (tag, col) {
                    (0, None) => AggCall::CountStar,
                    (1, Some(c)) => AggCall::Count(c),
                    (2, Some(c)) => AggCall::Sum(c),
                    (3, Some(c)) => AggCall::Min(c),
                    (4, Some(c)) => AggCall::Max(c),
                    (t, c) => {
                        return Err(WireError::Row(format!(
                            "bad aggregate call tag {t} (column: {})",
                            c.is_some()
                        )))
                    }
                };
                calls.push(call);
            }
            Some(PartialAggSpec { group_by, calls })
        } else {
            None
        };
        if pos != buf.len() {
            return Err(WireError::TrailingBytes(buf.len() - pos));
        }
        Ok(ScanRequest {
            table,
            columns,
            predicate,
            params,
            order_by,
            limit,
            resume_from,
            key_filter,
            partial_agg,
        })
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, WireError> {
    let b: [u8; 4] = buf
        .get(*pos..*pos + 4)
        .ok_or(WireError::Truncated)?
        .try_into()
        .expect("4 bytes");
    *pos += 4;
    Ok(u32::from_le_bytes(b))
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, WireError> {
    let n = get_u32(buf, pos)? as usize;
    let s = buf.get(*pos..*pos + n).ok_or(WireError::Truncated)?;
    *pos += n;
    String::from_utf8(s.to_vec()).map_err(|e| WireError::Row(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_roundtrip_all_variants() {
        let rows = vec![
            vec![
                Value::Null,
                Value::Int(i64::MIN),
                Value::Int(i64::MAX),
                Value::Double(-0.5),
                Value::Str("hello".into()),
            ],
            vec![
                Value::Bool(true),
                Value::Bool(false),
                Value::Timestamp(1_234_567),
                Value::Blob(vec![0, 1, 255]),
                Value::Clob("c".repeat(10_000)),
            ],
            vec![Value::Datalink("http://fs1.example/a.dat".into())],
        ];
        let buf = encode_batch(&rows, 3, 42);
        let batch = decode_batch(&buf).unwrap();
        assert_eq!(batch.seq, 3);
        assert_eq!(batch.write_counter, 42);
        assert_eq!(batch.rows, rows);
    }

    #[test]
    fn batch_rejects_damage() {
        let rows = vec![vec![Value::Int(7)]];
        let buf = encode_batch(&rows, 0, 0);
        assert_eq!(decode_batch(&buf[..3]), Err(WireError::Truncated));
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert_eq!(decode_batch(&bad), Err(WireError::BadMagic));
        let mut trailing = buf.clone();
        trailing.push(0);
        assert_eq!(decode_batch(&trailing), Err(WireError::TrailingBytes(1)));
        assert!(matches!(
            decode_batch(&buf[..buf.len() - 1]),
            Err(WireError::Row(_))
        ));
    }

    #[test]
    fn request_roundtrip_and_sql() {
        let req = ScanRequest {
            table: "SIMULATION".into(),
            columns: vec!["SIMULATION_KEY".into(), "GRID_SIZE".into()],
            predicate: "(GRID_SIZE >= ?)".into(),
            params: vec![Value::Int(256)],
            order_by: vec![("GRID_SIZE".into(), false)],
            limit: Some(10),
            resume_from: 2,
            key_filter: None,
            partial_agg: None,
        };
        let back = ScanRequest::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
        assert_eq!(
            req.to_sql(),
            "SELECT SIMULATION_KEY, GRID_SIZE FROM SIMULATION \
             WHERE (GRID_SIZE >= ?) ORDER BY GRID_SIZE DESC LIMIT 10"
        );
        let plain = ScanRequest {
            predicate: String::new(),
            params: vec![],
            order_by: vec![],
            limit: None,
            resume_from: 0,
            ..req
        };
        assert_eq!(
            plain.to_sql(),
            "SELECT SIMULATION_KEY, GRID_SIZE FROM SIMULATION"
        );
        assert_eq!(ScanRequest::decode(&plain.encode()).unwrap(), plain);
    }

    #[test]
    fn keyed_request_roundtrip_sql_and_params() {
        let keys = vec![Value::Str("S01".into()), Value::Str("S02".into())];
        let req = ScanRequest {
            table: "RESULT_FILE".into(),
            columns: vec!["RESULT_FILE_KEY".into(), "SIMULATION_KEY".into()],
            predicate: "(RESULT_FILE_KEY > ?)".into(),
            params: vec![Value::Str("R00".into())],
            order_by: vec![],
            limit: None,
            resume_from: 0,
            key_filter: Some(("SIMULATION_KEY".into(), keys.clone())),
            partial_agg: None,
        };
        let back = ScanRequest::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
        assert_eq!(
            req.to_sql(),
            "SELECT RESULT_FILE_KEY, SIMULATION_KEY FROM RESULT_FILE \
             WHERE (RESULT_FILE_KEY > ?) AND SIMULATION_KEY IN (?, ?)"
        );
        // Key parameters bind after the predicate parameters.
        assert_eq!(
            req.effective_params(),
            vec![Value::Str("R00".into()), keys[0].clone(), keys[1].clone()]
        );

        // Without a pushed predicate the key filter becomes the WHERE
        // clause on its own.
        let keyed_only = ScanRequest {
            predicate: String::new(),
            params: vec![],
            ..req.clone()
        };
        assert_eq!(
            keyed_only.to_sql(),
            "SELECT RESULT_FILE_KEY, SIMULATION_KEY FROM RESULT_FILE \
             WHERE SIMULATION_KEY IN (?, ?)"
        );
        assert_eq!(
            ScanRequest::decode(&keyed_only.encode()).unwrap(),
            keyed_only
        );

        // A keyed frame cut anywhere inside the key section is rejected,
        // not misread.
        let buf = req.encode();
        for cut in [buf.len() - 1, buf.len() - 5, buf.len() - 9] {
            assert!(ScanRequest::decode(&buf[..cut]).is_err());
        }
    }

    #[test]
    fn partial_agg_request_roundtrip_and_sql() {
        let req = ScanRequest {
            table: "SIMULATION".into(),
            columns: vec!["SITE".into()],
            predicate: "(GRID_SIZE >= ?)".into(),
            params: vec![Value::Int(64)],
            order_by: vec![],
            limit: None,
            resume_from: 0,
            key_filter: None,
            partial_agg: Some(PartialAggSpec {
                group_by: vec!["SITE".into()],
                calls: vec![
                    AggCall::CountStar,
                    AggCall::Count("VISCOSITY".into()),
                    AggCall::Sum("GRID_SIZE".into()),
                    AggCall::Min("GRID_SIZE".into()),
                    AggCall::Max("VISCOSITY".into()),
                ],
            }),
        };
        let back = ScanRequest::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
        assert_eq!(
            req.to_sql(),
            "SELECT SITE, COUNT(*), COUNT(VISCOSITY), SUM(GRID_SIZE), \
             MIN(GRID_SIZE), MAX(VISCOSITY) FROM SIMULATION \
             WHERE (GRID_SIZE >= ?) GROUP BY SITE ORDER BY SITE"
        );

        // A global aggregate: no GROUP BY, no ORDER BY, one partial
        // row per site.
        let global = ScanRequest {
            predicate: String::new(),
            params: vec![],
            partial_agg: Some(PartialAggSpec {
                group_by: vec![],
                calls: vec![AggCall::Sum("GRID_SIZE".into()), AggCall::CountStar],
            }),
            ..req.clone()
        };
        assert_eq!(
            global.to_sql(),
            "SELECT SUM(GRID_SIZE), COUNT(*) FROM SIMULATION"
        );
        assert_eq!(ScanRequest::decode(&global.encode()).unwrap(), global);

        // A frame cut inside the aggregate section is rejected.
        let buf = req.encode();
        for cut in [buf.len() - 1, buf.len() - 4, buf.len() - 12] {
            assert!(ScanRequest::decode(&buf[..cut]).is_err());
        }
    }
}
