//! Speculative prefetch cache for FK-browse screens.
//!
//! The paper's portal is hyperlink-driven: every result screen carries
//! FK/PK browse links, and the *next* screen is almost always one of
//! them. While the current screen renders, the hub can speculatively
//! run those keyed scans over the federation and park the outcomes
//! here; a click that matches a parked outcome is served without
//! touching the WAN at all.
//!
//! Correctness rests on the same freshness rule the EMB1 batch header
//! enforces mid-stream: every parked outcome is stamped with the
//! federation-wide [write fingerprint](crate::federation::Federation::write_fingerprint)
//! at prefetch time, and a lookup under a different fingerprint is a
//! [`Lookup::Stale`] — the entry is discarded and the query re-runs
//! live. A committed write *anywhere* (hub or any site) therefore
//! invalidates every parked screen at once; there is no TTL to tune
//! and no window in which a prefetched screen can show pre-write data.

use crate::federation::QueryOutcome;
use easia_db::Value;
use std::collections::VecDeque;

/// Default bound on parked outcomes (a screen rarely offers more
/// useful next-clicks than this, and each entry holds a full result).
pub const DEFAULT_PREFETCH_CAPACITY: usize = 16;

/// One parked speculative result.
struct Entry {
    sql: String,
    params: Vec<Value>,
    /// Federation-wide write fingerprint at prefetch time.
    fingerprint: u64,
    outcome: QueryOutcome,
}

/// What a cache lookup found.
#[derive(Debug)]
pub enum Lookup {
    /// A parked outcome under the current fingerprint: serve it.
    Hit(Box<QueryOutcome>),
    /// A parked outcome invalidated by a write since prefetch time;
    /// the entry has been dropped and the query must run live.
    Stale,
    /// Nothing parked for this statement.
    Miss,
}

/// FIFO-bounded cache of speculatively executed federated queries,
/// keyed by the exact `(sql, params)` pair the click would issue.
pub struct PrefetchCache {
    entries: VecDeque<Entry>,
    capacity: usize,
}

impl Default for PrefetchCache {
    fn default() -> Self {
        PrefetchCache::new(DEFAULT_PREFETCH_CAPACITY)
    }
}

impl PrefetchCache {
    /// An empty cache holding at most `capacity` parked outcomes.
    pub fn new(capacity: usize) -> Self {
        PrefetchCache {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Number of parked outcomes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every parked outcome.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Is a *fresh* outcome (matching `fingerprint`) already parked for
    /// this statement? Used to avoid re-issuing a speculative scan that
    /// is still valid.
    pub fn contains(&self, sql: &str, params: &[Value], fingerprint: u64) -> bool {
        self.entries
            .iter()
            .any(|e| e.sql == sql && e.params == params && e.fingerprint == fingerprint)
    }

    /// Park a speculative outcome, replacing any previous entry for the
    /// same statement and evicting the oldest entry beyond capacity.
    pub fn insert(
        &mut self,
        sql: String,
        params: Vec<Value>,
        fingerprint: u64,
        outcome: QueryOutcome,
    ) {
        self.entries
            .retain(|e| !(e.sql == sql && e.params == params));
        if self.entries.len() >= self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(Entry {
            sql,
            params,
            fingerprint,
            outcome,
        });
    }

    /// Look up (and consume) the parked outcome for a statement. A hit
    /// is removed — a browse click consumes its speculation — and a
    /// fingerprint mismatch removes the entry too, reporting
    /// [`Lookup::Stale`].
    pub fn take(&mut self, sql: &str, params: &[Value], fingerprint: u64) -> Lookup {
        let Some(pos) = self
            .entries
            .iter()
            .position(|e| e.sql == sql && e.params == params)
        else {
            return Lookup::Miss;
        };
        let entry = self.entries.remove(pos).expect("position just found");
        if entry.fingerprint == fingerprint {
            Lookup::Hit(Box::new(entry.outcome))
        } else {
            Lookup::Stale
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::FedExplain;
    use easia_db::ResultSet;

    fn outcome(n: i64) -> QueryOutcome {
        QueryOutcome {
            rs: ResultSet {
                columns: vec!["N".into()],
                rows: vec![vec![Value::Int(n)]],
                affected: 0,
            },
            explain: FedExplain::default(),
        }
    }

    #[test]
    fn hit_consumes_the_entry() {
        let mut c = PrefetchCache::default();
        c.insert("Q".into(), vec![], 1, outcome(7));
        assert!(c.contains("Q", &[], 1));
        match c.take("Q", &[], 1) {
            Lookup::Hit(out) => assert_eq!(out.rs.rows, vec![vec![Value::Int(7)]]),
            other => panic!("{other:?}"),
        }
        assert!(matches!(c.take("Q", &[], 1), Lookup::Miss));
    }

    #[test]
    fn fingerprint_mismatch_is_stale_and_drops_the_entry() {
        let mut c = PrefetchCache::default();
        c.insert("Q".into(), vec![Value::Int(1)], 1, outcome(7));
        assert!(
            !c.contains("Q", &[Value::Int(1)], 2),
            "fresh check is fingerprint-aware"
        );
        assert!(matches!(c.take("Q", &[Value::Int(1)], 2), Lookup::Stale));
        assert!(matches!(c.take("Q", &[Value::Int(1)], 1), Lookup::Miss));
    }

    #[test]
    fn params_distinguish_entries_and_capacity_evicts_oldest() {
        let mut c = PrefetchCache::new(2);
        c.insert("Q".into(), vec![Value::Int(1)], 1, outcome(1));
        c.insert("Q".into(), vec![Value::Int(2)], 1, outcome(2));
        c.insert("Q".into(), vec![Value::Int(3)], 1, outcome(3));
        assert_eq!(c.len(), 2);
        assert!(matches!(c.take("Q", &[Value::Int(1)], 1), Lookup::Miss));
        assert!(matches!(c.take("Q", &[Value::Int(3)], 1), Lookup::Hit(_)));
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = PrefetchCache::new(4);
        c.insert("Q".into(), vec![], 1, outcome(1));
        c.insert("Q".into(), vec![], 2, outcome(2));
        assert_eq!(c.len(), 1);
        match c.take("Q", &[], 2) {
            Lookup::Hit(out) => assert_eq!(out.rs.rows, vec![vec![Value::Int(2)]]),
            other => panic!("{other:?}"),
        }
    }
}
