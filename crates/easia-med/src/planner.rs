//! The hub-side distributed planner.
//!
//! Given a parsed SELECT over one foreign table, decide per conjunct
//! whether it can run at the sites (predicate pushdown), which columns
//! must cross the wire (projection pushdown), whether ORDER BY/LIMIT
//! can be pushed (top-k merge: every site ships at most `limit` rows),
//! and which partitions a site-key binding allows us to skip entirely
//! (partition pruning).
//!
//! Correctness story: the hub re-runs the *original* statement over a
//! staging table filled with the shipped rows, so pushdown only ever
//! removes rows/columns that provably cannot influence the result —
//! pushed conjuncts are row-local filters (evaluating them twice is
//! idempotent), the shipped projection includes every column the
//! statement mentions, and ORDER BY/LIMIT is only pushed when the
//! hub's final sort-and-cut over the union reproduces it.

use crate::catalog::{FedCatalog, ForeignTable};
use crate::wire::{AggCall, PartialAggSpec};
use crate::FedError;
use easia_db::exec::{agg_key, collect_aggs, derive_name, is_aggregate_fn};
use easia_db::sql::ast::{BinaryOp, Expr, JoinKind, OrderBy, SelectItem, SelectStmt, TableRef};
use easia_db::sql::expr_to_sql;
use easia_db::{plan, Value};
use std::collections::BTreeSet;

/// How one original aggregate call site finishes from the merged
/// partial states (indexes are positions in [`AggPlan::calls`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finisher {
    /// `COUNT(*)` / `COUNT(col)`: sum the shipped per-site counts.
    Count {
        /// Position of the COUNT partial in the shipped calls.
        idx: usize,
    },
    /// `SUM(col)`: merge partials with the same i64-overflow promotion
    /// to DOUBLE the site-local aggregate applies.
    Sum {
        /// Position of the SUM partial in the shipped calls.
        idx: usize,
    },
    /// `AVG(col)`: exact ratio of the merged SUM and COUNT partials.
    Avg {
        /// Position of the SUM partial in the shipped calls.
        sum_idx: usize,
        /// Position of the non-NULL COUNT partial in the shipped calls.
        count_idx: usize,
    },
    /// `MIN(col)`: least shipped partial under the SQL total order.
    Min {
        /// Position of the MIN partial in the shipped calls.
        idx: usize,
    },
    /// `MAX(col)`: greatest shipped partial under the SQL total order.
    Max {
        /// Position of the MAX partial in the shipped calls.
        idx: usize,
    },
}

/// The decomposition of an aggregate statement into site-local partial
/// aggregates plus a hub-side merge: each site ships one partial-state
/// row per group instead of its raw rows.
#[derive(Debug, Clone)]
pub struct AggPlan {
    /// Bare grouping columns (upper-case), in GROUP BY order.
    pub group_cols: Vec<String>,
    /// Deduplicated partial calls each site computes locally.
    pub calls: Vec<AggCall>,
    /// Per original aggregate call site — `(exec::agg_key of the
    /// original expression, finisher)` — in discovery order (items,
    /// HAVING, ORDER BY), matching the local executor's.
    pub finishers: Vec<(String, Finisher)>,
}

impl AggPlan {
    /// The wire form of this plan's site-side work.
    pub fn spec(&self) -> PartialAggSpec {
        PartialAggSpec {
            group_by: self.group_cols.clone(),
            calls: self.calls.clone(),
        }
    }
}

/// The per-table federation plan.
#[derive(Debug, Clone)]
pub struct TablePlan {
    /// Conjuncts evaluated at the sites (original form, for display).
    pub pushed: Vec<Expr>,
    /// Conjuncts only the hub can evaluate.
    pub hub_eval: Vec<Expr>,
    /// Shipped columns, in foreign-schema order. Never empty.
    pub columns: Vec<String>,
    /// Pushed top-k: `(order keys, limit)` when sites may cut early.
    pub order_limit: Option<(Vec<(String, bool)>, usize)>,
    /// The site-key value bound by an equality conjunct, when one
    /// exists — the pruning handle.
    pub site_key_value: Option<Value>,
    /// Partial-aggregate pushdown decomposition, when the statement
    /// aggregates and every shape is decomposable.
    pub partial_agg: Option<AggPlan>,
    /// Why an aggregate statement declined partial pushdown (ships raw
    /// rows and re-aggregates at the hub instead). `None` for
    /// non-aggregate statements or when `partial_agg` is set.
    pub agg_fallback: Option<&'static str>,
}

impl TablePlan {
    /// Pushed conjuncts rendered as SQL (for EXPLAIN).
    pub fn pushed_sql(&self) -> Vec<String> {
        self.pushed.iter().map(expr_to_sql).collect()
    }

    /// Hub-evaluated conjuncts rendered as SQL (for EXPLAIN).
    pub fn hub_sql(&self) -> Vec<String> {
        self.hub_eval.iter().map(expr_to_sql).collect()
    }
}

/// Build the plan for `sel` against foreign table `ft`.
///
/// `params` are the statement's positional parameters — needed to
/// resolve a `site_key = ?` binding for pruning.
pub fn plan_select(
    sel: &SelectStmt,
    ft: &ForeignTable,
    params: &[Value],
) -> Result<TablePlan, FedError> {
    if !sel.joins.is_empty() {
        return Err(FedError::Unsupported(
            "JOIN over a foreign table is not federated".into(),
        ));
    }
    let col_set: BTreeSet<&str> = ft.columns.iter().map(|(c, _)| c.as_str()).collect();
    let alias = sel
        .from
        .as_ref()
        .and_then(|t| t.alias.clone())
        .unwrap_or_else(|| ft.name.clone());

    let conjuncts: Vec<&Expr> = sel
        .where_clause
        .as_ref()
        .map(plan::conjuncts)
        .unwrap_or_default();
    let mut pushed = Vec::new();
    let mut hub_eval = Vec::new();
    for c in &conjuncts {
        if pushable(c, &col_set, &ft.name, &alias) {
            pushed.push((*c).clone());
        } else {
            hub_eval.push((*c).clone());
        }
    }

    let columns = needed_columns(sel, ft)?;

    // Top-k pushdown: sound only when the statement is a plain
    // filter-project (no aggregation, grouping or DISTINCT), every
    // conjunct runs at the sites, and the sort keys are shipped columns.
    let order_limit = match sel.limit {
        Some(limit)
            if hub_eval.is_empty()
                && !sel.distinct
                && sel.group_by.is_empty()
                && sel.having.is_none()
                && !sel.items.iter().any(|i| match i {
                    SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                    _ => false,
                }) =>
        {
            order_keys(&sel.order_by, &col_set, &ft.name, &alias).map(|keys| (keys, limit))
        }
        _ => None,
    };

    let site_key_value = match &ft.site_key {
        Some(key) => conjuncts
            .iter()
            .find_map(|c| key_equality(c, key, &ft.name, &alias, params)),
        None => None,
    };

    let (partial_agg, agg_fallback) = match plan_partial_agg(sel, ft, &alias, hub_eval.is_empty()) {
        Ok(p) => (p, None),
        Err(reason) => (None, Some(reason)),
    };

    Ok(TablePlan {
        pushed,
        hub_eval,
        columns,
        order_limit,
        site_key_value,
        partial_agg,
        agg_fallback,
    })
}

/// Decompose an aggregate statement into site-local partial aggregates.
///
/// Returns `Ok(None)` for non-aggregate statements, `Ok(Some(plan))`
/// when every shape decomposes exactly, and `Err(reason)` when the
/// statement aggregates but must fall back to shipping raw rows
/// (DISTINCT, expression arguments, hub-only conjuncts, computed group
/// keys, or non-grouped column references).
fn plan_partial_agg(
    sel: &SelectStmt,
    ft: &ForeignTable,
    alias: &str,
    hub_eval_empty: bool,
) -> Result<Option<AggPlan>, &'static str> {
    let col_set: BTreeSet<&str> = ft.columns.iter().map(|(c, _)| c.as_str()).collect();

    // Aggregate call sites, in the local executor's discovery order.
    let mut aggs: Vec<Expr> = Vec::new();
    let mut wildcard = false;
    for item in &sel.items {
        match item {
            SelectItem::Expr { expr, .. } => collect_aggs(expr, &mut aggs),
            _ => wildcard = true,
        }
    }
    if let Some(h) = &sel.having {
        collect_aggs(h, &mut aggs);
    }
    for ob in &sel.order_by {
        collect_aggs(&ob.expr, &mut aggs);
    }
    if aggs.is_empty() && sel.group_by.is_empty() {
        return Ok(None); // not an aggregate statement
    }
    if wildcard {
        return Err("wildcard");
    }
    if sel.distinct {
        return Err("distinct");
    }
    if !hub_eval_empty {
        // A hub-only conjunct filters rows *after* the site would have
        // aggregated them — partials would be computed over the wrong
        // row set.
        return Err("hub-conjunct");
    }

    // Every GROUP BY key must be a bare table column: the key is
    // shipped verbatim and merged by value.
    let mut group_cols = Vec::with_capacity(sel.group_by.len());
    for g in &sel.group_by {
        match g {
            Expr::Column { table, name } if col_ok(table, name, &col_set, &ft.name, alias) => {
                group_cols.push(name.to_ascii_uppercase());
            }
            _ => return Err("group-expr"),
        }
    }

    // Every aggregate must be COUNT(*) or f(bare column).
    let mut calls: Vec<AggCall> = Vec::new();
    let call_idx = |calls: &mut Vec<AggCall>, c: AggCall| -> usize {
        match calls.iter().position(|x| *x == c) {
            Some(i) => i,
            None => {
                calls.push(c);
                calls.len() - 1
            }
        }
    };
    let mut finishers = Vec::with_capacity(aggs.len());
    for agg in &aggs {
        let Expr::Function { name, args, star } = agg else {
            return Err("expr-arg");
        };
        let finisher = if *star {
            if name != "COUNT" {
                return Err("expr-arg");
            }
            Finisher::Count {
                idx: call_idx(&mut calls, AggCall::CountStar),
            }
        } else {
            let col = match args.as_slice() {
                [Expr::Column { table, name: c }]
                    if col_ok(table, c, &col_set, &ft.name, alias) =>
                {
                    c.to_ascii_uppercase()
                }
                _ => return Err("expr-arg"),
            };
            match name.as_str() {
                "COUNT" => Finisher::Count {
                    idx: call_idx(&mut calls, AggCall::Count(col)),
                },
                "SUM" => Finisher::Sum {
                    idx: call_idx(&mut calls, AggCall::Sum(col)),
                },
                "AVG" => Finisher::Avg {
                    sum_idx: call_idx(&mut calls, AggCall::Sum(col.clone())),
                    count_idx: call_idx(&mut calls, AggCall::Count(col)),
                },
                "MIN" => Finisher::Min {
                    idx: call_idx(&mut calls, AggCall::Min(col)),
                },
                "MAX" => Finisher::Max {
                    idx: call_idx(&mut calls, AggCall::Max(col)),
                },
                _ => return Err("expr-arg"),
            }
        };
        finishers.push((agg_key(agg), finisher));
    }

    // Outside the aggregates, only grouped columns may appear — any
    // other reference reads per-row state the partials no longer carry.
    let out_names: Vec<String> = sel
        .items
        .iter()
        .map(|i| match i {
            SelectItem::Expr { expr, alias } => alias.clone().unwrap_or_else(|| derive_name(expr)),
            _ => String::new(),
        })
        .collect();
    let grouped = |table: &Option<String>, name: &str| -> bool {
        col_ok(table, name, &col_set, &ft.name, alias)
            && group_cols.iter().any(|g| g.eq_ignore_ascii_case(name))
    };
    for item in &sel.items {
        if let SelectItem::Expr { expr, .. } = item {
            if !non_agg_cols_grouped(expr, &grouped) {
                return Err("non-group-column");
            }
        }
    }
    if let Some(h) = &sel.having {
        if !non_agg_cols_grouped(h, &grouped) {
            return Err("non-group-column");
        }
    }
    for ob in &sel.order_by {
        // A bare column naming an output alias sorts by output
        // position at the hub; anything else must be grouped.
        if let Expr::Column { table: None, name } = &ob.expr {
            if out_names.iter().any(|c| c.eq_ignore_ascii_case(name)) {
                continue;
            }
        }
        if !non_agg_cols_grouped(&ob.expr, &grouped) {
            return Err("non-group-column");
        }
    }

    Ok(Some(AggPlan {
        group_cols,
        calls,
        finishers,
    }))
}

/// True when every column reference *outside* aggregate calls
/// satisfies `grouped`.
fn non_agg_cols_grouped(e: &Expr, grouped: &dyn Fn(&Option<String>, &str) -> bool) -> bool {
    if let Expr::Function { name, .. } = e {
        if is_aggregate_fn(name) {
            return true; // aggregate arguments are checked separately
        }
    }
    match e {
        Expr::Column { table, name } => grouped(table, name),
        Expr::Unary(_, inner) => non_agg_cols_grouped(inner, grouped),
        Expr::Binary(l, _, r) => {
            non_agg_cols_grouped(l, grouped) && non_agg_cols_grouped(r, grouped)
        }
        Expr::IsNull { expr, .. } => non_agg_cols_grouped(expr, grouped),
        Expr::Like { expr, pattern, .. } => {
            non_agg_cols_grouped(expr, grouped) && non_agg_cols_grouped(pattern, grouped)
        }
        Expr::InList { expr, list, .. } => {
            non_agg_cols_grouped(expr, grouped)
                && list.iter().all(|i| non_agg_cols_grouped(i, grouped))
        }
        Expr::Between { expr, lo, hi, .. } => {
            non_agg_cols_grouped(expr, grouped)
                && non_agg_cols_grouped(lo, grouped)
                && non_agg_cols_grouped(hi, grouped)
        }
        Expr::Function { args, .. } => args.iter().all(|a| non_agg_cols_grouped(a, grouped)),
        _ => true,
    }
}

/// The columns the statement needs shipped, in schema order. Falls back
/// to all columns for wildcards; guarantees at least one column so row
/// counts survive (e.g. `SELECT COUNT(*)`).
fn needed_columns(sel: &SelectStmt, ft: &ForeignTable) -> Result<Vec<String>, FedError> {
    let mut wildcard = false;
    let mut used: BTreeSet<String> = BTreeSet::new();
    let mut collect = |e: &Expr| {
        e.walk(&mut |n| {
            if let Expr::Column { name, .. } = n {
                used.insert(name.to_ascii_uppercase());
            }
        })
    };
    for item in &sel.items {
        match item {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => wildcard = true,
            SelectItem::Expr { expr, .. } => collect(expr),
        }
    }
    if let Some(w) = &sel.where_clause {
        collect(w);
    }
    for g in &sel.group_by {
        collect(g);
    }
    if let Some(h) = &sel.having {
        collect(h);
    }
    for o in &sel.order_by {
        collect(&o.expr);
    }
    if wildcard {
        return Ok(ft.columns.iter().map(|(c, _)| c.clone()).collect());
    }
    for u in &used {
        if !ft.columns.iter().any(|(c, _)| c == u) {
            return Err(FedError::Unsupported(format!(
                "column {u} is not part of foreign table {}",
                ft.name
            )));
        }
    }
    let mut cols: Vec<String> = ft
        .columns
        .iter()
        .filter(|(c, _)| used.contains(c))
        .map(|(c, _)| c.clone())
        .collect();
    if cols.is_empty() {
        // Row-count-only statements still need one shipped column.
        cols.push(ft.columns[0].0.clone());
    }
    Ok(cols)
}

/// Is a column reference resolvable against the foreign table?
fn col_ok(table: &Option<String>, name: &str, cols: &BTreeSet<&str>, t: &str, alias: &str) -> bool {
    let qual_ok = match table {
        None => true,
        Some(q) => {
            let q = q.to_ascii_uppercase();
            q == t || q == alias.to_ascii_uppercase()
        }
    };
    qual_ok && cols.contains(name.to_ascii_uppercase().as_str())
}

/// Can a conjunct run unchanged at a site? Functions stay at the hub
/// (sites only promise the core expression grammar), everything else
/// pushes if its columns belong to the table.
fn pushable(e: &Expr, cols: &BTreeSet<&str>, t: &str, alias: &str) -> bool {
    let mut ok = true;
    e.walk(&mut |n| match n {
        Expr::Function { .. } => ok = false,
        Expr::Column { table, name } if !col_ok(table, name, cols, t, alias) => {
            ok = false;
        }
        _ => {}
    });
    ok
}

/// ORDER BY keys as `(column, asc)` pairs if every key is a plain
/// shipped column (possibly qualified); `None` otherwise. An empty
/// ORDER BY is fine — a bare LIMIT still pushes.
fn order_keys(
    order_by: &[OrderBy],
    cols: &BTreeSet<&str>,
    t: &str,
    alias: &str,
) -> Option<Vec<(String, bool)>> {
    let mut keys = Vec::with_capacity(order_by.len());
    for o in order_by {
        match &o.expr {
            Expr::Column { table, name } if col_ok(table, name, cols, t, alias) => {
                keys.push((name.to_ascii_uppercase(), o.asc));
            }
            _ => return None,
        }
    }
    Some(keys)
}

/// Match `site_key = <const>` (either orientation) and resolve the
/// constant, looking through parameters.
fn key_equality(e: &Expr, key: &str, t: &str, alias: &str, params: &[Value]) -> Option<Value> {
    let Expr::Binary(l, BinaryOp::Eq, r) = e else {
        return None;
    };
    let is_key = |side: &Expr| match side {
        Expr::Column { table, name } => {
            name.eq_ignore_ascii_case(key)
                && match table {
                    None => true,
                    Some(q) => {
                        let q = q.to_ascii_uppercase();
                        q == t || q == alias.to_ascii_uppercase()
                    }
                }
        }
        _ => false,
    };
    let as_const = |side: &Expr| match side {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Param(i) => params.get(i.checked_sub(1)?).cloned(),
        _ => None,
    };
    if is_key(l) {
        as_const(r)
    } else if is_key(r) {
        as_const(l)
    } else {
        None
    }
}

/// Clone `e` with every literal and parameter replaced by a fresh
/// positional parameter, appending the value to `out` in appearance
/// order — the shipped predicate text then carries no data values.
pub fn externalize(e: &Expr, params: &[Value], out: &mut Vec<Value>) -> Result<Expr, FedError> {
    let push = |v: Value, out: &mut Vec<Value>| {
        out.push(v);
        Expr::Param(out.len())
    };
    Ok(match e {
        Expr::Literal(v) => push(v.clone(), out),
        Expr::Param(i) => {
            let v = params
                .get(
                    i.checked_sub(1)
                        .ok_or_else(|| FedError::Unsupported("parameter index 0".into()))?,
                )
                .cloned()
                .ok_or_else(|| FedError::Unsupported(format!("missing parameter ?{i}")))?;
            push(v, out)
        }
        Expr::Column { .. } => e.clone(),
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(externalize(inner, params, out)?)),
        Expr::Binary(l, op, r) => Expr::Binary(
            Box::new(externalize(l, params, out)?),
            *op,
            Box::new(externalize(r, params, out)?),
        ),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(externalize(expr, params, out)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(externalize(expr, params, out)?),
            pattern: Box::new(externalize(pattern, params, out)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(externalize(expr, params, out)?),
            list: list
                .iter()
                .map(|x| externalize(x, params, out))
                .collect::<Result<Vec<_>, _>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(externalize(expr, params, out)?),
            lo: Box::new(externalize(lo, params, out)?),
            hi: Box::new(externalize(hi, params, out)?),
            negated: *negated,
        },
        Expr::Function { .. } => {
            return Err(FedError::Unsupported(
                "function calls cannot be pushed to a site".into(),
            ))
        }
    })
}

/// How one leg of a federated JOIN fetches its rows.
#[derive(Debug, Clone, PartialEq)]
pub enum LegStrategy {
    /// Hub-local table: the merge join reads it in place.
    Local,
    /// Deliberate full gather: the FROM anchor always scans its
    /// surviving partitions (pushed conjuncts and pruning still apply).
    Gather,
    /// Keyed remote scan (semi-join shipping): the hub extracts the
    /// bound join-key set from an earlier leg and ships it with the
    /// scan request, so sites return only rows that can match.
    SemiJoin {
        /// Column of this leg restricted by the shipped key list.
        key_column: String,
        /// Index of the earlier leg whose rows supply the keys.
        source_leg: usize,
        /// Column of the source leg whose values form the key set.
        source_column: String,
    },
    /// Full-partition ship, with the reason recorded for EXPLAIN.
    FullShip {
        /// Why keys could not be shipped for this leg.
        reason: String,
    },
}

/// One table term of a federated JOIN: the FROM anchor (index 0) or a
/// joined table, with its fetch strategy and pushdown decisions.
#[derive(Debug, Clone)]
pub struct JoinLeg {
    /// Table name (upper-case).
    pub table: String,
    /// Binding alias (upper-case; the table name when unaliased).
    pub alias: String,
    /// `None` for the FROM anchor, the join kind otherwise.
    pub kind: Option<JoinKind>,
    /// Is this leg a registered foreign table?
    pub federated: bool,
    /// Shipped projection for federated legs (foreign-schema order,
    /// never empty); the full known column list for local legs.
    pub columns: Vec<String>,
    /// Conjuncts evaluated at the sites for this leg (original form).
    pub pushed: Vec<Expr>,
    /// Site-key value bound by a *pushed* conjunct — the pruning
    /// handle. Derived only from pushed conjuncts so pruning inherits
    /// their soundness (a LEFT leg never prunes on a WHERE binding).
    pub site_key_value: Option<Value>,
    /// How the leg's rows reach the hub.
    pub strategy: LegStrategy,
}

impl JoinLeg {
    /// Pushed conjuncts rendered as SQL (for EXPLAIN).
    pub fn pushed_sql(&self) -> Vec<String> {
        self.pushed.iter().map(expr_to_sql).collect()
    }
}

/// The whole-statement plan for a federated JOIN.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    /// Table legs in statement order (FROM anchor first).
    pub legs: Vec<JoinLeg>,
    /// WHERE conjuncts that only the hub evaluates (for EXPLAIN; the
    /// merge re-runs the full original statement regardless).
    pub hub_eval: Vec<Expr>,
}

impl JoinPlan {
    /// Hub-evaluated conjuncts rendered as SQL (for EXPLAIN).
    pub fn hub_sql(&self) -> Vec<String> {
        self.hub_eval.iter().map(expr_to_sql).collect()
    }
}

/// Structural checks shared by the pushdown planner and the
/// ship-everything ablation, so both reject unsupported JOIN shapes
/// with the same typed error.
pub fn validate_join(sel: &SelectStmt) -> Result<(), FedError> {
    if sel.from.is_none() {
        return Err(FedError::Unsupported(
            "federated JOIN requires a FROM table".into(),
        ));
    }
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let refs = std::iter::once(sel.from.as_ref().expect("checked above"))
        .chain(sel.joins.iter().map(|j| &j.table));
    for t in refs {
        let label = binding_name(t);
        if !seen.insert(label.clone()) {
            return Err(FedError::Unsupported(format!(
                "duplicate table alias {label} in federated JOIN"
            )));
        }
    }
    Ok(())
}

/// The upper-case name a table term binds in the statement.
fn binding_name(t: &TableRef) -> String {
    t.alias
        .as_deref()
        .unwrap_or(t.name.as_str())
        .to_ascii_uppercase()
}

/// Decompose a SELECT with JOINs into per-leg federated scans plus a
/// hub merge join.
///
/// `local_columns` resolves hub-local table names to their column
/// lists — the planner needs them to attribute column references to
/// legs. At least one leg must be a registered foreign table.
///
/// Soundness rules encoded here (the hub re-runs the original
/// statement over staged rows, so a site may only drop rows that
/// provably cannot change the merged result):
///
/// * WHERE conjuncts push only to non-nullable legs — the anchor and
///   INNER-joined legs. A LEFT-joined leg never receives WHERE pushes:
///   dropping its rows at the site turns "row present but filtered"
///   into "row absent", which *creates* a NULL-extended row (e.g.
///   `WHERE b.x IS NULL` would flip from false to true).
/// * ON conjuncts referencing only the joined leg push for both join
///   kinds: a row failing the conjunct and a row absent from the site
///   result both yield "no match", which INNER and LEFT treat
///   identically.
/// * Semi-join keys for a leg come from an earlier leg's *gathered*
///   rows (a superset of the rows that survive the hub merge), or a
///   full hub column scan for local legs — never from a post-filter
///   set. NULL keys are excluded: under three-valued `=` they can
///   never match.
pub fn plan_join(
    sel: &SelectStmt,
    catalog: &FedCatalog,
    local_columns: &dyn Fn(&str) -> Option<Vec<String>>,
    params: &[Value],
    pushdown: bool,
) -> Result<JoinPlan, FedError> {
    validate_join(sel)?;
    let from = sel.from.as_ref().expect("validate_join checked FROM");

    struct Term<'a> {
        tref: &'a TableRef,
        kind: Option<JoinKind>,
        on: Option<&'a Expr>,
    }
    let mut terms = vec![Term {
        tref: from,
        kind: None,
        on: None,
    }];
    for j in &sel.joins {
        terms.push(Term {
            tref: &j.table,
            kind: Some(j.kind),
            on: Some(&j.on),
        });
    }

    // 1. Legs with their full column lists (needed for attribution).
    let mut legs: Vec<JoinLeg> = Vec::with_capacity(terms.len());
    for t in &terms {
        let table = t.tref.name.to_ascii_uppercase();
        let (federated, cols) = match catalog.table(&table) {
            Some(ft) => (true, ft.columns.iter().map(|(c, _)| c.clone()).collect()),
            None => match local_columns(&table) {
                Some(cols) => (
                    false,
                    cols.iter()
                        .map(|c| c.to_ascii_uppercase())
                        .collect::<Vec<_>>(),
                ),
                None => return Err(FedError::UnknownTable(table)),
            },
        };
        legs.push(JoinLeg {
            table,
            alias: binding_name(t.tref),
            kind: t.kind,
            federated,
            columns: cols,
            pushed: Vec::new(),
            site_key_value: None,
            strategy: LegStrategy::Local,
        });
    }
    if !legs.iter().any(|l| l.federated) {
        return Err(FedError::Unsupported(
            "JOIN has no foreign-table leg to federate".into(),
        ));
    }

    let col_sets: Vec<BTreeSet<String>> = legs
        .iter()
        .map(|l| l.columns.iter().cloned().collect())
        .collect();
    // Resolve a column reference to its owning leg, or None when it is
    // unknown or ambiguous (the hub merge is then the arbiter).
    let owner = |table: &Option<String>, name: &str| -> Option<usize> {
        let name = name.to_ascii_uppercase();
        match table {
            Some(q) => {
                let q = q.to_ascii_uppercase();
                let i = legs.iter().position(|l| l.alias == q)?;
                col_sets[i].contains(&name).then_some(i)
            }
            None => {
                let mut hits = legs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| col_sets[*i].contains(&name))
                    .map(|(i, _)| i);
                let first = hits.next()?;
                hits.next().is_none().then_some(first)
            }
        }
    };
    // Does `e` reference exactly one leg (and which)? Conjuncts that
    // cannot be attributed to a single leg stay at the hub.
    let single_leg = |e: &Expr| -> Option<usize> {
        let mut leg: Option<usize> = None;
        let mut ok = true;
        let mut any = false;
        e.walk(&mut |n| match n {
            Expr::Function { .. } => ok = false,
            Expr::Column { table, name } => {
                any = true;
                match owner(table, name) {
                    Some(i) if leg.is_none() || leg == Some(i) => leg = Some(i),
                    _ => ok = false,
                }
            }
            _ => {}
        });
        (ok && any).then_some(leg?)
    };

    // 2. WHERE conjuncts: push to non-nullable federated legs.
    let mut hub_eval = Vec::new();
    let mut pushed: Vec<Vec<Expr>> = vec![Vec::new(); legs.len()];
    for c in sel
        .where_clause
        .as_ref()
        .map(plan::conjuncts)
        .unwrap_or_default()
    {
        let target = single_leg(c)
            .filter(|&i| pushdown && legs[i].federated && legs[i].kind != Some(JoinKind::Left));
        match target {
            Some(i) => pushed[i].push(c.clone()),
            None => hub_eval.push(c.clone()),
        }
    }

    // 3. ON conjuncts: push single-leg filters, extract equi-join keys.
    let mut strategies: Vec<LegStrategy> = legs
        .iter()
        .map(|l| {
            if !l.federated {
                LegStrategy::Local
            } else if l.kind.is_none() {
                LegStrategy::Gather
            } else if !pushdown {
                LegStrategy::FullShip {
                    reason: "pushdown disabled".into(),
                }
            } else {
                LegStrategy::FullShip {
                    reason: "no equi-join key binds this leg to an earlier one".into(),
                }
            }
        })
        .collect();
    for (i, t) in terms.iter().enumerate() {
        let Some(on) = t.on else { continue };
        for c in plan::conjuncts(on) {
            if pushdown && legs[i].federated && single_leg(c) == Some(i) {
                pushed[i].push(c.clone());
                continue;
            }
            // Equi-join key: this leg's column = an earlier leg's column.
            if !pushdown
                || !legs[i].federated
                || !matches!(
                    strategies[i],
                    LegStrategy::FullShip { ref reason } if reason.starts_with("no equi-join")
                )
            {
                continue;
            }
            let Expr::Binary(l, BinaryOp::Eq, r) = c else {
                continue;
            };
            let col_of = |e: &Expr| match e {
                Expr::Column { table, name } => {
                    owner(table, name).map(|i| (i, name.to_ascii_uppercase()))
                }
                _ => None,
            };
            if let (Some((li, lc)), Some((ri, rc))) = (col_of(l), col_of(r)) {
                let ((ki, kc), (si, sc)) = if li == i && ri < i {
                    ((li, lc), (ri, rc))
                } else if ri == i && li < i {
                    ((ri, rc), (li, lc))
                } else {
                    continue;
                };
                debug_assert_eq!(ki, i);
                strategies[i] = LegStrategy::SemiJoin {
                    key_column: kc,
                    source_leg: si,
                    source_column: sc,
                };
            }
        }
    }

    // 4. Shipped projections: every column the statement mentions for
    // the leg, plus join-key columns on both ends.
    let mut wildcard_all = false;
    let mut wildcard_legs: BTreeSet<usize> = BTreeSet::new();
    let mut used: Vec<BTreeSet<String>> = vec![BTreeSet::new(); legs.len()];
    {
        let mut collect = |e: &Expr| {
            e.walk(&mut |n| {
                if let Expr::Column { table, name } = n {
                    let name = name.to_ascii_uppercase();
                    match table {
                        Some(q) => {
                            let q = q.to_ascii_uppercase();
                            if let Some(i) = legs.iter().position(|l| l.alias == q) {
                                used[i].insert(name);
                            }
                        }
                        // Unqualified (possibly ambiguous): every leg
                        // that knows the column ships it.
                        None => {
                            for (i, set) in col_sets.iter().enumerate() {
                                if set.contains(&name) {
                                    used[i].insert(name.clone());
                                }
                            }
                        }
                    }
                }
            })
        };
        for item in &sel.items {
            match item {
                SelectItem::Wildcard => wildcard_all = true,
                SelectItem::QualifiedWildcard(q) => {
                    let q = q.to_ascii_uppercase();
                    match legs.iter().position(|l| l.alias == q) {
                        Some(i) => {
                            wildcard_legs.insert(i);
                        }
                        None => wildcard_all = true,
                    }
                }
                SelectItem::Expr { expr, .. } => collect(expr),
            }
        }
        if let Some(w) = &sel.where_clause {
            collect(w);
        }
        for g in &sel.group_by {
            collect(g);
        }
        if let Some(h) = &sel.having {
            collect(h);
        }
        for o in &sel.order_by {
            collect(&o.expr);
        }
        for t in &terms {
            if let Some(on) = t.on {
                collect(on);
            }
        }
    }
    for (i, s) in strategies.iter().enumerate() {
        if let LegStrategy::SemiJoin {
            key_column,
            source_leg,
            source_column,
        } = s
        {
            used[i].insert(key_column.clone());
            used[*source_leg].insert(source_column.clone());
        }
    }
    for (i, leg) in legs.iter_mut().enumerate() {
        leg.strategy = strategies[i].clone();
        leg.pushed = std::mem::take(&mut pushed[i]);
        if !leg.federated {
            continue;
        }
        if !wildcard_all && !wildcard_legs.contains(&i) {
            let mut cols: Vec<String> = leg
                .columns
                .iter()
                .filter(|c| used[i].contains(*c))
                .cloned()
                .collect();
            if cols.is_empty() {
                cols.push(leg.columns[0].clone());
            }
            leg.columns = cols;
        }
    }

    // 5. Per-leg site-key bindings from the *pushed* conjuncts.
    for leg in legs.iter_mut() {
        if !leg.federated {
            continue;
        }
        let Some(ft) = catalog.table(&leg.table) else {
            continue;
        };
        if let Some(key) = &ft.site_key {
            leg.site_key_value = leg
                .pushed
                .iter()
                .find_map(|c| key_equality(c, key, &leg.table, &leg.alias, params));
        }
    }

    Ok(JoinPlan { legs, hub_eval })
}

/// Clone `e` with every column qualifier removed. Pushed predicates
/// ship qualifier-free: the site executes a single-table scan, where
/// the hub-side alias would not resolve, and every column in a pushed
/// conjunct is already known to belong to that one table.
pub fn strip_qualifiers(e: &Expr) -> Expr {
    match e {
        Expr::Column { name, .. } => Expr::Column {
            table: None,
            name: name.clone(),
        },
        Expr::Literal(_) | Expr::Param(_) => e.clone(),
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(strip_qualifiers(inner))),
        Expr::Binary(l, op, r) => Expr::Binary(
            Box::new(strip_qualifiers(l)),
            *op,
            Box::new(strip_qualifiers(r)),
        ),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(strip_qualifiers(expr)),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(strip_qualifiers(expr)),
            pattern: Box::new(strip_qualifiers(pattern)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(strip_qualifiers(expr)),
            list: list.iter().map(strip_qualifiers).collect(),
            negated: *negated,
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(strip_qualifiers(expr)),
            lo: Box::new(strip_qualifiers(lo)),
            hi: Box::new(strip_qualifiers(hi)),
            negated: *negated,
        },
        Expr::Function { name, args, star } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(strip_qualifiers).collect(),
            star: *star,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{FedCatalog, Partition};
    use easia_db::sql::{parse, Stmt};
    use easia_db::SqlType;

    fn ft() -> ForeignTable {
        let mut c = FedCatalog::default();
        c.create_foreign_table(
            "SIM",
            vec![
                ("K".into(), SqlType::Varchar(30)),
                ("SITE".into(), SqlType::Varchar(20)),
                ("N".into(), SqlType::Integer),
                ("X".into(), SqlType::Double),
            ],
            Some("SITE"),
            vec![Partition::new(None, &["soton"])],
        )
        .unwrap();
        c.table("SIM").unwrap().clone()
    }

    fn sel(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Stmt::Select(s) => s,
            other => panic!("expected select: {other:?}"),
        }
    }

    #[test]
    fn splits_pushed_and_hub_conjuncts() {
        let s = sel("SELECT K FROM SIM WHERE N > 3 AND UPPER(K) = 'A' AND SITE = 'cam'");
        let p = plan_select(&s, &ft(), &[]).unwrap();
        assert_eq!(p.pushed_sql(), vec!["(N > 3)", "(SITE = 'cam')"]);
        assert_eq!(p.hub_sql(), vec!["(UPPER(K) = 'A')"]);
        assert_eq!(p.site_key_value, Some(Value::Str("cam".into())));
        // Hub conjunct mentions K; pushed mentions N and SITE.
        assert_eq!(p.columns, vec!["K", "SITE", "N"]);
    }

    #[test]
    fn projection_pushdown_and_fallbacks() {
        let p = plan_select(&sel("SELECT N FROM SIM"), &ft(), &[]).unwrap();
        assert_eq!(p.columns, vec!["N"]);
        let p = plan_select(&sel("SELECT * FROM SIM WHERE N = 1"), &ft(), &[]).unwrap();
        assert_eq!(p.columns, vec!["K", "SITE", "N", "X"]);
        let p = plan_select(&sel("SELECT COUNT(*) FROM SIM"), &ft(), &[]).unwrap();
        assert_eq!(p.columns, vec!["K"], "row-count still ships one column");
        assert!(plan_select(&sel("SELECT GHOST FROM SIM"), &ft(), &[]).is_err());
    }

    #[test]
    fn topk_pushdown_rules() {
        let p = plan_select(
            &sel("SELECT K, N FROM SIM WHERE N > 0 ORDER BY N DESC LIMIT 5"),
            &ft(),
            &[],
        )
        .unwrap();
        assert_eq!(p.order_limit, Some((vec![("N".into(), false)], 5)));
        // A hub-evaluated conjunct blocks the cut.
        let p = plan_select(
            &sel("SELECT K FROM SIM WHERE UPPER(K) = 'A' ORDER BY K LIMIT 5"),
            &ft(),
            &[],
        )
        .unwrap();
        assert_eq!(p.order_limit, None);
        // Aggregates block it too.
        let p = plan_select(&sel("SELECT MAX(N) FROM SIM LIMIT 1"), &ft(), &[]).unwrap();
        assert_eq!(p.order_limit, None);
        // Bare LIMIT without ORDER BY pushes.
        let p = plan_select(&sel("SELECT K FROM SIM LIMIT 3"), &ft(), &[]).unwrap();
        assert_eq!(p.order_limit, Some((vec![], 3)));
    }

    #[test]
    fn site_key_binding_through_params() {
        let s = sel("SELECT K FROM SIM WHERE SITE = ?");
        let p = plan_select(&s, &ft(), &[Value::Str("cam".into())]).unwrap();
        assert_eq!(p.site_key_value, Some(Value::Str("cam".into())));
        // Non-equality predicates do not bind.
        let s = sel("SELECT K FROM SIM WHERE SITE LIKE 'c%'");
        let p = plan_select(&s, &ft(), &[]).unwrap();
        assert_eq!(p.site_key_value, None);
    }

    #[test]
    fn externalize_strips_values() {
        let s = sel("SELECT K FROM SIM WHERE N BETWEEN 1 AND ? AND K IN ('a', 'b')");
        let conj = s.where_clause.unwrap();
        let mut out = Vec::new();
        let rewritten = externalize(&conj, &[Value::Int(9)], &mut out).unwrap();
        assert_eq!(
            expr_to_sql(&rewritten),
            "((N BETWEEN ? AND ?) AND (K IN (?, ?)))"
        );
        assert_eq!(
            out,
            vec![
                Value::Int(1),
                Value::Int(9),
                Value::Str("a".into()),
                Value::Str("b".into())
            ]
        );
    }

    #[test]
    fn joins_defer_to_the_join_planner() {
        // plan_select stays a single-table entry point; statements with
        // JOINs go through plan_join instead.
        let s = sel("SELECT a.K FROM SIM a JOIN SIM b ON a.K = b.K");
        assert!(matches!(
            plan_select(&s, &ft(), &[]),
            Err(FedError::Unsupported(_))
        ));
    }

    fn join_catalog() -> FedCatalog {
        let mut c = FedCatalog::default();
        c.create_foreign_table(
            "SIM",
            vec![
                ("K".into(), SqlType::Varchar(30)),
                ("SITE".into(), SqlType::Varchar(20)),
                ("N".into(), SqlType::Integer),
                ("X".into(), SqlType::Double),
            ],
            Some("SITE"),
            vec![Partition::new(None, &["soton"])],
        )
        .unwrap();
        c.create_foreign_table(
            "RES",
            vec![
                ("R".into(), SqlType::Varchar(30)),
                ("K".into(), SqlType::Varchar(30)),
                ("SITE".into(), SqlType::Varchar(20)),
                ("BYTES".into(), SqlType::Integer),
            ],
            Some("SITE"),
            vec![Partition::new(None, &["soton"])],
        )
        .unwrap();
        c
    }

    fn no_locals(_: &str) -> Option<Vec<String>> {
        None
    }

    #[test]
    fn join_plan_extracts_semijoin_key() {
        let s = sel("SELECT s.K, r.R FROM SIM s JOIN RES r ON s.K = r.K \
             WHERE s.N > 3 AND r.BYTES > 100 ORDER BY s.K");
        let p = plan_join(&s, &join_catalog(), &no_locals, &[], true).unwrap();
        assert_eq!(p.legs.len(), 2);
        assert!(p.legs[0].federated && p.legs[1].federated);
        // The anchor ships everything the statement mentions plus the
        // key column; the joined leg is keyed on the anchor's K values.
        assert_eq!(
            p.legs[1].strategy,
            LegStrategy::SemiJoin {
                key_column: "K".into(),
                source_leg: 0,
                source_column: "K".into(),
            }
        );
        assert_eq!(p.legs[0].pushed_sql(), vec!["(S.N > 3)"]);
        assert_eq!(p.legs[1].pushed_sql(), vec!["(R.BYTES > 100)"]);
        assert!(p.hub_eval.is_empty());
        assert_eq!(p.legs[0].columns, vec!["K", "N"]);
        assert_eq!(p.legs[1].columns, vec!["R", "K", "BYTES"]);
    }

    #[test]
    fn left_join_blocks_where_push_but_keeps_on_push_and_keys() {
        let s = sel("SELECT s.K FROM SIM s LEFT JOIN RES r \
             ON s.K = r.K AND r.BYTES > 100 WHERE r.R IS NULL");
        let p = plan_join(&s, &join_catalog(), &no_locals, &[], true).unwrap();
        // WHERE on the nullable leg must stay at the hub: dropping RES
        // rows at the site would *create* NULL-extended matches.
        assert_eq!(p.hub_sql(), vec!["(R.R IS NULL)"]);
        // The ON filter on the joined leg itself is still pushable, and
        // the equi-join key still ships.
        assert_eq!(p.legs[1].pushed_sql(), vec!["(R.BYTES > 100)"]);
        assert!(matches!(
            p.legs[1].strategy,
            LegStrategy::SemiJoin { ref key_column, .. } if key_column == "K"
        ));
    }

    #[test]
    fn join_without_key_or_pushdown_falls_back_to_full_ship() {
        let cat = join_catalog();
        let s = sel("SELECT s.K FROM SIM s JOIN RES r ON s.N > r.BYTES");
        let p = plan_join(&s, &cat, &no_locals, &[], true).unwrap();
        assert!(matches!(
            p.legs[1].strategy,
            LegStrategy::FullShip { ref reason } if reason.contains("no equi-join key")
        ));
        let s = sel("SELECT s.K FROM SIM s JOIN RES r ON s.K = r.K");
        let p = plan_join(&s, &cat, &no_locals, &[], false).unwrap();
        assert!(matches!(
            p.legs[1].strategy,
            LegStrategy::FullShip { ref reason } if reason.contains("pushdown disabled")
        ));
    }

    #[test]
    fn join_site_key_binding_prunes_only_from_pushed_conjuncts() {
        let cat = join_catalog();
        let s = sel("SELECT s.K FROM SIM s JOIN RES r ON s.K = r.K WHERE s.SITE = 'cam'");
        let p = plan_join(&s, &cat, &no_locals, &[], true).unwrap();
        assert_eq!(p.legs[0].site_key_value, Some(Value::Str("cam".into())));
        assert_eq!(p.legs[1].site_key_value, None);
        // On a LEFT-joined leg the WHERE binding is not pushed, so it
        // must not prune either.
        let s = sel("SELECT s.K FROM SIM s LEFT JOIN RES r ON s.K = r.K WHERE r.SITE = 'cam'");
        let p = plan_join(&s, &cat, &no_locals, &[], true).unwrap();
        assert_eq!(p.legs[1].site_key_value, None);
    }

    #[test]
    fn join_validation_shared_error_paths() {
        let cat = join_catalog();
        let s = sel("SELECT a.K FROM SIM a JOIN SIM a ON a.K = a.K");
        let err = plan_join(&s, &cat, &no_locals, &[], true).unwrap_err();
        assert!(
            matches!(&err, FedError::Unsupported(m) if m.contains("duplicate table alias A")),
            "unexpected: {err:?}"
        );
        // validate_join alone yields the identical error — the ablation
        // path reuses it.
        let err2 = validate_join(&s).unwrap_err();
        assert_eq!(format!("{err}"), format!("{err2}"));

        let s = sel("SELECT a.K FROM GHOST a JOIN SIM b ON a.K = b.K");
        assert!(matches!(
            plan_join(&s, &cat, &no_locals, &[], true),
            Err(FedError::UnknownTable(t)) if t == "GHOST"
        ));
    }

    #[test]
    fn strip_qualifiers_rewrites_columns_only() {
        let s = sel("SELECT K FROM SIM WHERE (s.N > 3 AND s.K LIKE 'a%') OR s.X IS NULL");
        let w = s.where_clause.unwrap();
        assert_eq!(
            expr_to_sql(&strip_qualifiers(&w)),
            "(((N > 3) AND (K LIKE 'a%')) OR (X IS NULL))"
        );
    }
}
