//! The hub-side distributed planner.
//!
//! Given a parsed SELECT over one foreign table, decide per conjunct
//! whether it can run at the sites (predicate pushdown), which columns
//! must cross the wire (projection pushdown), whether ORDER BY/LIMIT
//! can be pushed (top-k merge: every site ships at most `limit` rows),
//! and which partitions a site-key binding allows us to skip entirely
//! (partition pruning).
//!
//! Correctness story: the hub re-runs the *original* statement over a
//! staging table filled with the shipped rows, so pushdown only ever
//! removes rows/columns that provably cannot influence the result —
//! pushed conjuncts are row-local filters (evaluating them twice is
//! idempotent), the shipped projection includes every column the
//! statement mentions, and ORDER BY/LIMIT is only pushed when the
//! hub's final sort-and-cut over the union reproduces it.

use crate::catalog::ForeignTable;
use crate::FedError;
use easia_db::sql::ast::{BinaryOp, Expr, OrderBy, SelectItem, SelectStmt};
use easia_db::sql::expr_to_sql;
use easia_db::{plan, Value};
use std::collections::BTreeSet;

/// The per-table federation plan.
#[derive(Debug, Clone)]
pub struct TablePlan {
    /// Conjuncts evaluated at the sites (original form, for display).
    pub pushed: Vec<Expr>,
    /// Conjuncts only the hub can evaluate.
    pub hub_eval: Vec<Expr>,
    /// Shipped columns, in foreign-schema order. Never empty.
    pub columns: Vec<String>,
    /// Pushed top-k: `(order keys, limit)` when sites may cut early.
    pub order_limit: Option<(Vec<(String, bool)>, usize)>,
    /// The site-key value bound by an equality conjunct, when one
    /// exists — the pruning handle.
    pub site_key_value: Option<Value>,
}

impl TablePlan {
    /// Pushed conjuncts rendered as SQL (for EXPLAIN).
    pub fn pushed_sql(&self) -> Vec<String> {
        self.pushed.iter().map(expr_to_sql).collect()
    }

    /// Hub-evaluated conjuncts rendered as SQL (for EXPLAIN).
    pub fn hub_sql(&self) -> Vec<String> {
        self.hub_eval.iter().map(expr_to_sql).collect()
    }
}

/// Build the plan for `sel` against foreign table `ft`.
///
/// `params` are the statement's positional parameters — needed to
/// resolve a `site_key = ?` binding for pruning.
pub fn plan_select(
    sel: &SelectStmt,
    ft: &ForeignTable,
    params: &[Value],
) -> Result<TablePlan, FedError> {
    if !sel.joins.is_empty() {
        return Err(FedError::Unsupported(
            "JOIN over a foreign table is not federated".into(),
        ));
    }
    let col_set: BTreeSet<&str> = ft.columns.iter().map(|(c, _)| c.as_str()).collect();
    let alias = sel
        .from
        .as_ref()
        .and_then(|t| t.alias.clone())
        .unwrap_or_else(|| ft.name.clone());

    let conjuncts: Vec<&Expr> = sel
        .where_clause
        .as_ref()
        .map(plan::conjuncts)
        .unwrap_or_default();
    let mut pushed = Vec::new();
    let mut hub_eval = Vec::new();
    for c in &conjuncts {
        if pushable(c, &col_set, &ft.name, &alias) {
            pushed.push((*c).clone());
        } else {
            hub_eval.push((*c).clone());
        }
    }

    let columns = needed_columns(sel, ft)?;

    // Top-k pushdown: sound only when the statement is a plain
    // filter-project (no aggregation, grouping or DISTINCT), every
    // conjunct runs at the sites, and the sort keys are shipped columns.
    let order_limit = match sel.limit {
        Some(limit)
            if hub_eval.is_empty()
                && !sel.distinct
                && sel.group_by.is_empty()
                && sel.having.is_none()
                && !sel.items.iter().any(|i| match i {
                    SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                    _ => false,
                }) =>
        {
            order_keys(&sel.order_by, &col_set, &ft.name, &alias).map(|keys| (keys, limit))
        }
        _ => None,
    };

    let site_key_value = match &ft.site_key {
        Some(key) => conjuncts
            .iter()
            .find_map(|c| key_equality(c, key, &ft.name, &alias, params)),
        None => None,
    };

    Ok(TablePlan {
        pushed,
        hub_eval,
        columns,
        order_limit,
        site_key_value,
    })
}

/// The columns the statement needs shipped, in schema order. Falls back
/// to all columns for wildcards; guarantees at least one column so row
/// counts survive (e.g. `SELECT COUNT(*)`).
fn needed_columns(sel: &SelectStmt, ft: &ForeignTable) -> Result<Vec<String>, FedError> {
    let mut wildcard = false;
    let mut used: BTreeSet<String> = BTreeSet::new();
    let mut collect = |e: &Expr| {
        e.walk(&mut |n| {
            if let Expr::Column { name, .. } = n {
                used.insert(name.to_ascii_uppercase());
            }
        })
    };
    for item in &sel.items {
        match item {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => wildcard = true,
            SelectItem::Expr { expr, .. } => collect(expr),
        }
    }
    if let Some(w) = &sel.where_clause {
        collect(w);
    }
    for g in &sel.group_by {
        collect(g);
    }
    if let Some(h) = &sel.having {
        collect(h);
    }
    for o in &sel.order_by {
        collect(&o.expr);
    }
    if wildcard {
        return Ok(ft.columns.iter().map(|(c, _)| c.clone()).collect());
    }
    for u in &used {
        if !ft.columns.iter().any(|(c, _)| c == u) {
            return Err(FedError::Unsupported(format!(
                "column {u} is not part of foreign table {}",
                ft.name
            )));
        }
    }
    let mut cols: Vec<String> = ft
        .columns
        .iter()
        .filter(|(c, _)| used.contains(c))
        .map(|(c, _)| c.clone())
        .collect();
    if cols.is_empty() {
        // Row-count-only statements still need one shipped column.
        cols.push(ft.columns[0].0.clone());
    }
    Ok(cols)
}

/// Is a column reference resolvable against the foreign table?
fn col_ok(table: &Option<String>, name: &str, cols: &BTreeSet<&str>, t: &str, alias: &str) -> bool {
    let qual_ok = match table {
        None => true,
        Some(q) => {
            let q = q.to_ascii_uppercase();
            q == t || q == alias.to_ascii_uppercase()
        }
    };
    qual_ok && cols.contains(name.to_ascii_uppercase().as_str())
}

/// Can a conjunct run unchanged at a site? Functions stay at the hub
/// (sites only promise the core expression grammar), everything else
/// pushes if its columns belong to the table.
fn pushable(e: &Expr, cols: &BTreeSet<&str>, t: &str, alias: &str) -> bool {
    let mut ok = true;
    e.walk(&mut |n| match n {
        Expr::Function { .. } => ok = false,
        Expr::Column { table, name } if !col_ok(table, name, cols, t, alias) => {
            ok = false;
        }
        _ => {}
    });
    ok
}

/// ORDER BY keys as `(column, asc)` pairs if every key is a plain
/// shipped column (possibly qualified); `None` otherwise. An empty
/// ORDER BY is fine — a bare LIMIT still pushes.
fn order_keys(
    order_by: &[OrderBy],
    cols: &BTreeSet<&str>,
    t: &str,
    alias: &str,
) -> Option<Vec<(String, bool)>> {
    let mut keys = Vec::with_capacity(order_by.len());
    for o in order_by {
        match &o.expr {
            Expr::Column { table, name } if col_ok(table, name, cols, t, alias) => {
                keys.push((name.to_ascii_uppercase(), o.asc));
            }
            _ => return None,
        }
    }
    Some(keys)
}

/// Match `site_key = <const>` (either orientation) and resolve the
/// constant, looking through parameters.
fn key_equality(e: &Expr, key: &str, t: &str, alias: &str, params: &[Value]) -> Option<Value> {
    let Expr::Binary(l, BinaryOp::Eq, r) = e else {
        return None;
    };
    let is_key = |side: &Expr| match side {
        Expr::Column { table, name } => {
            name.eq_ignore_ascii_case(key)
                && match table {
                    None => true,
                    Some(q) => {
                        let q = q.to_ascii_uppercase();
                        q == t || q == alias.to_ascii_uppercase()
                    }
                }
        }
        _ => false,
    };
    let as_const = |side: &Expr| match side {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Param(i) => params.get(i.checked_sub(1)?).cloned(),
        _ => None,
    };
    if is_key(l) {
        as_const(r)
    } else if is_key(r) {
        as_const(l)
    } else {
        None
    }
}

/// Clone `e` with every literal and parameter replaced by a fresh
/// positional parameter, appending the value to `out` in appearance
/// order — the shipped predicate text then carries no data values.
pub fn externalize(e: &Expr, params: &[Value], out: &mut Vec<Value>) -> Result<Expr, FedError> {
    let push = |v: Value, out: &mut Vec<Value>| {
        out.push(v);
        Expr::Param(out.len())
    };
    Ok(match e {
        Expr::Literal(v) => push(v.clone(), out),
        Expr::Param(i) => {
            let v = params
                .get(
                    i.checked_sub(1)
                        .ok_or_else(|| FedError::Unsupported("parameter index 0".into()))?,
                )
                .cloned()
                .ok_or_else(|| FedError::Unsupported(format!("missing parameter ?{i}")))?;
            push(v, out)
        }
        Expr::Column { .. } => e.clone(),
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(externalize(inner, params, out)?)),
        Expr::Binary(l, op, r) => Expr::Binary(
            Box::new(externalize(l, params, out)?),
            *op,
            Box::new(externalize(r, params, out)?),
        ),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(externalize(expr, params, out)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(externalize(expr, params, out)?),
            pattern: Box::new(externalize(pattern, params, out)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(externalize(expr, params, out)?),
            list: list
                .iter()
                .map(|x| externalize(x, params, out))
                .collect::<Result<Vec<_>, _>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(externalize(expr, params, out)?),
            lo: Box::new(externalize(lo, params, out)?),
            hi: Box::new(externalize(hi, params, out)?),
            negated: *negated,
        },
        Expr::Function { .. } => {
            return Err(FedError::Unsupported(
                "function calls cannot be pushed to a site".into(),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{FedCatalog, Partition};
    use easia_db::sql::{parse, Stmt};
    use easia_db::SqlType;

    fn ft() -> ForeignTable {
        let mut c = FedCatalog::default();
        c.create_foreign_table(
            "SIM",
            vec![
                ("K".into(), SqlType::Varchar(30)),
                ("SITE".into(), SqlType::Varchar(20)),
                ("N".into(), SqlType::Integer),
                ("X".into(), SqlType::Double),
            ],
            Some("SITE"),
            vec![Partition::new(None, &["soton"])],
        )
        .unwrap();
        c.table("SIM").unwrap().clone()
    }

    fn sel(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Stmt::Select(s) => s,
            other => panic!("expected select: {other:?}"),
        }
    }

    #[test]
    fn splits_pushed_and_hub_conjuncts() {
        let s = sel("SELECT K FROM SIM WHERE N > 3 AND UPPER(K) = 'A' AND SITE = 'cam'");
        let p = plan_select(&s, &ft(), &[]).unwrap();
        assert_eq!(p.pushed_sql(), vec!["(N > 3)", "(SITE = 'cam')"]);
        assert_eq!(p.hub_sql(), vec!["(UPPER(K) = 'A')"]);
        assert_eq!(p.site_key_value, Some(Value::Str("cam".into())));
        // Hub conjunct mentions K; pushed mentions N and SITE.
        assert_eq!(p.columns, vec!["K", "SITE", "N"]);
    }

    #[test]
    fn projection_pushdown_and_fallbacks() {
        let p = plan_select(&sel("SELECT N FROM SIM"), &ft(), &[]).unwrap();
        assert_eq!(p.columns, vec!["N"]);
        let p = plan_select(&sel("SELECT * FROM SIM WHERE N = 1"), &ft(), &[]).unwrap();
        assert_eq!(p.columns, vec!["K", "SITE", "N", "X"]);
        let p = plan_select(&sel("SELECT COUNT(*) FROM SIM"), &ft(), &[]).unwrap();
        assert_eq!(p.columns, vec!["K"], "row-count still ships one column");
        assert!(plan_select(&sel("SELECT GHOST FROM SIM"), &ft(), &[]).is_err());
    }

    #[test]
    fn topk_pushdown_rules() {
        let p = plan_select(
            &sel("SELECT K, N FROM SIM WHERE N > 0 ORDER BY N DESC LIMIT 5"),
            &ft(),
            &[],
        )
        .unwrap();
        assert_eq!(p.order_limit, Some((vec![("N".into(), false)], 5)));
        // A hub-evaluated conjunct blocks the cut.
        let p = plan_select(
            &sel("SELECT K FROM SIM WHERE UPPER(K) = 'A' ORDER BY K LIMIT 5"),
            &ft(),
            &[],
        )
        .unwrap();
        assert_eq!(p.order_limit, None);
        // Aggregates block it too.
        let p = plan_select(&sel("SELECT MAX(N) FROM SIM LIMIT 1"), &ft(), &[]).unwrap();
        assert_eq!(p.order_limit, None);
        // Bare LIMIT without ORDER BY pushes.
        let p = plan_select(&sel("SELECT K FROM SIM LIMIT 3"), &ft(), &[]).unwrap();
        assert_eq!(p.order_limit, Some((vec![], 3)));
    }

    #[test]
    fn site_key_binding_through_params() {
        let s = sel("SELECT K FROM SIM WHERE SITE = ?");
        let p = plan_select(&s, &ft(), &[Value::Str("cam".into())]).unwrap();
        assert_eq!(p.site_key_value, Some(Value::Str("cam".into())));
        // Non-equality predicates do not bind.
        let s = sel("SELECT K FROM SIM WHERE SITE LIKE 'c%'");
        let p = plan_select(&s, &ft(), &[]).unwrap();
        assert_eq!(p.site_key_value, None);
    }

    #[test]
    fn externalize_strips_values() {
        let s = sel("SELECT K FROM SIM WHERE N BETWEEN 1 AND ? AND K IN ('a', 'b')");
        let conj = s.where_clause.unwrap();
        let mut out = Vec::new();
        let rewritten = externalize(&conj, &[Value::Int(9)], &mut out).unwrap();
        assert_eq!(
            expr_to_sql(&rewritten),
            "((N BETWEEN ? AND ?) AND (K IN (?, ?)))"
        );
        assert_eq!(
            out,
            vec![
                Value::Int(1),
                Value::Int(9),
                Value::Str("a".into()),
                Value::Str("b".into())
            ]
        );
    }

    #[test]
    fn joins_rejected() {
        let s = sel("SELECT a.K FROM SIM a JOIN SIM b ON a.K = b.K");
        assert!(matches!(
            plan_select(&s, &ft(), &[]),
            Err(FedError::Unsupported(_))
        ));
    }
}
